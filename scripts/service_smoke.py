#!/usr/bin/env python
"""End-to-end smoke test of the join service, including kill -9 recovery.

Run by the CI ``service-smoke`` step (and runnable locally):

    PYTHONPATH=src python scripts/service_smoke.py

The script:

1. generates a small ``hashtags`` stream and computes the expected pairs
   with the direct engine (what ``sssj run`` executes);
2. starts ``sssj serve`` as a real subprocess with a checkpoint
   directory, ingests the stream through the ``sssj ingest`` CLI with a
   JSONL sink, drains, and asserts the streamed pairs are identical to
   the direct run's — bitwise, similarities included;
3. opens a second session, ingests half the stream, forces a
   checkpoint, ingests a little more, then ``kill -9``-s the server;
4. restarts the server from the checkpoint directory, verifies the
   session was recovered at the checkpoint barrier, re-feeds the
   uncovered vectors with ``sssj ingest --resume``, drains, and asserts
   the JSONL sink holds exactly the uninterrupted run's pairs;
5. shuts the server down cleanly.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.core.join import streaming_self_join  # noqa: E402
from repro.datasets.io import read_vectors, write_vectors  # noqa: E402
from repro.datasets.generator import generate_profile_corpus  # noqa: E402
from repro.service import ServiceClient, read_jsonl_pairs  # noqa: E402

NUM_VECTORS = int(os.environ.get("SSSJ_SMOKE_VECTORS", "400"))
THETA, DECAY = 0.6, 0.0001


def start_server(checkpoint_dir: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--checkpoint-dir", str(checkpoint_dir), "--checkpoint-every", "50"],
        stdout=subprocess.PIPE, text=True, env=env)
    deadline = time.monotonic() + 30
    while True:
        line = process.stdout.readline()
        if line:
            print(f"  [serve] {line.rstrip()}")
        if "listening on" in line:
            return process, int(line.strip().rsplit(":", 1)[1])
        if process.poll() is not None or time.monotonic() > deadline:
            raise RuntimeError("server failed to start")


def run_cli(*args: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run([sys.executable, "-m", "repro", *args],
                            capture_output=True, text=True, env=env,
                            timeout=300)
    if result.returncode != 0:
        raise RuntimeError(
            f"sssj {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}\n{result.stderr}")
    return result.stdout


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="sssj-smoke-"))
    checkpoint_dir = workdir / "checkpoints"
    dataset = workdir / "stream.txt"
    vectors = generate_profile_corpus("hashtags", num_vectors=NUM_VECTORS,
                                      seed=7)
    write_vectors(dataset, vectors)
    # What `sssj run` would produce over the same file (readers normalise).
    file_vectors = list(read_vectors(dataset))
    expected = list(streaming_self_join(file_vectors, THETA, DECAY))
    print(f"stream: {NUM_VECTORS} hashtags vectors, expected "
          f"{len(expected)} pairs (θ={THETA}, λ={DECAY})")

    print("\n[1] full ingest through the CLI must match the direct engine")
    server, port = start_server(checkpoint_dir)
    try:
        sink_a = workdir / "full.jsonl"
        run_cli("ingest", "--port", str(port), "--session", "full",
                "--input", str(dataset), "--theta", str(THETA),
                "--decay", str(DECAY), "--sink-jsonl", str(sink_a))
        print(run_cli("drain", "--port", str(port), "--session", "full")
              .splitlines()[0])
        streamed = read_jsonl_pairs(sink_a)
        assert streamed == expected, (
            f"streamed {len(streamed)} pairs != direct {len(expected)}")
        print(f"  OK: {len(streamed)} streamed pairs identical to `sssj run`")

        print("\n[2] half-ingest + checkpoint, then kill -9")
        sink_b = workdir / "recovered.jsonl"
        half = NUM_VECTORS // 2
        half_file = workdir / "half.txt"
        write_vectors(half_file, file_vectors[:half])
        run_cli("ingest", "--port", str(port), "--session", "recov",
                "--input", str(half_file), "--theta", str(THETA),
                "--decay", str(DECAY), "--sink-jsonl", str(sink_b))
        with ServiceClient(port=port) as client:
            client.checkpoint("recov")
            # A few post-checkpoint vectors that the crash will eat.
            client.ingest("recov", file_vectors[half:half + 20])
            time.sleep(0.3)
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
        print("  server killed with SIGKILL")
    except BaseException:
        server.kill()
        raise

    print("\n[3] restart: the session must recover at the checkpoint barrier")
    server, port = start_server(checkpoint_dir)
    try:
        with ServiceClient(port=port) as client:
            stats = client.stats("recov")["sessions"]["recov"]
            assert stats["resumed"], "session was not resumed from checkpoint"
            processed = stats["processed"]
            assert processed >= half, (
                f"checkpoint covers {processed} < ingested {half}")
            print(f"  recovered session covers {processed} vectors")
        run_cli("ingest", "--port", str(port), "--session", "recov",
                "--input", str(dataset), "--theta", str(THETA),
                "--decay", str(DECAY), "--resume")
        print(run_cli("drain", "--port", str(port), "--session", "recov")
              .splitlines()[0])
        recovered = read_jsonl_pairs(sink_b)
        assert recovered == expected, (
            f"after recovery: {len(recovered)} pairs != direct {len(expected)}")
        print(f"  OK: {len(recovered)} pairs after kill -9 + recovery, "
              "identical to the uninterrupted run")
        with ServiceClient(port=port) as client:
            client.shutdown()
        server.wait(timeout=30)
        print("\nservice smoke: PASS")
    except BaseException:
        server.kill()
        raise
    return 0


if __name__ == "__main__":
    sys.exit(main())
