#!/usr/bin/env python
"""End-to-end smoke test of the observability layer.

Run by the CI ``obs-smoke`` step (and runnable locally):

    PYTHONPATH=src python scripts/obs_smoke.py [span-artifact.ndjson]

The script:

1. starts ``sssj serve --pool-workers 2`` with a live metrics endpoint
   (``--metrics-port 0``), full-rate deterministic tracing
   (``--trace-sample 1.0 --span-log``) and a slow-batch threshold, as a
   real subprocess, parsing both the ``listening on`` and the
   ``metrics endpoint on`` startup lines;
2. ingests two tenants' streams through the ``sssj ingest`` CLI;
3. scrapes the Prometheus endpoint over HTTP, ingests more vectors,
   scrapes again, and asserts the counters are present, carry the
   per-tenant labels, and moved monotonically between the scrapes;
4. renders one ``sssj top`` frame against the live server;
5. shuts down cleanly and asserts the span NDJSON log holds
   well-formed batch/dispatch spans (copying it to the artifact path
   given as ``argv[1]``, if any — CI uploads it).
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.datasets.generator import generate_profile_corpus  # noqa: E402
from repro.datasets.io import write_vectors  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

VECTORS_PER_TENANT = int(os.environ.get("SSSJ_SMOKE_OBS_VECTORS", "150"))
THETA, DECAY = 0.6, 0.0001
TENANTS = ("acme", "globex")

#: Counters every healthy scrape of this workload must expose.
REQUIRED_SERIES = (
    "sssj_server_requests_total",
    "sssj_server_sessions",
    "sssj_engine_vectors_processed_total",
    "sssj_session_queue_depth",
    "sssj_batch_seconds_bucket",
    "sssj_pool_workers",
    "sssj_pool_quanta_total",
    "sssj_scheduler_ready_sessions",
    "sssj_scheduler_dispatch_wait_seconds_bucket",
    "sssj_scheduler_drr_deficit",
    "sssj_tenant_ingested_vectors_total",
)
#: Monotone counters whose value must strictly grow between the scrapes
#: (more ingest happens in between).
MONOTONE_SERIES = (
    "sssj_server_requests_total",
    "sssj_engine_vectors_processed_total",
    "sssj_tenant_ingested_vectors_total",
    "sssj_pool_vectors_total",
)


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def start_server(span_log: Path) -> tuple[subprocess.Popen, int, str]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--pool-workers", "2", "--metrics-port", "0",
         "--trace-sample", "1.0", "--trace-seed", "7",
         "--span-log", str(span_log), "--slow-batch-ms", "5000"],
        stdout=subprocess.PIPE, text=True, env=_env())
    port = metrics_url = None
    deadline = time.monotonic() + 30
    while port is None or metrics_url is None:
        line = process.stdout.readline()
        if line:
            print(f"  [serve] {line.rstrip()}")
        if "metrics endpoint on" in line:
            metrics_url = line.strip().rsplit(" ", 1)[1]
        elif "listening on" in line:
            port = int(line.strip().rsplit(":", 1)[1])
        if process.poll() is not None or time.monotonic() > deadline:
            raise RuntimeError("server failed to start")
    return process, port, metrics_url


def run_cli(*args: str) -> str:
    result = subprocess.run([sys.executable, "-m", "repro", *args],
                            capture_output=True, text=True, env=_env(),
                            timeout=300)
    if result.returncode != 0:
        raise RuntimeError(
            f"sssj {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}\n{result.stderr}")
    return result.stdout


def scrape(metrics_url: str) -> dict[str, float]:
    """Fetch the endpoint and sum each metric's samples across labels."""
    with urllib.request.urlopen(metrics_url, timeout=10) as response:
        assert response.headers["Content-Type"].startswith("text/plain"), (
            response.headers["Content-Type"])
        text = response.read().decode("utf-8")
    totals: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        sample, value = line.rsplit(" ", 1)
        name = sample.split("{", 1)[0]
        totals[name] = totals.get(name, 0.0) + float(value)
    totals["__text__"] = text  # type: ignore[assignment]
    return totals


def ingest(port: int, name: str, tenant: str, path: Path) -> None:
    run_cli("ingest", "--port", str(port), "--session", name,
            "--tenant", tenant, "--input", str(path),
            "--theta", str(THETA), "--decay", str(DECAY))


def main() -> int:
    artifact = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    workdir = Path(tempfile.mkdtemp(prefix="sssj-obs-smoke-"))
    span_log = workdir / "spans.ndjson"

    corpus = generate_profile_corpus(
        "hashtags", num_vectors=VECTORS_PER_TENANT * len(TENANTS) * 2,
        seed=17)
    slices = {}
    for index, tenant in enumerate(TENANTS):
        for round_number in (1, 2):
            start = ((index * 2) + round_number - 1) * VECTORS_PER_TENANT
            path = workdir / f"{tenant}-{round_number}.txt"
            write_vectors(path, corpus[start:start + VECTORS_PER_TENANT])
            slices[tenant, round_number] = path
    print(f"streams: {len(TENANTS)} tenants × 2 rounds × "
          f"{VECTORS_PER_TENANT} hashtags vectors (θ={THETA}, λ={DECAY})")

    server, port, metrics_url = start_server(span_log)
    try:
        print(f"\n[1] ingest round one for tenants {', '.join(TENANTS)}")
        for tenant in TENANTS:
            ingest(port, f"{tenant}-s", tenant, slices[tenant, 1])
        with ServiceClient(port=port) as client:
            for tenant in TENANTS:
                client.drain(f"{tenant}-s")

        print(f"\n[2] first scrape of {metrics_url}")
        first = scrape(metrics_url)
        text = first.pop("__text__")
        for series in REQUIRED_SERIES:
            assert series in first, f"scrape is missing {series}"
        for tenant in TENANTS:
            needle = (f'sssj_tenant_ingested_vectors_total{{tenant='
                      f'"{tenant}"}} {VECTORS_PER_TENANT}')
            assert needle in text, f"scrape is missing {needle!r}"
        print(f"  OK: {len(first)} metric families, per-tenant ingest "
              "series exact")

        print("\n[3] ingest round two (fresh sessions — drained ones are "
              "closed to further ingest), scrape again, assert monotone")
        for tenant in TENANTS:
            ingest(port, f"{tenant}-s2", tenant, slices[tenant, 2])
        with ServiceClient(port=port) as client:
            for tenant in TENANTS:
                client.drain(f"{tenant}-s2")
        second = scrape(metrics_url)
        second.pop("__text__")
        for series in MONOTONE_SERIES:
            assert second[series] > first[series], (
                series, first[series], second[series])
        expected = VECTORS_PER_TENANT * 2
        assert second["sssj_engine_vectors_processed_total"] == (
            expected * len(TENANTS)), second
        print("  OK: counters moved monotonically "
              f"({int(first['sssj_engine_vectors_processed_total'])} → "
              f"{int(second['sssj_engine_vectors_processed_total'])} "
              "vectors processed)")

        print("\n[4] one sssj top frame against the live server")
        frame = run_cli("top", "--port", str(port), "--iterations", "1",
                        "--no-clear")
        assert "sssj top" in frame and "TENANT" in frame, frame
        for tenant in TENANTS:
            assert tenant in frame, frame
        print("  OK: top frame renders tenant and session rows")

        print("\n[5] shut down and validate the span log")
        with ServiceClient(port=port) as client:
            client.shutdown()
        server.wait(timeout=30)
    except BaseException:
        server.kill()
        raise

    spans = [json.loads(line)
             for line in span_log.read_text().splitlines() if line]
    kinds = {record["span"] for record in spans}
    assert {"batch", "dispatch"} <= kinds, kinds
    for record in spans:
        assert record["dur_ms"] >= 0 and record["ts"] > 0, record
    assert all(record.get("session") for record in spans
               if record["span"] == "batch"), spans
    if artifact is not None:
        artifact.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(span_log, artifact)
        print(f"  span artifact copied to {artifact}")
    print(f"  OK: {len(spans)} spans, kinds {sorted(kinds)}")
    print("\nobs smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
