#!/usr/bin/env python
"""End-to-end smoke test of the multi-tenant scheduler tier.

Run by the CI ``multitenant-smoke`` step (and runnable locally):

    PYTHONPATH=src python scripts/multitenant_smoke.py

The script:

1. generates per-session ``hashtags`` streams and computes each one's
   expected pairs with the direct engine;
2. starts ``sssj serve --pool-workers 4`` (the selector server + bounded
   worker pool) as a real subprocess, with a checkpoint directory, a
   per-tenant session quota and adaptive batching;
3. ingests 20 sessions spread over 3 tenants through the ``sssj
   ingest`` CLI, each with a JSONL sink;
4. drives one tenant over its session quota and asserts the rejection
   is observed (machine-readable ``quota_sessions``);
5. checkpoint-evicts one idle session via ``sssj sessions --evict``,
   asserts the listing shows it evicted, then resumes it transparently
   with ``sssj ingest --resume`` (lazy restore);
6. drains every session and asserts each JSONL sink holds exactly the
   direct engine's pairs for that session's stream — bitwise,
   similarities included, across the evict/restore boundary;
7. shuts the server down cleanly.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.core.join import streaming_self_join  # noqa: E402
from repro.datasets.generator import generate_profile_corpus  # noqa: E402
from repro.datasets.io import read_vectors, write_vectors  # noqa: E402
from repro.service import ServiceClient, read_jsonl_pairs  # noqa: E402

VECTORS_PER_SESSION = int(os.environ.get("SSSJ_SMOKE_MT_VECTORS", "120"))
THETA, DECAY = 0.6, 0.0001
#: tenant → number of sessions (20 total across 3 tenants).
TENANTS = {"acme": 7, "globex": 7, "initech": 6}
QUOTA_SESSIONS = 7
EVICT_SESSION, EVICT_TENANT = "initech-0", "initech"


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def start_server(checkpoint_dir: Path) -> tuple[subprocess.Popen, int]:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--checkpoint-dir", str(checkpoint_dir), "--checkpoint-every", "50",
         "--pool-workers", "4", "--quota-sessions", str(QUOTA_SESSIONS),
         "--adaptive-batch"],
        stdout=subprocess.PIPE, text=True, env=_env())
    deadline = time.monotonic() + 30
    while True:
        line = process.stdout.readline()
        if line:
            print(f"  [serve] {line.rstrip()}")
        if "listening on" in line:
            return process, int(line.strip().rsplit(":", 1)[1])
        if process.poll() is not None or time.monotonic() > deadline:
            raise RuntimeError("server failed to start")


def run_cli(*args: str, expect_failure: bool = False) -> str:
    result = subprocess.run([sys.executable, "-m", "repro", *args],
                            capture_output=True, text=True, env=_env(),
                            timeout=300)
    if expect_failure:
        if result.returncode == 0:
            raise RuntimeError(
                f"sssj {' '.join(args)} unexpectedly succeeded:\n"
                f"{result.stdout}")
        return result.stdout + result.stderr
    if result.returncode != 0:
        raise RuntimeError(
            f"sssj {' '.join(args)} failed ({result.returncode}):\n"
            f"{result.stdout}\n{result.stderr}")
    return result.stdout


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="sssj-mt-smoke-"))
    checkpoint_dir = workdir / "checkpoints"

    # Per-session streams: contiguous slices of one corpus, written to
    # files so the CLI ingests exactly what the reference run reads.
    session_names = [f"{tenant}-{index}"
                     for tenant, count in TENANTS.items()
                     for index in range(count)]
    corpus = generate_profile_corpus(
        "hashtags", num_vectors=VECTORS_PER_SESSION * len(session_names),
        seed=13)
    streams: dict[str, list] = {}
    expected: dict[str, list] = {}
    for index, name in enumerate(session_names):
        path = workdir / f"{name}.txt"
        start = index * VECTORS_PER_SESSION
        write_vectors(path, corpus[start:start + VECTORS_PER_SESSION])
        streams[name] = list(read_vectors(path))
        expected[name] = list(streaming_self_join(streams[name], THETA, DECAY))
    half = VECTORS_PER_SESSION // 2
    half_file = workdir / "evict-half.txt"
    write_vectors(half_file, streams[EVICT_SESSION][:half])
    print(f"streams: {len(session_names)} sessions × {VECTORS_PER_SESSION} "
          f"hashtags vectors over {len(TENANTS)} tenants (θ={THETA}, "
          f"λ={DECAY})")

    server, port = start_server(checkpoint_dir)
    try:
        print(f"\n[1] ingest {len(session_names)} sessions over "
              f"{len(TENANTS)} tenants through the CLI")
        for name in session_names:
            tenant = name.rsplit("-", 1)[0]
            source = (half_file if name == EVICT_SESSION
                      else workdir / f"{name}.txt")
            run_cli("ingest", "--port", str(port), "--session", name,
                    "--tenant", tenant, "--input", str(source),
                    "--theta", str(THETA), "--decay", str(DECAY),
                    "--sink-jsonl", str(workdir / f"{name}.jsonl"))
        listing = run_cli("sessions", "--port", str(port))
        assert f"{len(session_names)} session(s)" in listing, listing
        print(f"  OK: {len(session_names)} sessions live "
              f"({EVICT_SESSION} at half-stream)")

        print(f"\n[2] tenant {EVICT_TENANT!r} is capped at "
              f"{QUOTA_SESSIONS} sessions — the next open must bounce")
        # initech has 6 live sessions; two more would cross its cap of 7.
        run_cli("ingest", "--port", str(port), "--session", "initech-extra",
                "--tenant", "initech", "--input", str(half_file),
                "--theta", str(THETA), "--decay", str(DECAY))
        output = run_cli(
            "ingest", "--port", str(port), "--session", "initech-overflow",
            "--tenant", "initech", "--input", str(half_file),
            "--theta", str(THETA), "--decay", str(DECAY),
            expect_failure=True)
        assert "session quota" in output, output
        with ServiceClient(port=port) as client:
            client.close_session("initech-extra")
            tenants = client.stats()["tenants"]
            assert tenants["initech"]["rejected"]["sessions"] >= 1, tenants
        print("  OK: quota rejection observed, slot freed by close")

        print(f"\n[3] checkpoint-evict {EVICT_SESSION!r} and list it")
        evict_out = run_cli("sessions", "--port", str(port),
                            "--evict", EVICT_SESSION)
        assert "evicted" in evict_out, evict_out
        with ServiceClient(port=port) as client:
            rows = {row["session"]: row
                    for row in client.sessions()["sessions"]}
            assert rows[EVICT_SESSION]["status"] == "evicted", rows
        print("  OK: session evicted (engine released, envelope on disk)")

        print("\n[4] resume the evicted session transparently via the CLI")
        run_cli("ingest", "--port", str(port), "--session", EVICT_SESSION,
                "--tenant", EVICT_TENANT,
                "--input", str(workdir / f"{EVICT_SESSION}.txt"),
                "--theta", str(THETA), "--decay", str(DECAY), "--resume")
        with ServiceClient(port=port) as client:
            scheduler = client.stats()["scheduler"]
            assert scheduler["evictions"] >= 1, scheduler
            assert scheduler["restores"] >= 1, scheduler
        print("  OK: lazy restore on ingest (stream continued at the "
              "eviction barrier)")

        print("\n[5] drain everything; every JSONL sink must match the "
              "direct engine bitwise")
        with ServiceClient(port=port) as client:
            for name in session_names:
                summary = client.drain(name)
                assert summary["processed"] == VECTORS_PER_SESSION, (
                    name, summary)
            for name in session_names:
                streamed = read_jsonl_pairs(workdir / f"{name}.jsonl")
                assert streamed == expected[name], (
                    f"{name}: streamed {len(streamed)} pairs != direct "
                    f"{len(expected[name])}")
            total = sum(len(pairs) for pairs in expected.values())
            client.shutdown()
        server.wait(timeout=30)
        print(f"  OK: {total} pairs across {len(session_names)} sessions, "
              "all identical to the direct engine (evicted session "
              "included)")
        print("\nmultitenant smoke: PASS")
    except BaseException:
        server.kill()
        raise
    return 0


if __name__ == "__main__":
    sys.exit(main())
