#!/usr/bin/env python
"""Chaos smoke test: a real served sharded session under injected faults.

Run by the CI ``chaos-smoke`` step (and runnable locally):

    PYTHONPATH=src python scripts/chaos_smoke.py

The script:

1. generates a small ``hashtags`` stream and computes the expected pairs
   with the direct single-process engine;
2. starts ``sssj serve`` as a real subprocess with a fault plan that
   SIGKILLs one shard worker mid-run AND severs the client connection
   after an ingest is applied but before its ack is written;
3. opens a 2-worker sharded (multiprocess) session and ingests the
   stream in small chunks — the client must transparently reconnect,
   the resent chunk must be deduplicated by sequence numbers, and the
   killed worker must be respawned and replayed by the coordinator;
4. drains and asserts the streamed pairs are bitwise identical to the
   direct run — chaos must change nothing observable;
5. shuts down and checks the fault-event log (the CI artifact) recorded
   the kill, the sever, and the recovery.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.core.join import streaming_self_join  # noqa: E402
from repro.datasets.io import read_vectors, write_vectors  # noqa: E402
from repro.datasets.generator import generate_profile_corpus  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

NUM_VECTORS = int(os.environ.get("SSSJ_SMOKE_VECTORS", "300"))
THETA, DECAY = 0.6, 0.0001
ALGORITHM = "STR-L2AP"
FAULT_PLAN = "kill-worker:shard=1,after=40;sever-client:after=2"


def start_server(fault_log: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--fault-plan", FAULT_PLAN, "--fault-log", str(fault_log)],
        stdout=subprocess.PIPE, text=True, env=env)
    deadline = time.monotonic() + 30
    while True:
        line = process.stdout.readline()
        if line:
            print(f"  [serve] {line.rstrip()}")
        if "listening on" in line:
            return process, int(line.strip().rsplit(":", 1)[1])
        if process.poll() is not None or time.monotonic() > deadline:
            raise RuntimeError("server failed to start")


def main() -> int:
    import json

    workdir = Path(tempfile.mkdtemp(prefix="sssj-chaos-"))
    # CI points this at the workspace so the log survives as an artifact.
    fault_log = Path(os.environ.get("SSSJ_CHAOS_FAULT_LOG",
                                    workdir / "fault_events.jsonl")).resolve()
    dataset = workdir / "stream.txt"
    vectors = generate_profile_corpus("hashtags", num_vectors=NUM_VECTORS,
                                      seed=7)
    write_vectors(dataset, vectors)
    file_vectors = list(read_vectors(dataset))
    expected = list(streaming_self_join(file_vectors, THETA, DECAY,
                                        algorithm=ALGORITHM))
    print(f"stream: {NUM_VECTORS} hashtags vectors, expected "
          f"{len(expected)} pairs ({ALGORITHM}, θ={THETA}, λ={DECAY})")
    print(f"fault plan: {FAULT_PLAN}")

    print("\n[1] sharded session under chaos must match the direct engine")
    server, port = start_server(fault_log)
    try:
        start = time.monotonic()
        with ServiceClient(port=port, backoff_base=0.02) as client:
            client.open_session("chaos", theta=THETA, decay=DECAY,
                                algorithm=ALGORITHM, workers=2,
                                shard_executor="process", normalize=False,
                                results_capacity=max(65536, 4 * len(expected)))
            totals = client.ingest("chaos", file_vectors, chunk_size=50)
            summary = client.drain("chaos")
            pairs = list(client.iter_results("chaos"))
            stats = client.stats("chaos")["sessions"]["chaos"]
            reconnects = client.reconnects
            client.shutdown()
        elapsed = time.monotonic() - start
        server.wait(timeout=30)

        assert summary["processed"] == NUM_VECTORS, summary
        assert reconnects >= 1, "the sever never forced a reconnect"
        assert totals["deduped"] > 0, (
            f"the resent chunk was not deduplicated: {totals}")
        assert pairs == expected, (
            f"chaos run streamed {len(pairs)} pairs, direct engine produced "
            f"{len(expected)} — the determinism contract is broken")
        print(f"  OK: {len(pairs)} pairs bitwise identical to the direct "
              f"run after 1 worker kill + 1 severed connection "
              f"({elapsed:.1f}s; client reconnects={reconnects}, "
              f"deduped={totals['deduped']})")
        print(f"  session stats: deduped={stats.get('deduped')}, "
              f"ingest_seq={stats.get('ingest_seq')}")
    except BaseException:
        server.kill()
        raise

    print("\n[2] the fault-event log must record the injected chaos")
    events = [json.loads(line)
              for line in fault_log.read_text().splitlines()]
    kinds = [event["kind"] for event in events]
    print(f"  fault log ({fault_log}): {kinds}")
    assert "kill-worker" in kinds, "worker kill was never injected"
    assert "sever-client" in kinds, "client sever was never injected"
    assert "recovered" in kinds, "the killed worker was never recovered"
    recovery = next(event for event in events if event["kind"] == "recovered")
    print(f"  OK: worker {recovery['shard']} recovered in "
          f"{recovery['latency_s'] * 1000:.0f} ms "
          f"(replayed {recovery['replayed_steps']} steps)")

    print("\nchaos smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
