"""Reproduces Figure 2: entries traversed by STR relative to MB vs the horizon τ."""

import math

from repro.bench.experiments import figure2


def test_figure2_entry_ratio(benchmark, scale, report):
    result = benchmark.pedantic(figure2, args=(scale,), rounds=1, iterations=1)
    report(result)
    rows = [row for row in result.rows if not math.isnan(row["ratio"])]
    assert rows, "expected at least one configuration with MB entries > 0"
    # The paper's finding: there is a regime of horizons where STR traverses
    # clearly fewer entries than MB (the paper reports roughly 65%).  Note
    # that once τ exceeds the whole stream span both algorithms degenerate to
    # the batch case and the ratio returns to 1.
    assert min(row["ratio"] for row in rows) < 0.9
