"""Reproduces Table 2: fraction of configurations finishing within budget."""

from repro.bench.config import ExperimentScale
from repro.bench.experiments import table2


def test_table2_completion_fractions(benchmark, scale, report):
    # Table 2 runs the full 24-configuration grid for all six algorithms on
    # all four datasets (576 runs), so it uses half-size corpora to stay fast.
    halved = ExperimentScale(
        vector_counts={name: max(50, count // 2)
                       for name, count in scale.vector_counts.items()},
        thetas=scale.thetas,
        decays=scale.decays,
        seed=scale.seed,
    )
    result = benchmark.pedantic(table2, args=(halved,), rounds=1, iterations=1)
    report(result)
    for row in result.rows:
        # STR with the L2 index must complete at least as often as MB with
        # the same index (the paper's headline finding in Table 2).
        assert row["STR-L2"] >= row["MB-L2"] - 1e-9
        for key, value in row.items():
            if key not in ("dataset", "budget_ops"):
                assert 0.0 <= value <= 1.0
