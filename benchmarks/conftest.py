"""Shared fixtures for the benchmark suite.

Every benchmark module reproduces one table or figure of the paper: it runs
the corresponding experiment from :mod:`repro.bench.experiments` exactly
once under ``pytest-benchmark`` (so the harness records its wall-clock
cost), prints the rendered result table, and appends it to
``benchmarks/results/experiments.txt`` so the numbers can be copied into
``EXPERIMENTS.md``.

Scale is controlled by the ``SSSJ_BENCH_SCALE`` environment variable
(default 1.0); see :func:`repro.bench.config.default_scale`.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.config import default_scale
from repro.bench.experiments import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The experiment scale shared by every benchmark in the session."""
    return default_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Print an experiment result and append it to the results file."""

    def _report(result: ExperimentResult) -> ExperimentResult:
        text = result.render()
        print()
        print(text)
        with open(results_dir / "experiments.txt", "a", encoding="utf-8") as handle:
            handle.write(text + "\n\n")
        return result

    return _report
