"""Reproduces Figure 8: STR-L2 running time as a function of the threshold θ."""

from repro.bench.experiments import figure8
from repro.bench.tables import series_by


def test_figure8_time_vs_theta(benchmark, scale, report):
    result = benchmark.pedantic(figure8, args=(scale,), rounds=1, iterations=1)
    report(result)
    # Paper: increasing θ decreases the running time, most markedly at low λ.
    for dataset in ("rcv1", "tweets"):
        rows = [row for row in result.rows
                if row["dataset"] == dataset and row["lambda"] == 1e-4]
        series = series_by(rows, group="dataset", x="theta", y="time_s")[dataset]
        assert series[0][1] >= series[-1][1]
