"""Reproduces Figure 4: MB vs STR running time on the WebSpam profile."""

from repro.bench.experiments import figure4
from repro.bench.tables import series_by


def test_figure4_mb_vs_str_webspam(benchmark, scale, report):
    result = benchmark.pedantic(figure4, args=(scale,), rounds=1, iterations=1)
    report(result)
    assert {row["algorithm"] for row in result.rows} == {"MB", "STR"}
    assert {row["indexing"] for row in result.rows} == {"INV", "L2AP", "L2"}
    # Both algorithms must have produced a full grid of measurements.
    series = series_by(result.rows, group="algorithm", x="theta", y="time_s")
    per_algorithm = {algorithm: len(points) for algorithm, points in series.items()}
    assert per_algorithm["MB"] == per_algorithm["STR"]
