"""Reproduces Figure 3: MB vs STR running time on the RCV1 profile."""

from repro.bench.experiments import figure3
from repro.bench.tables import series_by


def test_figure3_mb_vs_str_rcv1(benchmark, scale, report):
    result = benchmark.pedantic(figure3, args=(scale,), rounds=1, iterations=1)
    report(result)
    l2_rows = [row for row in result.rows if row["indexing"] == "L2"]
    series = series_by(l2_rows, group="algorithm", x="theta", y="time_s")
    assert {"MB", "STR"} <= set(series)
    # Shape check (paper: STR is faster than MB on RCV1 in most settings):
    # compare total time across the grid rather than per-point, which is noisy.
    total = {algorithm: sum(t for _, t in points) for algorithm, points in series.items()}
    assert total["STR"] <= total["MB"] * 1.5
