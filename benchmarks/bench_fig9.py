"""Reproduces Figure 9: linear regression of STR-L2 running time on the horizon τ."""

from repro.bench.experiments import figure9


def test_figure9_time_vs_tau_regression(benchmark, scale, report):
    result = benchmark.pedantic(figure9, args=(scale,), rounds=1, iterations=1)
    report(result)
    slopes = {row["dataset"]: row["slope_s_per_tau"] for row in result.rows}
    # Time grows with the horizon on every dataset ...
    assert all(slope >= 0 for slope in slopes.values())
    # ... and the dense WebSpam profile is the outlier with the largest slope
    # (paper Figure 9).
    assert slopes["webspam"] >= max(slopes["rcv1"], slopes["tweets"])
