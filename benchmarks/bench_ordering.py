"""Ablation: dimension-ordering strategies for the batch prefix-filter indexes.

The paper lists dimension ordering as future work (Section 8); this
benchmark quantifies the cost-benefit trade-off it asks about, for the
batch L2AP index the MiniBatch framework relies on.
"""

from repro.backends import available_backends
from repro.bench.experiments import ExperimentResult
from repro.bench.runner import corpus_for
from repro.core.batch import all_pairs
from repro.core.results import JoinStatistics
from repro.indexes.ordering import ORDERING_STRATEGIES


def _run_orderings(vectors, threshold):
    """Each ordering × compute backend, so the table shows both side by side."""
    import time

    rows = []
    reference_keys = None
    for strategy in ORDERING_STRATEGIES:
        for backend in available_backends():
            stats = JoinStatistics()
            start = time.perf_counter()
            pairs = all_pairs(vectors, threshold, index="L2AP", stats=stats,
                              dimension_order=strategy, backend=backend)
            elapsed = time.perf_counter() - start
            keys = {pair.key for pair in pairs}
            if reference_keys is None:
                reference_keys = keys
            rows.append({
                "ordering": strategy,
                "backend": backend,
                "theta": threshold,
                "time_s": round(elapsed, 4),
                "pairs": len(pairs),
                "entries": stats.entries_traversed,
                "candidates": stats.candidates_generated,
                "full_sims": stats.full_similarities,
                "index_size": stats.max_index_size,
                "matches_reference": keys == reference_keys,
            })
    return rows


def test_ordering_ablation(benchmark, scale, report):
    vectors = corpus_for("rcv1", scale.vectors_for("rcv1"), seed=scale.seed)

    def run():
        rows = []
        for threshold in (0.6, 0.8):
            rows.extend(_run_orderings(vectors, threshold))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(ExperimentResult(
        experiment_id="ablation_ordering",
        title="Dimension-ordering strategies (batch L2AP, RCV1 profile, "
              "per compute backend)",
        rows=rows,
        notes="Future-work knob from the paper's conclusion: neither the "
              "ordering nor the backend ever changes the answer, only the "
              "amount of work and the wall-clock time.",
    ))
    # Every ordering and every backend must return exactly the same pair set.
    assert all(row["matches_reference"] for row in rows)
    # And every ordering must have done real work.
    assert all(row["entries"] > 0 for row in rows)
