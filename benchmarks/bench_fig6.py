"""Reproduces Figure 6: entries traversed by STR per index on the Tweets profile."""

from repro.bench.experiments import figure6


def test_figure6_entries_traversed_tweets(benchmark, scale, report):
    result = benchmark.pedantic(figure6, args=(scale,), rounds=1, iterations=1)
    report(result)
    totals: dict[str, int] = {}
    for row in result.rows:
        totals[row["indexing"]] = totals.get(row["indexing"], 0) + row["entries"]
    # Paper: INV traverses the most entries overall; L2 does not lose much
    # pruning power despite dropping the AP bounds.
    assert totals["L2"] <= totals["INV"]
    assert totals["L2AP"] <= totals["INV"] * 1.5
