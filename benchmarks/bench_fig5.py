"""Reproduces Figure 5: STR running time by index on the RCV1 profile."""

from repro.bench.experiments import figure5


def test_figure5_str_indexes_rcv1(benchmark, scale, report):
    result = benchmark.pedantic(figure5, args=(scale,), rounds=1, iterations=1)
    report(result)
    assert {row["indexing"] for row in result.rows} == {"INV", "L2AP", "L2"}
    totals = {}
    for row in result.rows:
        totals[row["indexing"]] = totals.get(row["indexing"], 0.0) + row["time_s"]
    # Paper: L2 is the overall fastest STR index on RCV1.
    assert totals["L2"] <= totals["INV"] * 1.2
    assert totals["L2"] <= totals["L2AP"] * 1.2
    # L2 never re-indexes; L2AP may.
    assert all(row["reindexings"] == 0 for row in result.rows if row["indexing"] == "L2")
