"""Reproduces Table 1: dataset statistics of the four corpus profiles."""

from repro.bench.experiments import table1


def test_table1_dataset_statistics(benchmark, scale, report):
    result = benchmark.pedantic(table1, args=(scale,), rounds=1, iterations=1)
    report(result)
    datasets = {row["dataset"] for row in result.rows}
    assert datasets == {"webspam", "rcv1", "blogs", "tweets"}
    density = {row["dataset"]: row["density_pct"] for row in result.rows}
    # The paper's density ordering: WebSpam is densest, Tweets sparsest.
    assert density["webspam"] > density["rcv1"] > density["tweets"]
    assert density["blogs"] > density["tweets"]
