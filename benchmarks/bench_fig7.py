"""Reproduces Figure 7: STR-L2 running time as a function of the decay factor λ."""

from repro.bench.experiments import figure7
from repro.bench.tables import series_by


def test_figure7_time_vs_lambda(benchmark, scale, report):
    result = benchmark.pedantic(figure7, args=(scale,), rounds=1, iterations=1)
    report(result)
    assert {row["dataset"] for row in result.rows} == {"webspam", "rcv1", "blogs", "tweets"}
    # Paper: increasing λ decreases the running time (larger decay = shorter
    # horizon = less work).  Check the trend dataset by dataset at θ = 0.5.
    for dataset in ("rcv1", "tweets"):
        rows = [row for row in result.rows
                if row["dataset"] == dataset and row["theta"] == 0.5]
        series = series_by(rows, group="dataset", x="lambda", y="time_s")[dataset]
        assert series[0][1] >= series[-1][1]
