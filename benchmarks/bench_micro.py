"""Micro-benchmarks of the library's hot paths.

These are not paper figures; they use ``pytest-benchmark``'s statistical
timing to track the cost of the operations the experiments are built from:
sparse dot products, index maintenance and single-vector processing
throughput for each streaming index.
"""

import pytest

from repro.bench.runner import corpus_for
from repro.core.join import create_join
from repro.core.vector import SparseVector
from repro.datasets.generator import generate_profile_corpus


@pytest.fixture(scope="module")
def rcv1_vectors():
    return corpus_for("rcv1", 300, seed=7)


@pytest.fixture(scope="module")
def tweets_vectors():
    return generate_profile_corpus("tweets", num_vectors=600, seed=7)


def test_sparse_dot_product(benchmark, rcv1_vectors):
    a, b = rcv1_vectors[0], rcv1_vectors[1]
    benchmark(a.dot, b)


def test_vector_construction(benchmark, rcv1_vectors):
    entries = rcv1_vectors[0].to_dict()
    benchmark(lambda: SparseVector(0, 0.0, entries))


@pytest.mark.parametrize("algorithm", ["STR-INV", "STR-L2AP", "STR-L2"])
def test_streaming_throughput_rcv1(benchmark, rcv1_vectors, algorithm):
    def run():
        join = create_join(algorithm, 0.7, 0.01)
        for vector in rcv1_vectors:
            join.process(vector)
        return join.stats.pairs_output

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("algorithm", ["STR-L2", "MB-L2"])
def test_framework_throughput_tweets(benchmark, tweets_vectors, algorithm):
    def run():
        join = create_join(algorithm, 0.6, 0.01)
        count = sum(len(join.process(vector)) for vector in tweets_vectors)
        count += len(join.flush())
        return count

    benchmark.pedantic(run, rounds=1, iterations=1)
