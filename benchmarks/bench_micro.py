"""Micro-benchmarks of the library's hot paths.

These are not paper figures; they use ``pytest-benchmark``'s statistical
timing to track the cost of the operations the experiments are built from:
sparse dot products, index maintenance and single-vector processing
throughput for each streaming index — now reported side by side for every
registered compute backend (see :mod:`repro.backends`).

``test_l2ap_streaming_hot_path_10k`` is the backend acceptance gate: on a
10 000-vector hot-path workload (the ``hashtags`` profile, whose skewed
vocabulary produces long posting lists) the NumPy backend must deliver at
least 3× the throughput of the pure-Python reference backend while
producing the identical pair set.
"""

import time

import pytest

from repro.backends import available_backends
from repro.bench.runner import corpus_for
from repro.core.join import create_join
from repro.core.vector import SparseVector
from repro.datasets.generator import generate_profile_corpus

BACKENDS = available_backends()


@pytest.fixture(scope="module")
def rcv1_vectors():
    return corpus_for("rcv1", 300, seed=7)


@pytest.fixture(scope="module")
def tweets_vectors():
    return generate_profile_corpus("tweets", num_vectors=600, seed=7)


@pytest.fixture(scope="module")
def hashtags_vectors():
    return generate_profile_corpus("hashtags", num_vectors=10_000, seed=7)


def test_sparse_dot_product(benchmark, rcv1_vectors):
    a, b = rcv1_vectors[0], rcv1_vectors[1]
    benchmark(a.dot, b)


def test_vector_construction(benchmark, rcv1_vectors):
    entries = rcv1_vectors[0].to_dict()
    benchmark(lambda: SparseVector(0, 0.0, entries))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ["STR-INV", "STR-L2AP", "STR-L2"])
def test_streaming_throughput_rcv1(benchmark, rcv1_vectors, algorithm, backend):
    def run():
        join = create_join(algorithm, 0.7, 0.01, backend=backend)
        for vector in rcv1_vectors:
            join.process(vector)
        return join.stats.pairs_output

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ["STR-L2", "MB-L2"])
def test_framework_throughput_tweets(benchmark, tweets_vectors, algorithm, backend):
    def run():
        join = create_join(algorithm, 0.6, 0.01, backend=backend)
        count = sum(len(join.process(vector)) for vector in tweets_vectors)
        count += len(join.flush())
        return count

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
def test_l2ap_streaming_hot_path_10k(benchmark, hashtags_vectors):
    """Backend acceptance gate: ≥ 3× STR-L2AP throughput at 10k vectors."""
    threshold, decay = 0.6, 2e-5  # horizon ≫ stream length: nothing expires

    def run(backend):
        join = create_join("STR-L2AP", threshold, decay, backend=backend)
        start = time.perf_counter()
        for vector in hashtags_vectors:
            join.process(vector)
        elapsed = time.perf_counter() - start
        return elapsed, join.stats.pairs_output

    def run_both():
        numpy_elapsed, numpy_pairs = run("numpy")
        python_elapsed, python_pairs = run("python")
        return {
            "python_s": python_elapsed,
            "numpy_s": numpy_elapsed,
            "speedup": python_elapsed / numpy_elapsed,
            "python_pairs": python_pairs,
            "numpy_pairs": numpy_pairs,
        }

    result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nSTR-L2AP hot path (hashtags, 10k vectors): "
          f"python {result['python_s']:.1f}s, numpy {result['numpy_s']:.1f}s, "
          f"speedup {result['speedup']:.2f}x")
    assert result["numpy_pairs"] == result["python_pairs"]
    assert result["speedup"] >= 3.0
