"""Micro-benchmarks of the library's hot paths.

These are not paper figures; they use ``pytest-benchmark``'s statistical
timing to track the cost of the operations the experiments are built from:
sparse dot products, index maintenance and single-vector processing
throughput for each streaming index — now reported side by side for every
registered compute backend (see :mod:`repro.backends`).

Three tests are the backend acceptance gates, and each writes its record
into the machine-readable ``BENCH_micro.json`` artifact (schema 2: one
``benchmarks`` entry per gate, with per-stage timing blocks) so the perf
trajectory is tracked across PRs; ``repro.bench.regression`` compares the
artifact against ``benchmarks/BENCH_baseline.json`` in CI:

``test_l2ap_streaming_hot_path_10k``
    The prefix-filter (STR) gate: a 10 000-vector hot-path workload on the
    ``hashtags`` profile, whose skewed vocabulary produces long posting
    lists.  The NumPy backend's fused arena scan must deliver at least
    ``GATE_SPEEDUP`` × the throughput of the pure-Python reference while
    producing the identical pair set and operation counters.
``test_inv_streaming_hot_path``
    The inverted (INV) gate: STR-INV indexes everything and accumulates
    exact dot products, so its scan is pure posting traffic — the regime
    the fused arena gather accelerates the most.
``test_l2ap_compiled_str``
    The compiled-tier gate (numba only — skipped where numba is not
    installed, i.e. everywhere but the CI numba job): the STR gate
    workload on all three backends, asserting bitwise pair/counter
    parity and, at full size, ≥ ``GATE_SPEEDUP_COMPILED`` × the NumPy
    backend end to end with a ≥ ``GATE_SCAN_SPEEDUP_COMPILED`` ×
    scan-stage ratio from the profiled breakdowns.  The one-time JIT
    warm-up is paid (and recorded) before the clock starts.
``test_l2ap_approx_recall``
    The approximate-tier recall gate: the STR gate workload run exactly
    (ground truth) and with the sketch prefilter
    (``--approx wminhash:24x3``), both on the NumPy backend.  The
    prefilter is one-sided by construction — it can only drop pairs —
    so the gate asserts the approx pair set is a subset of the exact
    one, measures recall = |approx ∩ exact| / |exact| and the wall-clock
    speedup over the exact run, and records both in the
    ``l2ap_approx_recall`` record of ``BENCH_micro.json`` (both are
    regression-tracked against the committed baseline).  Honest numbers
    on the reference box: recall 0.9526 at 1.25–1.41x; see
    ``docs/PERFORMANCE.md`` for why the speedup tops out below the
    original 1.5x target on this engine.
``test_l2ap_streaming_scaling_50k``
    The 50 000-vector scaling gate (NumPy only — the reference backend
    would take many minutes).  The stream outlives the decay horizon
    (τ ≈ 25 541 s at θ=0.6, λ=2·10⁻⁵), so postings expire mid-run and
    ``entries_pruned`` must be non-zero: this is where the lazy-expiry /
    arena-compaction machinery becomes observable in the artifact.
``test_l2ap_sharded_scaling``
    The sharded (multiprocess) gate: the STR workload run through
    :mod:`repro.shard` at each worker count in
    ``SSSJ_BENCH_SHARD_WORKERS``, asserting bitwise pair/counter parity
    with the single-process NumPy run and recording the 1/2/4-worker
    scaling curve (with the host's CPU count — the curve is only
    meaningful relative to it) plus the coordinator's per-stage
    breakdown.
``test_service_ingest_gate``
    The service gate: the same workload pushed through a
    :class:`repro.service.JoinSession` (bounded queue + worker thread +
    micro-batching + memory sink).  Asserts pair/counter parity with the
    direct run, sustained ingest throughput ≥ 0.8× the direct engine at
    full size, and records the p50/p95/p99 enqueue-to-processed ingest
    latency in the ``service_ingest`` record of ``BENCH_micro.json``.
``test_service_multitenant_gate``
    The multi-tenant gate: many sessions across several tenants, run
    once thread-per-session (the legacy service) and once over the
    bounded worker pool of the scheduler tier.  Asserts per-session
    bitwise pair parity with the direct engine, and at full size pooled
    aggregate throughput ≥ 0.8× thread-per-session; records aggregate
    throughput, the worst per-session p99 and the cross-session fairness
    spread in the ``service_multitenant`` record of ``BENCH_micro.json``.
``test_obs_overhead_gate``
    The observability gate: the STR workload run with telemetry fully
    wired (sampled batch spans, per-batch histogram/counter updates,
    periodic collector scrapes) and with obs disabled.  Asserts bitwise
    pair/counter parity between the arms always, ≤ 5% overhead at full
    size, and records the ratio in the ``obs_overhead`` record of
    ``BENCH_micro.json``.
``test_chaos_recovery_gate``
    The chaos gate: the STR workload through the 2-worker multiprocess
    engine under a fault plan that SIGKILLs both workers at different
    sites (one mid-scan from inside the child, one from the coordinator).
    Asserts both deaths are healed by respawn + deterministic replay with
    bitwise pair/counter parity against the fault-free run, that recovery
    latency stays bounded, and records both in the ``chaos_recovery``
    record of ``BENCH_micro.json``.

Environment knobs (used by the CI smoke job):

``SSSJ_BENCH_VECTORS``
    Override the STR gate's stream length (default 10 000).
``SSSJ_BENCH_VECTORS_INV``
    Override the INV gate's stream length (default 3 000).
``SSSJ_BENCH_VECTORS_LARGE``
    Override the scaling gate's stream length (default 50 000).
``SSSJ_BENCH_VECTORS_SERVICE``
    Override the service gate's stream length (default 4 000).
``SSSJ_BENCH_VECTORS_APPROX``
    Override the approx recall gate's stream length (default 10 000).
``SSSJ_BENCH_VECTORS_CHAOS``
    Override the chaos gate's stream length (default 2 000).
``SSSJ_BENCH_VECTORS_OBS``
    Override the observability gate's stream length (default 10 000).
``SSSJ_BENCH_SHARD_WORKERS``
    Worker counts of the sharded gate, comma-separated (default "1,2,4").
``SSSJ_BENCH_OUTPUT``
    Where to write ``BENCH_micro.json`` (default: repository root).
"""

import os
import time
from pathlib import Path

import pytest

from repro.backends import available_backends, get_backend
from repro.backends.profiling import ProfilingKernel
from repro.bench.export import write_bench_micro
from repro.bench.runner import corpus_for
from repro.core.join import create_join
from repro.core.results import JoinStatistics
from repro.core.vector import SparseVector
from repro.datasets.generator import generate_profile_corpus

BACKENDS = available_backends()
GATE_VECTORS = int(os.environ.get("SSSJ_BENCH_VECTORS", "10000"))
GATE_SHARD_WORKERS = tuple(
    int(token) for token in
    os.environ.get("SSSJ_BENCH_SHARD_WORKERS", "1,2,4").split(",") if token)
GATE_VECTORS_INV = int(os.environ.get("SSSJ_BENCH_VECTORS_INV", "3000"))
GATE_VECTORS_LARGE = int(os.environ.get("SSSJ_BENCH_VECTORS_LARGE", "50000"))
GATE_VECTORS_SERVICE = int(os.environ.get("SSSJ_BENCH_VECTORS_SERVICE", "4000"))
GATE_VECTORS_APPROX = int(os.environ.get("SSSJ_BENCH_VECTORS_APPROX", "10000"))
GATE_VECTORS_CHAOS = int(os.environ.get("SSSJ_BENCH_VECTORS_CHAOS", "2000"))
GATE_VECTORS_OBS = int(os.environ.get("SSSJ_BENCH_VECTORS_OBS", "10000"))
GATE_MT_SESSIONS = int(os.environ.get("SSSJ_BENCH_MT_SESSIONS", "100"))
GATE_MT_VECTORS = int(os.environ.get("SSSJ_BENCH_MT_VECTORS", "120"))
GATE_MT_POOL = int(os.environ.get("SSSJ_BENCH_MT_POOL", "8"))
GATE_OUTPUT = Path(os.environ.get(
    "SSSJ_BENCH_OUTPUT",
    Path(__file__).resolve().parent.parent / "BENCH_micro.json"))
#: Minimum numpy-over-python speedup on the STR gate workload at full size.
GATE_SPEEDUP = 6.0
#: Minimum numpy-over-python speedup on the INV gate workload at full size.
GATE_SPEEDUP_INV = 10.0
#: Minimum numba-over-numpy speedup on the STR gate workload at full size.
GATE_SPEEDUP_COMPILED = 2.0
#: Minimum numba-over-numpy scan-stage ratio (profiled breakdown) at full
#: size — the metric the JIT tier exists to move; the end-to-end ratio is
#: diluted by the NumPy-side stages (gathers, verification, emit).
GATE_SCAN_SPEEDUP_COMPILED = 3.0
#: Minimum service-over-direct throughput ratio at full service-gate size.
GATE_SERVICE_RATIO = 0.8
#: Minimum pooled-over-threaded aggregate throughput ratio on the
#: multi-tenant gate at full size (100 sessions on an 8-worker pool vs
#: one thread per session).
GATE_MULTITENANT_RATIO = 0.8
#: Minimum obs-disabled over obs-enabled throughput ratio at full size —
#: instrumentation (sampled spans, per-batch metric updates, periodic
#: collector scrapes) may cost at most 5%.
GATE_OBS_RATIO = 0.95
#: Sketch geometry of the approx recall gate — the measured sweet spot on
#: the hashtags workload (see docs/PERFORMANCE.md for the full sweep).
GATE_APPROX_SPEC = "wminhash:24x3"
#: Minimum recall of the approx gate at full size.  The sketch is seeded
#: deterministically, so recall on the pinned workload is exact, not
#: statistical: 0.9526 on the gate corpus.
GATE_APPROX_RECALL = 0.95
#: Minimum approx-over-exact speedup at full size.  Measured 1.25–1.41x
#: (interleaved min-of-3) on the reference box; 1.1 absorbs timing noise.
#: The original 1.5x target is not reachable at compliant recall on this
#: engine — the shortfall and the sweep behind this floor are documented
#: in docs/PERFORMANCE.md.
GATE_APPROX_SPEEDUP = 1.1
#: The scaling gate must outlive the decay horizon so expiry is exercised.
_HORIZON_VECTORS = 25_542  # ln(1/0.6) / 2e-5 seconds at one vector per second


@pytest.fixture(scope="module")
def rcv1_vectors():
    return corpus_for("rcv1", 300, seed=7)


@pytest.fixture(scope="module")
def tweets_vectors():
    return generate_profile_corpus("tweets", num_vectors=600, seed=7)


@pytest.fixture(scope="module")
def hashtags_vectors():
    return generate_profile_corpus("hashtags", num_vectors=GATE_VECTORS, seed=7)


def test_sparse_dot_product(benchmark, rcv1_vectors):
    a, b = rcv1_vectors[0], rcv1_vectors[1]
    benchmark(a.dot, b)


def test_vector_construction(benchmark, rcv1_vectors):
    entries = rcv1_vectors[0].to_dict()
    benchmark(lambda: SparseVector(0, 0.0, entries))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ["STR-INV", "STR-L2AP", "STR-L2"])
def test_streaming_throughput_rcv1(benchmark, rcv1_vectors, algorithm, backend):
    def run():
        join = create_join(algorithm, 0.7, 0.01, backend=backend)
        for vector in rcv1_vectors:
            join.process(vector)
        return join.stats.pairs_output

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ["STR-L2", "MB-L2"])
def test_framework_throughput_tweets(benchmark, tweets_vectors, algorithm, backend):
    def run():
        join = create_join(algorithm, 0.6, 0.01, backend=backend)
        count = sum(len(join.process(vector)) for vector in tweets_vectors)
        count += len(join.flush())
        return count

    benchmark.pedantic(run, rounds=1, iterations=1)


# -- acceptance gates ---------------------------------------------------------


def _timed_run(algorithm, vectors, threshold, decay, backend):
    stats = JoinStatistics()
    join = create_join(algorithm, threshold, decay, stats=stats,
                       backend=backend)
    start = time.perf_counter()
    for vector in vectors:
        join.process(vector)
    return time.perf_counter() - start, stats


def _stage_breakdown(algorithm, vectors, threshold, decay, backend_name):
    """Per-stage wall-clock block from a profiled (separate) NumPy run."""
    kernel = ProfilingKernel(get_backend(backend_name)())
    join = create_join(algorithm, threshold, decay, backend=kernel)
    for vector in vectors:
        join.process(vector)
    return {stage: round(seconds, 4)
            for stage, seconds in kernel.stage_seconds.items()}


def _backend_record(elapsed, stats, count, stages=None):
    record = {
        "elapsed_s": elapsed,
        "throughput_vps": count / elapsed if elapsed else 0.0,
        "pairs_output": stats.pairs_output,
        "candidates_generated": stats.candidates_generated,
        "full_similarities": stats.full_similarities,
        "entries_traversed": stats.entries_traversed,
        "entries_pruned": stats.entries_pruned,
    }
    if stages is not None:
        record["stages"] = stages
    return record


def _assert_counter_parity(numpy_stats, python_stats):
    assert numpy_stats.pairs_output == python_stats.pairs_output
    assert numpy_stats.candidates_generated == python_stats.candidates_generated
    assert numpy_stats.full_similarities == python_stats.full_similarities
    assert numpy_stats.entries_traversed == python_stats.entries_traversed
    assert numpy_stats.entries_pruned == python_stats.entries_pruned


@pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
def test_l2ap_streaming_hot_path_10k(benchmark, hashtags_vectors):
    """STR gate: fused-arena STR-L2AP throughput vs the reference backend.

    Emits the ``l2ap_streaming_hot_path`` record of ``BENCH_micro.json``
    (throughput, operation counters, per-stage breakdown, git sha).
    """
    threshold, decay = 0.6, 2e-5  # horizon ≫ stream length: nothing expires

    def run_both():
        numpy_elapsed, numpy_stats = _timed_run(
            "STR-L2AP", hashtags_vectors, threshold, decay, "numpy")
        python_elapsed, python_stats = _timed_run(
            "STR-L2AP", hashtags_vectors, threshold, decay, "python")
        return {
            "python_s": python_elapsed,
            "numpy_s": numpy_elapsed,
            "speedup": python_elapsed / numpy_elapsed,
            "python_stats": python_stats,
            "numpy_stats": numpy_stats,
        }

    result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    count = len(hashtags_vectors)
    print(f"\nSTR-L2AP hot path (hashtags, {count} vectors): "
          f"python {result['python_s']:.1f}s, numpy {result['numpy_s']:.1f}s, "
          f"speedup {result['speedup']:.2f}x")

    stages = _stage_breakdown("STR-L2AP", hashtags_vectors, threshold, decay,
                              "numpy")
    artifact = write_bench_micro(
        GATE_OUTPUT,
        benchmark="l2ap_streaming_hot_path",
        config={"profile": "hashtags", "num_vectors": count, "seed": 7,
                "algorithm": "STR-L2AP", "threshold": threshold,
                "decay": decay},
        backends={
            "python": _backend_record(result["python_s"],
                                      result["python_stats"], count),
            "numpy": _backend_record(result["numpy_s"], result["numpy_stats"],
                                     count, stages=stages),
        },
        derived={"speedup": result["speedup"]},
    )
    print(f"benchmark artifact written to {artifact}")

    # Pair-for-pair and operation-counter identity across the data paths.
    _assert_counter_parity(result["numpy_stats"], result["python_stats"])
    if count >= 10_000:  # reduced CI sizes track the artifact, not the gate
        assert result["speedup"] >= GATE_SPEEDUP


@pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
def test_inv_streaming_hot_path(benchmark):
    """INV gate: fused-arena STR-INV throughput vs the reference backend.

    Emits the ``inv_streaming_hot_path`` record of ``BENCH_micro.json``.
    """
    threshold, decay = 0.6, 2e-5
    vectors = generate_profile_corpus("hashtags",
                                      num_vectors=GATE_VECTORS_INV, seed=7)

    def run_both():
        numpy_elapsed, numpy_stats = _timed_run(
            "STR-INV", vectors, threshold, decay, "numpy")
        python_elapsed, python_stats = _timed_run(
            "STR-INV", vectors, threshold, decay, "python")
        return {
            "python_s": python_elapsed,
            "numpy_s": numpy_elapsed,
            "speedup": python_elapsed / numpy_elapsed,
            "python_stats": python_stats,
            "numpy_stats": numpy_stats,
        }

    result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    count = len(vectors)
    print(f"\nSTR-INV hot path (hashtags, {count} vectors): "
          f"python {result['python_s']:.1f}s, numpy {result['numpy_s']:.1f}s, "
          f"speedup {result['speedup']:.2f}x")

    stages = _stage_breakdown("STR-INV", vectors, threshold, decay, "numpy")
    artifact = write_bench_micro(
        GATE_OUTPUT,
        benchmark="inv_streaming_hot_path",
        config={"profile": "hashtags", "num_vectors": count, "seed": 7,
                "algorithm": "STR-INV", "threshold": threshold,
                "decay": decay},
        backends={
            "python": _backend_record(result["python_s"],
                                      result["python_stats"], count),
            "numpy": _backend_record(result["numpy_s"], result["numpy_stats"],
                                     count, stages=stages),
        },
        derived={"speedup": result["speedup"]},
    )
    print(f"benchmark artifact written to {artifact}")

    _assert_counter_parity(result["numpy_stats"], result["python_stats"])
    if count >= 3_000:  # reduced CI sizes track the artifact, not the gate
        assert result["speedup"] >= GATE_SPEEDUP_INV


@pytest.mark.skipif("numba" not in BACKENDS, reason="numba backend unavailable")
def test_l2ap_compiled_str(benchmark, hashtags_vectors):
    """Compiled gate: JIT-fused STR-L2AP vs the NumPy and reference backends.

    Runs the STR gate workload on all three backends in one process (the
    ratios divide out the machine), pays the one-time JIT warm-up before
    the clock starts and records it separately, asserts bitwise
    pair/counter parity against both baselines, and emits the
    ``l2ap_compiled_str`` record of ``BENCH_micro.json`` with the
    end-to-end and scan-stage-only speedups.
    """
    from repro.backends import warmup_backend

    threshold, decay = 0.6, 2e-5
    jit_warmup_s = warmup_backend("numba")

    def run_all():
        numba_elapsed, numba_stats = _timed_run(
            "STR-L2AP", hashtags_vectors, threshold, decay, "numba")
        numpy_elapsed, numpy_stats = _timed_run(
            "STR-L2AP", hashtags_vectors, threshold, decay, "numpy")
        python_elapsed, python_stats = _timed_run(
            "STR-L2AP", hashtags_vectors, threshold, decay, "python")
        return {
            "python_s": python_elapsed,
            "numpy_s": numpy_elapsed,
            "numba_s": numba_elapsed,
            "speedup": numpy_elapsed / numba_elapsed,
            "speedup_vs_python": python_elapsed / numba_elapsed,
            "python_stats": python_stats,
            "numpy_stats": numpy_stats,
            "numba_stats": numba_stats,
        }

    result = benchmark.pedantic(run_all, rounds=1, iterations=1)
    count = len(hashtags_vectors)

    # Scan-stage ratio from profiled (separate) runs of both accelerated
    # backends; ProfilingKernel warms its inner kernel at construction, so
    # no JIT cost leaks into the numba breakdown.
    numpy_stages = _stage_breakdown("STR-L2AP", hashtags_vectors, threshold,
                                    decay, "numpy")
    numba_stages = _stage_breakdown("STR-L2AP", hashtags_vectors, threshold,
                                    decay, "numba")
    scan_speedup = (numpy_stages.get("scan", 0.0)
                    / numba_stages["scan"]) if numba_stages.get("scan") else 0.0
    print(f"\nSTR-L2AP compiled (hashtags, {count} vectors): "
          f"python {result['python_s']:.1f}s, numpy {result['numpy_s']:.1f}s, "
          f"numba {result['numba_s']:.1f}s "
          f"({result['speedup']:.2f}x over numpy, "
          f"{result['speedup_vs_python']:.2f}x over python), "
          f"scan stage {scan_speedup:.2f}x, "
          f"JIT warm-up {jit_warmup_s:.2f}s (outside the clock)")

    numba_record = _backend_record(result["numba_s"], result["numba_stats"],
                                   count, stages=numba_stages)
    numba_record["jit_warmup_s"] = round(jit_warmup_s, 4)
    artifact = write_bench_micro(
        GATE_OUTPUT,
        benchmark="l2ap_compiled_str",
        config={"profile": "hashtags", "num_vectors": count, "seed": 7,
                "algorithm": "STR-L2AP", "threshold": threshold,
                "decay": decay},
        backends={
            "python": _backend_record(result["python_s"],
                                      result["python_stats"], count),
            "numpy": _backend_record(result["numpy_s"], result["numpy_stats"],
                                     count, stages=numpy_stages),
            "numba": numba_record,
        },
        derived={"speedup": result["speedup"],
                 "scan_speedup": scan_speedup,
                 "speedup_vs_python": result["speedup_vs_python"]},
    )
    print(f"benchmark artifact written to {artifact}")

    # The compiled loops must change nothing observable.
    _assert_counter_parity(result["numba_stats"], result["python_stats"])
    _assert_counter_parity(result["numba_stats"], result["numpy_stats"])
    if count >= 10_000:  # reduced CI sizes track the artifact, not the gate
        assert result["speedup"] >= GATE_SPEEDUP_COMPILED
        assert scan_speedup >= GATE_SCAN_SPEEDUP_COMPILED


def _timed_sharded(algorithm, vectors, threshold, decay, workers):
    """One sharded multiprocess run: elapsed, stats, coordinator stages."""
    from repro.shard import create_sharded_join

    stats = JoinStatistics()
    join = create_sharded_join(algorithm, threshold, decay, workers=workers,
                               stats=stats, backend="numpy",
                               executor="process")
    try:
        start = time.perf_counter()
        for vector in vectors:
            join.process(vector)
        elapsed = time.perf_counter() - start
        stages = {stage: round(seconds, 4)
                  for stage, seconds in join.stage_seconds.items()}
    finally:
        join.close()
    return elapsed, stats, stages


@pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
def test_l2ap_sharded_scaling(benchmark, hashtags_vectors):
    """Sharded STR gate: multiprocess dimension-sharded STR-L2AP.

    Runs the STR gate workload through the sharded engine at each worker
    count, asserts bitwise pair-set and operation-counter parity with the
    single-process NumPy run, and records the scaling curve in the
    ``l2ap_sharded_str`` record of ``BENCH_micro.json``.  The tentpole
    target (≥1.8x over single-process at 4 workers) presumes ≥4 physical
    cores; the artifact therefore records ``cpu_count`` next to the curve
    and the honest conclusion lives in ``docs/PERFORMANCE.md``.
    """
    threshold, decay = 0.6, 2e-5

    def run_all():
        numpy_elapsed, numpy_stats = _timed_run(
            "STR-L2AP", hashtags_vectors, threshold, decay, "numpy")
        sharded = {}
        for workers in GATE_SHARD_WORKERS:
            elapsed, stats, stages = _timed_sharded(
                "STR-L2AP", hashtags_vectors, threshold, decay, workers)
            _assert_counter_parity(stats, numpy_stats)
            sharded[workers] = (elapsed, stats, stages)
        return numpy_elapsed, numpy_stats, sharded

    numpy_elapsed, numpy_stats, sharded = benchmark.pedantic(
        run_all, rounds=1, iterations=1)
    count = len(hashtags_vectors)
    curve = {str(workers): round(numpy_elapsed / elapsed, 3)
             for workers, (elapsed, _, _) in sharded.items()}
    print(f"\nSTR-L2AP sharded (hashtags, {count} vectors, "
          f"{os.cpu_count()} cpus): single numpy {numpy_elapsed:.1f}s; " +
          ", ".join(f"{workers}w {elapsed:.1f}s ({curve[str(workers)]}x)"
                    for workers, (elapsed, _, _) in sharded.items()))

    backends = {"numpy": _backend_record(numpy_elapsed, numpy_stats, count)}
    for workers, (elapsed, stats, stages) in sharded.items():
        backends[f"sharded_w{workers}"] = _backend_record(
            elapsed, stats, count, stages=stages)
    artifact = write_bench_micro(
        GATE_OUTPUT,
        benchmark="l2ap_sharded_str",
        config={"profile": "hashtags", "num_vectors": count, "seed": 7,
                "algorithm": "STR-L2AP", "threshold": threshold,
                "decay": decay, "workers": list(GATE_SHARD_WORKERS),
                "cpu_count": os.cpu_count()},
        backends=backends,
        derived={"speedup": max(numpy_elapsed / elapsed
                                for elapsed, _, _ in sharded.values()),
                 "scaling_curve": curve},
    )
    print(f"benchmark artifact written to {artifact}")


@pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
def test_service_ingest_gate(benchmark):
    """Service gate: the STR workload through a JoinSession vs direct.

    The session path adds a bounded queue, a worker thread, micro-batch
    assembly and sink emission on top of the same join; the gate pins
    that overhead to ≤ 20% of throughput (ratio ≥ 0.8) and records the
    enqueue-to-processed ingest latency percentiles — the same numbers
    the ``stats`` endpoint serves — in ``BENCH_micro.json``.
    """
    from repro.service import JoinSession, SessionConfig

    threshold, decay = 0.6, 2e-5
    vectors = generate_profile_corpus("hashtags",
                                      num_vectors=GATE_VECTORS_SERVICE, seed=7)

    def run_both():
        direct_elapsed, direct_stats = _timed_run(
            "STR-L2AP", vectors, threshold, decay, "numpy")
        config = SessionConfig(
            name="bench", threshold=threshold, decay=decay,
            algorithm="STR-L2AP", backend="numpy",
            queue_max=256, batch_max_items=256, batch_max_delay=0.0)
        session = JoinSession(config)
        start = time.perf_counter()
        session.ingest(vectors)
        session.drain(timeout=None)
        service_elapsed = time.perf_counter() - start
        return direct_elapsed, direct_stats, service_elapsed, session

    direct_elapsed, direct_stats, service_elapsed, session = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    count = len(vectors)
    ratio = direct_elapsed / service_elapsed if service_elapsed else 0.0
    latency = session.latency.summary()
    print(f"\nservice ingest (hashtags, {count} vectors): direct "
          f"{direct_elapsed:.1f}s, service {service_elapsed:.1f}s "
          f"(ratio {ratio:.2f}x), ingest p50/p95/p99 "
          f"{latency['p50_ms']:.2f}/{latency['p95_ms']:.2f}/"
          f"{latency['p99_ms']:.2f} ms")

    service_record = _backend_record(service_elapsed, session.join.stats, count)
    service_record["latency"] = latency
    artifact = write_bench_micro(
        GATE_OUTPUT,
        benchmark="service_ingest",
        config={"profile": "hashtags", "num_vectors": count, "seed": 7,
                "algorithm": "STR-L2AP", "threshold": threshold,
                "decay": decay, "queue_max": 256, "batch_max_items": 256},
        backends={
            "numpy_direct": _backend_record(direct_elapsed, direct_stats,
                                            count),
            "numpy_service": service_record,
        },
        derived={"throughput_ratio": ratio,
                 "ingest_p99_ms": latency["p99_ms"]},
    )
    print(f"benchmark artifact written to {artifact}")

    # The session must do the same work, bit for bit.
    _assert_counter_parity(session.join.stats, direct_stats)
    session.close()
    if count >= 4_000:  # reduced CI sizes track the artifact, not the gate
        assert ratio >= GATE_SERVICE_RATIO


@pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
def test_service_multitenant_gate(benchmark):
    """Multi-tenant gate: N sessions thread-per-session vs a worker pool.

    The same per-session streams (contiguous slices of one hashtags
    corpus, spread over four tenants) are joined twice: once with the
    legacy model — every session owning a worker thread — and once
    through a :class:`~repro.service.SchedulerService` running all of
    them over a small bounded pool with DRR fairness.  Both paths call
    ``session.ingest`` directly (no wire codec), so the ratio isolates
    the scheduling model.  Asserts bitwise per-session pair parity with
    the direct engine on sampled sessions, and at full size pooled
    aggregate throughput ≥ 0.8× thread-per-session; emits the
    ``service_multitenant`` record with aggregate throughput, the worst
    per-session p99 and the cross-session fairness spread.
    """
    import statistics

    from repro.service import JoinSession, SchedulerService, SessionConfig

    threshold, decay = 0.6, 2e-5
    sessions, per_session = GATE_MT_SESSIONS, GATE_MT_VECTORS
    corpus = generate_profile_corpus(
        "hashtags", num_vectors=sessions * per_session, seed=11)
    streams = [corpus[index * per_session:(index + 1) * per_session]
               for index in range(sessions)]
    count = sessions * per_session
    session_options = dict(
        threshold=threshold, decay=decay, algorithm="STR-L2AP",
        backend="numpy", queue_max=per_session, batch_max_items=64,
        batch_max_delay=0.0)

    def run_threaded():
        live = [JoinSession(SessionConfig(name=f"mt{index}",
                                          tenant=f"tenant{index % 4}",
                                          **session_options))
                for index in range(sessions)]
        start = time.perf_counter()
        for session, stream in zip(live, streams):
            session.ingest(stream)
        for session in live:
            session.drain(timeout=None)
        elapsed = time.perf_counter() - start
        for session in live:
            session.close()
        return elapsed

    def run_pooled():
        service = SchedulerService(pool_workers=GATE_MT_POOL)
        live = []
        for index in range(sessions):
            response = service.handle({
                "op": "open", "session": f"mt{index}", "theta": threshold,
                "decay": decay, "tenant": f"tenant{index % 4}",
                "checkpoint": False, "algorithm": "STR-L2AP",
                "backend": "numpy", "queue_max": per_session,
                "batch_max_items": 64, "batch_max_delay_ms": 0.0,
                "normalize": False})
            assert response.get("ok"), response
            live.append(service.sessions[f"mt{index}"])
        start = time.perf_counter()
        for session, stream in zip(live, streams):
            session.ingest(stream)
        for session in live:
            session.drain(timeout=None)
        elapsed = time.perf_counter() - start
        p99s = [session.latency.summary()["p99_ms"] for session in live]
        # Sampled bitwise parity: the pooled sessions must emit exactly
        # the direct engine's pairs for their streams.
        for index in (0, sessions // 2, sessions - 1):
            session, stream = live[index], streams[index]
            emitted = session.results.read(0, None)[0]
            stats = JoinStatistics()
            join = create_join("STR-L2AP", threshold, decay, stats=stats,
                               backend="numpy")
            reference = []
            for vector in stream:
                reference.extend(join.process(vector))
            reference.extend(join.flush())
            assert emitted == reference
            _assert_counter_parity(session.join.stats, stats)
        service.shutdown()
        return elapsed, p99s

    def run_both():
        threaded_elapsed = run_threaded()
        pooled_elapsed, p99s = run_pooled()
        return threaded_elapsed, pooled_elapsed, p99s

    threaded_elapsed, pooled_elapsed, p99s = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    ratio = threaded_elapsed / pooled_elapsed if pooled_elapsed else 0.0
    worst_p99 = max(p99s)
    median_p99 = statistics.median(p99s)
    fairness_spread = worst_p99 / median_p99 if median_p99 else 0.0
    throughput = count / pooled_elapsed if pooled_elapsed else 0.0
    print(f"\nmulti-tenant ({sessions} sessions × {per_session} vectors, "
          f"pool {GATE_MT_POOL}): threaded {threaded_elapsed:.1f}s, pooled "
          f"{pooled_elapsed:.1f}s (ratio {ratio:.2f}x), aggregate "
          f"{throughput:.0f} vec/s, worst p99 {worst_p99:.2f} ms, fairness "
          f"spread {fairness_spread:.2f}x")

    artifact = write_bench_micro(
        GATE_OUTPUT,
        benchmark="service_multitenant",
        config={"profile": "hashtags", "sessions": sessions,
                "vectors_per_session": per_session,
                "pool_workers": GATE_MT_POOL, "seed": 11,
                "algorithm": "STR-L2AP", "threshold": threshold,
                "decay": decay, "batch_max_items": 64},
        backends={
            "numpy_threaded": {
                "elapsed_s": threaded_elapsed,
                "throughput_vps": (count / threaded_elapsed
                                   if threaded_elapsed else 0.0),
            },
            "numpy_pooled": {
                "elapsed_s": pooled_elapsed,
                "throughput_vps": throughput,
                "worst_p99_ms": worst_p99,
                "fairness_spread": fairness_spread,
            },
        },
        derived={"throughput_ratio": ratio,
                 "worst_p99_ms": worst_p99,
                 "fairness_spread": fairness_spread},
    )
    print(f"benchmark artifact written to {artifact}")
    if sessions >= 100:  # reduced CI sizes track the artifact, not the gate
        assert ratio >= GATE_MULTITENANT_RATIO


def _paired_run(vectors, threshold, decay, approx=None):
    """One timed STR-L2AP run that also collects the emitted pair set."""
    stats = JoinStatistics()
    join = create_join("STR-L2AP", threshold, decay, stats=stats,
                       backend="numpy", approx=approx)
    pairs = []
    start = time.perf_counter()
    for vector in vectors:
        pairs.extend(join.process(vector))
    pairs.extend(join.flush())
    elapsed = time.perf_counter() - start
    return elapsed, stats, {(pair.id_a, pair.id_b) for pair in pairs}


@pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
def test_l2ap_approx_recall(benchmark):
    """Approx recall gate: sketch-prefiltered run vs exact ground truth.

    Runs the STR gate workload twice on the NumPy backend — exact, then
    with the ``wminhash:24x3`` prefilter — in the same process so the
    speedup ratio divides out the machine.  Asserts the one-sided filter
    property (approx pairs ⊆ exact pairs) at every size, and at full
    size the recall and speedup floors; emits the ``l2ap_approx_recall``
    record of ``BENCH_micro.json`` with both tracked metrics.
    """
    threshold, decay = 0.6, 2e-5
    vectors = generate_profile_corpus("hashtags",
                                      num_vectors=GATE_VECTORS_APPROX, seed=7)

    def run_both():
        exact_elapsed, exact_stats, exact_pairs = _paired_run(
            vectors, threshold, decay)
        approx_elapsed, approx_stats, approx_pairs = _paired_run(
            vectors, threshold, decay, approx=GATE_APPROX_SPEC)
        return {
            "exact_s": exact_elapsed,
            "approx_s": approx_elapsed,
            "speedup": exact_elapsed / approx_elapsed,
            "exact_stats": exact_stats,
            "approx_stats": approx_stats,
            "exact_pairs": exact_pairs,
            "approx_pairs": approx_pairs,
        }

    result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    count = len(vectors)
    exact_pairs = result["exact_pairs"]
    approx_pairs = result["approx_pairs"]
    false_positives = approx_pairs - exact_pairs
    recall = (len(approx_pairs & exact_pairs) / len(exact_pairs)
              if exact_pairs else 1.0)
    print(f"\nSTR-L2AP approx recall (hashtags, {count} vectors, "
          f"{GATE_APPROX_SPEC}): exact {result['exact_s']:.1f}s "
          f"({len(exact_pairs)} pairs), approx {result['approx_s']:.1f}s "
          f"({len(approx_pairs)} pairs), speedup {result['speedup']:.2f}x, "
          f"recall {recall:.4f}, "
          f"pruned {result['approx_stats'].candidates_sketch_pruned} "
          f"posting occurrences")

    approx_record = _backend_record(result["approx_s"],
                                    result["approx_stats"], count)
    approx_record["candidates_sketch_pruned"] = (
        result["approx_stats"].candidates_sketch_pruned)
    approx_record["pairs_emitted"] = len(approx_pairs)
    exact_record = _backend_record(result["exact_s"],
                                   result["exact_stats"], count)
    exact_record["pairs_emitted"] = len(exact_pairs)
    artifact = write_bench_micro(
        GATE_OUTPUT,
        benchmark="l2ap_approx_recall",
        config={"profile": "hashtags", "num_vectors": count, "seed": 7,
                "algorithm": "STR-L2AP", "threshold": threshold,
                "decay": decay, "approx": GATE_APPROX_SPEC},
        backends={
            "numpy_exact": exact_record,
            "numpy_approx": approx_record,
        },
        derived={"recall": recall,
                 "speedup": result["speedup"],
                 "false_positives": len(false_positives)},
    )
    print(f"benchmark artifact written to {artifact}")

    # The sketch tier is a one-sided filter: it may only drop pairs.
    assert not false_positives, (
        f"approx run emitted {len(false_positives)} pairs the exact run "
        f"did not: {sorted(false_positives)[:5]}")
    if count >= 10_000:  # reduced CI sizes track the artifact, not the gate
        assert recall >= GATE_APPROX_RECALL
        assert result["speedup"] >= GATE_APPROX_SPEEDUP


@pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
def test_l2ap_streaming_scaling_50k(benchmark):
    """Scaling gate: 50k-vector STR-L2AP run on the NumPy backend only.

    The stream outlives the decay horizon, so posting expiry — and with
    it the lazy masking and amortised arena compaction — is exercised and
    ``entries_pruned`` becomes observable in the artifact.  The reference
    backend is not run (it would take the better part of ten minutes);
    the machine-comparable regression metric for this gate is pruning
    effectiveness, not a speedup.
    """
    threshold, decay = 0.6, 2e-5
    vectors = generate_profile_corpus("hashtags",
                                      num_vectors=GATE_VECTORS_LARGE, seed=7)

    def run():
        return _timed_run("STR-L2AP", vectors, threshold, decay, "numpy")

    elapsed, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    count = len(vectors)
    pruned_share = (stats.entries_pruned / stats.entries_traversed
                    if stats.entries_traversed else 0.0)
    print(f"\nSTR-L2AP scaling (hashtags, {count} vectors): "
          f"numpy {elapsed:.1f}s ({count / elapsed:,.0f} vps), "
          f"pruned {stats.entries_pruned} of {stats.entries_traversed} "
          f"traversed ({pruned_share:.2%})")

    artifact = write_bench_micro(
        GATE_OUTPUT,
        benchmark="l2ap_streaming_scaling_50k",
        config={"profile": "hashtags", "num_vectors": count, "seed": 7,
                "algorithm": "STR-L2AP", "threshold": threshold,
                "decay": decay},
        backends={
            "numpy": _backend_record(elapsed, stats, count),
        },
        derived={"pruned_share": pruned_share,
                 "throughput_vps": count / elapsed if elapsed else 0.0},
    )
    print(f"benchmark artifact written to {artifact}")

    if count >= _HORIZON_VECTORS:
        # The stream outlived the horizon: expiry must be visible.
        assert stats.entries_pruned > 0


def _chaos_run(vectors, threshold, decay, fault_plan, workers):
    """One sharded run under a fault plan, collecting the emitted pairs."""
    from repro.shard import create_sharded_join

    stats = JoinStatistics()
    pairs = []
    with create_sharded_join("STR-L2AP", threshold, decay, workers=workers,
                             stats=stats, backend="numpy",
                             executor="process",
                             fault_plan=fault_plan) as join:
        start = time.perf_counter()
        for vector in vectors:
            pairs.extend(join.process(vector))
        pairs.extend(join.flush())
        elapsed = time.perf_counter() - start
        events = list(join.recovery_events)
        degraded = join.degraded
    return elapsed, stats, {(p.id_a, p.id_b) for p in pairs}, events, degraded


@pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
def test_chaos_recovery_gate(benchmark):
    """Chaos gate: kill real shard workers mid-run, demand bitwise parity.

    The STR workload runs through the 2-worker multiprocess engine under
    a fault plan that SIGKILLs one worker mid-scan (all step work done,
    reply lost) and the other from the coordinator side later on.  Both
    deaths must be healed by respawn + deterministic replay, the final
    pairs and operation counters must equal the fault-free single-process
    run bit for bit, and each recovery must complete within the bounded
    deadline.  Recovery latency and respawn counts land in the
    ``chaos_recovery`` record of ``BENCH_micro.json``.
    """
    threshold, decay = 0.6, 2e-5
    vectors = generate_profile_corpus("hashtags",
                                      num_vectors=GATE_VECTORS_CHAOS, seed=7)
    count = len(vectors)
    fault_plan = (f"exit-in-scan:shard=0,after={max(1, count // 4)};"
                  f"kill-worker:shard=1,after={max(2, count // 2)}")

    def run_both():
        exact_elapsed, exact_stats, exact_pairs = _paired_run(
            vectors, threshold, decay)
        chaos = _chaos_run(vectors, threshold, decay, fault_plan, workers=2)
        return exact_elapsed, exact_stats, exact_pairs, chaos

    (exact_elapsed, exact_stats, exact_pairs,
     (chaos_elapsed, chaos_stats, chaos_pairs, events,
      degraded)) = benchmark.pedantic(run_both, rounds=1, iterations=1)

    recovery_latency = max((event["latency_s"] for event in events),
                           default=0.0)
    print(f"\nchaos recovery (hashtags, {count} vectors, 2 workers, "
          f"plan {fault_plan!r}): exact {exact_elapsed:.1f}s, chaos "
          f"{chaos_elapsed:.1f}s, {len(events)} recoveries, worst "
          f"recovery {recovery_latency * 1000:.0f} ms, degraded={degraded}")

    chaos_record = _backend_record(chaos_elapsed, chaos_stats, count)
    chaos_record["recoveries"] = [
        {key: event[key] for key in ("kind", "shard", "attempt",
                                     "replayed_steps", "latency_s")
         if key in event}
        for event in events]
    artifact = write_bench_micro(
        GATE_OUTPUT,
        benchmark="chaos_recovery",
        config={"profile": "hashtags", "num_vectors": count, "seed": 7,
                "algorithm": "STR-L2AP", "threshold": threshold,
                "decay": decay, "workers": 2, "fault_plan": fault_plan},
        backends={
            "numpy_exact": _backend_record(exact_elapsed, exact_stats, count),
            "numpy_chaos": chaos_record,
        },
        derived={"recovery_latency_s": recovery_latency,
                 "respawns": len(events),
                 "degraded": degraded,
                 "bitwise_parity": chaos_pairs == exact_pairs},
    )
    print(f"benchmark artifact written to {artifact}")

    # Both injected deaths healed by respawn, not degradation.
    assert not degraded
    assert [event["kind"] for event in events] == ["respawn", "respawn"]
    # Chaos changes nothing observable: same pairs, same counters.
    assert chaos_pairs == exact_pairs
    _assert_counter_parity(chaos_stats, exact_stats)
    # Recovery is bounded: replay of up to the full history must come in
    # far under the 10s per-call deadline ceiling.
    assert recovery_latency < 10.0


@pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
def test_obs_overhead_gate(benchmark):
    """Observability overhead gate: STR-L2AP with telemetry on vs off.

    The "on" arm mirrors exactly what an instrumented session adds
    around the engine hot path: the index-stats collector registered at
    join construction, a batch span per 256-vector micro-batch (sampled
    at 1%, the serve-time default), one latency-histogram observation
    and counter increment per batch, and a full collector scrape every
    16 batches (a Prometheus scrape interval at gate throughput).  The
    "off" arm runs the identical loop with obs disabled, which is what
    every instrumentation site reduces to when ``SSSJ_OBS=0``.  Both
    arms run twice, interleaved, and the gate compares the per-arm
    minima so cache warm-up and machine noise hit both sides evenly.

    Asserts telemetry costs <= 5% at full size and — unconditionally —
    that pair/counter output is bitwise identical across the arms, so
    instrumentation can never change results.
    """
    from repro import obs
    from repro.obs import MetricsRegistry, Tracer

    threshold, decay = 0.6, 2e-5
    batch_size = 256
    scrape_every = 16
    trace_sample = 0.01
    vectors = generate_profile_corpus("hashtags",
                                      num_vectors=GATE_VECTORS_OBS, seed=7)

    def timed(instrumented):
        spans = []
        previous_registry = obs.set_registry(MetricsRegistry())
        previous_tracer = obs.set_tracer(
            Tracer(sample=trace_sample, seed=7, sink=spans.append))
        was_enabled = obs.enabled()
        obs.set_enabled(instrumented)
        try:
            stats = JoinStatistics()
            join = create_join("STR-L2AP", threshold, decay, stats=stats,
                               backend="numpy")
            registry = obs.get_registry()
            if instrumented:
                histogram = registry.histogram(
                    "sssj_batch_seconds", "Batch wall-clock seconds.",
                    ("session",)).labels(session="bench")
                processed = registry.counter(
                    "sssj_engine_vectors_processed_total",
                    "Vectors processed.", ("session",)).labels(
                        session="bench")
            start = time.perf_counter()
            for offset in range(0, len(vectors), batch_size):
                chunk = vectors[offset:offset + batch_size]
                with obs.span("batch", session="bench", size=len(chunk)):
                    batch_start = time.perf_counter()
                    for vector in chunk:
                        join.process(vector)
                    if instrumented:
                        histogram.observe(time.perf_counter() - batch_start)
                        processed.inc(len(chunk))
                        if (offset // batch_size) % scrape_every == 0:
                            registry.run_collectors()
            elapsed = time.perf_counter() - start
        finally:
            obs.set_enabled(was_enabled)
            obs.set_registry(previous_registry)
            obs.set_tracer(previous_tracer)
        return elapsed, stats, len(spans)

    def run_both():
        on_first = timed(True)
        off_first = timed(False)
        on_second = timed(True)
        off_second = timed(False)
        return on_first, off_first, on_second, off_second

    on_first, off_first, on_second, off_second = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    count = len(vectors)
    enabled_elapsed = min(on_first[0], on_second[0])
    disabled_elapsed = min(off_first[0], off_second[0])
    ratio = disabled_elapsed / enabled_elapsed if enabled_elapsed else 0.0
    sampled_spans = on_first[2]
    print(f"\nobs overhead (hashtags, {count} vectors): disabled "
          f"{disabled_elapsed:.2f}s, enabled {enabled_elapsed:.2f}s "
          f"(ratio {ratio:.3f}x), {sampled_spans} sampled span(s)")

    enabled_record = _backend_record(enabled_elapsed, on_first[1], count)
    enabled_record["sampled_spans"] = sampled_spans
    artifact = write_bench_micro(
        GATE_OUTPUT,
        benchmark="obs_overhead",
        config={"profile": "hashtags", "num_vectors": count, "seed": 7,
                "algorithm": "STR-L2AP", "threshold": threshold,
                "decay": decay, "batch_size": batch_size,
                "trace_sample": trace_sample, "scrape_every": scrape_every},
        backends={
            "numpy_obs_off": _backend_record(disabled_elapsed, off_first[1],
                                             count),
            "numpy_obs_on": enabled_record,
        },
        derived={"throughput_ratio": ratio},
    )
    print(f"benchmark artifact written to {artifact}")

    # Instrumentation must never change what the join computes.
    _assert_counter_parity(on_first[1], off_first[1])
    _assert_counter_parity(on_first[1], on_second[1])
    if count >= 10_000:  # reduced CI sizes track the artifact, not the gate
        assert ratio >= GATE_OBS_RATIO
