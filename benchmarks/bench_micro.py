"""Micro-benchmarks of the library's hot paths.

These are not paper figures; they use ``pytest-benchmark``'s statistical
timing to track the cost of the operations the experiments are built from:
sparse dot products, index maintenance and single-vector processing
throughput for each streaming index — now reported side by side for every
registered compute backend (see :mod:`repro.backends`).

``test_l2ap_streaming_hot_path_10k`` is the backend acceptance gate: on a
10 000-vector hot-path workload (the ``hashtags`` profile, whose skewed
vocabulary produces long posting lists) the NumPy backend must deliver at
least 6× the throughput of the pure-Python reference backend — PR 1's
vectorised kernels cleared 3×, the slot-space candidate pipeline of PR 2
doubles that — while producing the identical pair set and identical
operation counters.  The gate also writes the machine-readable
``BENCH_micro.json`` artifact (throughput, counters, backend, git sha) so
the perf trajectory is tracked across PRs; ``repro.bench.regression``
compares it against ``benchmarks/BENCH_baseline.json`` in CI.

Environment knobs (used by the CI smoke job):

``SSSJ_BENCH_VECTORS``
    Override the gate's stream length (default 10 000).
``SSSJ_BENCH_OUTPUT``
    Where to write ``BENCH_micro.json`` (default: repository root).
"""

import os
import time
from pathlib import Path

import pytest

from repro.backends import available_backends
from repro.bench.export import write_bench_micro
from repro.bench.runner import corpus_for
from repro.core.join import create_join
from repro.core.results import JoinStatistics
from repro.core.vector import SparseVector
from repro.datasets.generator import generate_profile_corpus

BACKENDS = available_backends()
GATE_VECTORS = int(os.environ.get("SSSJ_BENCH_VECTORS", "10000"))
GATE_OUTPUT = Path(os.environ.get(
    "SSSJ_BENCH_OUTPUT",
    Path(__file__).resolve().parent.parent / "BENCH_micro.json"))
#: Minimum numpy-over-python speedup on the gate workload at full size.
GATE_SPEEDUP = 6.0


@pytest.fixture(scope="module")
def rcv1_vectors():
    return corpus_for("rcv1", 300, seed=7)


@pytest.fixture(scope="module")
def tweets_vectors():
    return generate_profile_corpus("tweets", num_vectors=600, seed=7)


@pytest.fixture(scope="module")
def hashtags_vectors():
    return generate_profile_corpus("hashtags", num_vectors=GATE_VECTORS, seed=7)


def test_sparse_dot_product(benchmark, rcv1_vectors):
    a, b = rcv1_vectors[0], rcv1_vectors[1]
    benchmark(a.dot, b)


def test_vector_construction(benchmark, rcv1_vectors):
    entries = rcv1_vectors[0].to_dict()
    benchmark(lambda: SparseVector(0, 0.0, entries))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ["STR-INV", "STR-L2AP", "STR-L2"])
def test_streaming_throughput_rcv1(benchmark, rcv1_vectors, algorithm, backend):
    def run():
        join = create_join(algorithm, 0.7, 0.01, backend=backend)
        for vector in rcv1_vectors:
            join.process(vector)
        return join.stats.pairs_output

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ["STR-L2", "MB-L2"])
def test_framework_throughput_tweets(benchmark, tweets_vectors, algorithm, backend):
    def run():
        join = create_join(algorithm, 0.6, 0.01, backend=backend)
        count = sum(len(join.process(vector)) for vector in tweets_vectors)
        count += len(join.flush())
        return count

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
def test_l2ap_streaming_hot_path_10k(benchmark, hashtags_vectors):
    """Backend acceptance gate: ≥ 6× STR-L2AP throughput on the hashtags stream.

    Also emits ``BENCH_micro.json`` with the per-backend throughput and
    operation counters so the perf trajectory is tracked across PRs.
    """
    threshold, decay = 0.6, 2e-5  # horizon ≫ stream length: nothing expires

    def run(backend):
        stats = JoinStatistics()
        join = create_join("STR-L2AP", threshold, decay, stats=stats,
                           backend=backend)
        start = time.perf_counter()
        for vector in hashtags_vectors:
            join.process(vector)
        elapsed = time.perf_counter() - start
        return elapsed, stats

    def run_both():
        numpy_elapsed, numpy_stats = run("numpy")
        python_elapsed, python_stats = run("python")
        return {
            "python_s": python_elapsed,
            "numpy_s": numpy_elapsed,
            "speedup": python_elapsed / numpy_elapsed,
            "python_stats": python_stats,
            "numpy_stats": numpy_stats,
        }

    result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    count = len(hashtags_vectors)
    print(f"\nSTR-L2AP hot path (hashtags, {count} vectors): "
          f"python {result['python_s']:.1f}s, numpy {result['numpy_s']:.1f}s, "
          f"speedup {result['speedup']:.2f}x")

    def backend_record(elapsed, stats):
        return {
            "elapsed_s": elapsed,
            "throughput_vps": count / elapsed if elapsed else 0.0,
            "pairs_output": stats.pairs_output,
            "candidates_generated": stats.candidates_generated,
            "full_similarities": stats.full_similarities,
            "entries_traversed": stats.entries_traversed,
            "entries_pruned": stats.entries_pruned,
        }

    artifact = write_bench_micro(
        GATE_OUTPUT,
        benchmark="l2ap_streaming_hot_path",
        config={"profile": "hashtags", "num_vectors": count, "seed": 7,
                "algorithm": "STR-L2AP", "threshold": threshold,
                "decay": decay},
        backends={
            "python": backend_record(result["python_s"], result["python_stats"]),
            "numpy": backend_record(result["numpy_s"], result["numpy_stats"]),
        },
        derived={"speedup": result["speedup"]},
    )
    print(f"benchmark artifact written to {artifact}")

    numpy_stats = result["numpy_stats"]
    python_stats = result["python_stats"]
    # Pair-for-pair and operation-counter identity across the data paths.
    assert numpy_stats.pairs_output == python_stats.pairs_output
    assert numpy_stats.candidates_generated == python_stats.candidates_generated
    assert numpy_stats.full_similarities == python_stats.full_similarities
    assert numpy_stats.entries_traversed == python_stats.entries_traversed
    if count >= 10_000:  # reduced CI sizes track the artifact, not the gate
        assert result["speedup"] >= GATE_SPEEDUP
