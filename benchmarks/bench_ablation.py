"""Ablation benchmarks for the design choices discussed in Sections 5.4 and 6."""

from repro.bench.experiments import ablation_baseline, ablation_bounds


def test_ablation_bound_families(benchmark, scale, report):
    result = benchmark.pedantic(ablation_bounds, args=(scale,), rounds=1, iterations=1)
    report(result)
    totals: dict[str, int] = {}
    for row in result.rows:
        totals[row["indexing"]] = totals.get(row["indexing"], 0) + row["full_sims"]
    # The ℓ₂-based schemes verify no more candidates than the plain inverted
    # index — the pruning the paper attributes to the ℓ₂ bounds.
    assert totals["L2"] <= totals["INV"]
    assert totals["L2AP"] <= totals["INV"]
    # L2 never re-indexes, by design.
    assert all(row["reindexings"] == 0 for row in result.rows if row["indexing"] == "L2")


def test_ablation_against_sliding_window_baseline(benchmark, scale, report):
    result = benchmark.pedantic(ablation_baseline, args=(scale,), rounds=1, iterations=1)
    report(result)
    for row in result.rows:
        # Exactness: the indexed join returns the same number of pairs as the
        # exact sliding-window baseline.
        assert row["pairs"] == row["baseline_pairs"]
        # Pruning: the indexed join computes no more full similarities.
        assert row["str_l2_sims"] <= row["baseline_sims"]
