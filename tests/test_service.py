"""Tests for the long-running join service (repro.service).

The load-bearing property is end-to-end determinism: for a fixed stream,
the pairs a session emits — under any batching/backpressure settings,
with or without a mid-stream kill + checkpoint recovery — are identical
to :func:`repro.core.join.streaming_self_join`, bitwise, counters
included.  That property is pinned by hypothesis tests at the bottom.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import available_backends
from repro.core.results import SimilarPair
from repro.core.vector import SparseVector
from repro.service import (
    BackpressureError,
    CallbackSink,
    JoinService,
    JoinSession,
    JsonlSink,
    MemorySink,
    ServiceClient,
    SessionConfig,
    SessionError,
    SinkError,
    create_sink,
    read_jsonl_pairs,
    serve,
)
from repro.service.protocol import (
    ServiceProtocolError,
    decode_vector,
    encode_vector,
    pair_from_wire,
    pair_to_wire,
)
from tests.conftest import random_vectors
from tests.groundtruth import counters_without_time, engine_pairs

THETA, DECAY = 0.6, 0.05


def expected_pairs(vectors, *, algorithm="STR-L2", backend=None):
    return engine_pairs(vectors, THETA, DECAY, algorithm=algorithm,
                        backend=backend)


def make_session(name="s", *, vectors_cfg=None, **overrides) -> JoinSession:
    config = SessionConfig(name=name, threshold=THETA, decay=DECAY,
                           **(vectors_cfg or {}), **overrides)
    return JoinSession(config)


class TestSessionConfig:
    def test_rejects_unknown_backpressure_policy(self):
        with pytest.raises(SessionError):
            SessionConfig(name="x", threshold=0.6, decay=0.05,
                          backpressure="panic")

    @pytest.mark.parametrize("field,value", [
        ("queue_max", 0), ("batch_max_items", 0), ("batch_max_delay", -1.0),
    ])
    def test_rejects_nonpositive_limits(self, field, value):
        with pytest.raises(SessionError):
            SessionConfig(name="x", threshold=0.6, decay=0.05,
                          **{field: value})

    def test_round_trips_through_dict_and_ignores_unknown_keys(self):
        config = SessionConfig(name="x", threshold=0.7, decay=0.01,
                               batch_max_items=3)
        payload = dict(config.as_dict(), some_future_field=1)
        assert SessionConfig.from_dict(payload) == config


class TestProtocol:
    def test_vector_round_trip_is_bitwise_without_renormalisation(self):
        vector = SparseVector(7, 3.5, {2: 0.4, 9: 0.8})  # normalised here
        again = decode_vector(json.loads(json.dumps(encode_vector(vector))),
                              normalize=False)
        assert again.vector_id == 7
        assert again.timestamp == 3.5
        assert dict(again) == dict(vector)

    def test_decode_normalises_raw_weights_by_default(self):
        raw = decode_vector([1, 0.0, [2, 3.0, 9, 4.0]])
        assert dict(raw) == dict(SparseVector(1, 0.0, {2: 3.0, 9: 4.0}))

    def test_pair_round_trip_is_bitwise(self):
        pair = SimilarPair.make(3, 1, 0.87654321, time_delta=1.25,
                                dot=0.9, reported_at=42.0)
        assert pair_from_wire(json.loads(json.dumps(pair_to_wire(pair)))) == pair

    def test_bad_vector_payload_raises(self):
        with pytest.raises(ServiceProtocolError):
            decode_vector([1, 2.0, [3]])  # odd coordinate list


class TestSinks:
    def test_memory_sink_cursor_pages_through_pairs(self):
        sink = MemorySink()
        pairs = [SimilarPair.make(i, i + 1, 0.9) for i in range(5)]
        sink.emit(pairs[:3])
        sink.emit(pairs[3:])
        page, cursor, _ = sink.read(0, limit=2)
        assert page == pairs[:2] and cursor == 2
        page, cursor, _ = sink.read(cursor)
        assert page == pairs[2:] and cursor == 5
        assert sink.read(cursor)[0] == []

    def test_memory_sink_eviction_reports_gap(self):
        sink = MemorySink(capacity=3)
        sink.emit([SimilarPair.make(i, i + 1, 0.9) for i in range(10)])
        page, cursor, first_retained = sink.read(0)
        assert first_retained == 7
        assert cursor == 10
        assert [p.id_a for p in page] == [7, 8, 9]

    def test_memory_sink_overflow_mid_cursor_reports_the_gap(self):
        # A reader paginates partway, then the retention window slides
        # past its cursor: the next read must surface the gap through
        # first_retained (and start at the oldest retained pair) rather
        # than silently renumbering or replaying the wrong pairs.
        sink = MemorySink(capacity=4)
        first_batch = [SimilarPair.make(i, i + 1, 0.9) for i in range(6)]
        sink.emit(first_batch)
        page, cursor, first_retained = sink.read(2, limit=2)
        assert [p.id_a for p in page] == [2, 3] and cursor == 4
        assert first_retained == 2  # no gap yet for this reader
        # 8 more pairs: everything below sequence 10 is evicted, so the
        # reader's cursor=4 now points into the evicted range.
        sink.emit([SimilarPair.make(i, i + 1, 0.9) for i in range(6, 14)])
        page, next_cursor, first_retained = sink.read(cursor)
        assert first_retained == 10 > cursor  # the gap is explicit
        assert [p.id_a for p in page] == [10, 11, 12, 13]
        assert next_cursor == 14
        # A cursor inside the retained window still reads gap-free.
        page, _, first_retained = sink.read(11)
        assert first_retained == 10 <= 11
        assert [p.id_a for p in page] == [11, 12, 13]

    def test_jsonl_sink_rolls_back_a_partial_line_after_the_token(self, tmp_path):
        # Crash scenario: the checkpoint token was taken, more pairs were
        # written, and the crash tore the final line in half.  The token's
        # offset lands mid-file (before the torn tail); restore must
        # truncate everything after it — whole lines and the torn
        # fragment alike — leaving a file that parses cleanly.
        path = tmp_path / "pairs.jsonl"
        sink = JsonlSink(path)
        durable = [SimilarPair.make(0, 1, 0.9), SimilarPair.make(1, 2, 0.8)]
        sink.emit(durable)
        token = sink.position()
        sink.emit([SimilarPair.make(2, 3, 0.7)])
        sink.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"sim": 0.6, "torn')  # no newline: a torn write
        assert path.stat().st_size > token["offset"]
        reopened = JsonlSink(path)
        reopened.restore(token)
        assert read_jsonl_pairs(path) == durable  # torn tail is gone
        assert reopened.position() == token
        reopened.emit([SimilarPair.make(9, 10, 0.95)])
        pairs = read_jsonl_pairs(path)  # every line parses again
        assert pairs[:2] == durable and pairs[2].id_a == 9
        reopened.close()

    def test_jsonl_sink_appends_and_restores_to_offset(self, tmp_path):
        path = tmp_path / "pairs.jsonl"
        sink = JsonlSink(path)
        before = [SimilarPair.make(0, 1, 0.9), SimilarPair.make(1, 2, 0.8)]
        sink.emit(before)
        token = sink.position()
        sink.emit([SimilarPair.make(2, 3, 0.7)])
        assert len(read_jsonl_pairs(path)) == 3
        sink.restore(token)  # roll back the post-checkpoint pair
        assert read_jsonl_pairs(path) == before
        sink.emit([SimilarPair.make(9, 10, 0.95)])
        assert read_jsonl_pairs(path)[-1].id_a == 9
        sink.close()

    def test_jsonl_sink_refuses_a_shrunken_file(self, tmp_path):
        path = tmp_path / "pairs.jsonl"
        sink = JsonlSink(path)
        sink.emit([SimilarPair.make(0, 1, 0.9)])
        token = sink.position()
        sink.close()
        path.write_text("")
        reopened = JsonlSink(path)
        with pytest.raises(SinkError):
            reopened.restore(token)
        reopened.close()

    def test_callback_sink_forwards_every_pair(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit([SimilarPair.make(0, 1, 0.9)])
        assert len(seen) == 1 and seen[0].key == (0, 1)

    def test_create_sink_rejects_unknown_kinds(self):
        with pytest.raises(SinkError):
            create_sink({"kind": "carrier-pigeon"})
        with pytest.raises(SinkError):
            create_sink({"kind": "jsonl"})  # no path


class TestJoinSession:
    @pytest.mark.parametrize("batch_max_items,batch_max_delay", [
        (1, 0.0), (7, 0.0), (128, 0.01),
    ])
    def test_session_output_matches_streaming_self_join(
            self, batch_max_items, batch_max_delay):
        vectors = random_vectors(80, seed=23)
        expected, expected_stats = expected_pairs(vectors)
        session = make_session(batch_max_items=batch_max_items,
                               batch_max_delay=batch_max_delay)
        session.ingest(vectors)
        summary = session.drain()
        pairs, _, _ = session.results.read(0)
        assert pairs == expected
        assert summary["processed"] == len(vectors)
        assert (counters_without_time(session.join.stats.as_dict())
                == counters_without_time(expected_stats.as_dict()))
        session.close()

    def test_minibatch_session_drains_buffered_windows(self):
        vectors = random_vectors(60, seed=29)
        expected, _ = expected_pairs(vectors, algorithm="MB-L2")
        session = make_session(algorithm="MB-L2")
        session.ingest(vectors)
        session.drain()
        pairs, _, _ = session.results.read(0)
        assert pairs == expected
        session.close()

    @pytest.mark.skipif("numpy" not in available_backends(),
                        reason="sharded engine needs the NumPy backend")
    def test_sharded_session_matches_single_process(self):
        vectors = random_vectors(60, seed=31)
        expected, _ = expected_pairs(vectors, backend="numpy")
        session = make_session(workers=2, shard_executor="serial",
                               backend="numpy")
        session.ingest(vectors)
        session.drain()
        pairs, _, _ = session.results.read(0)
        assert pairs == expected
        session.close()

    def test_extra_sinks_receive_the_same_pairs(self, tmp_path):
        vectors = random_vectors(50, seed=37)
        expected, _ = expected_pairs(vectors)
        seen: list[SimilarPair] = []
        config = SessionConfig(name="s", threshold=THETA, decay=DECAY)
        session = JoinSession(config, sinks=[
            JsonlSink(tmp_path / "pairs.jsonl"), CallbackSink(seen.append)])
        session.ingest(vectors)
        session.drain()
        assert read_jsonl_pairs(tmp_path / "pairs.jsonl") == expected
        assert seen == expected
        session.close()

    def test_drop_policy_drops_newest_and_stays_deterministic(self):
        vectors = random_vectors(30, seed=41)
        session = make_session(queue_max=10, backpressure="drop")
        # Hold the worker back so the bounded queue actually fills.
        session.start = lambda: None  # type: ignore[method-assign]
        accepted_vectors = []
        for vector in vectors:
            accepted, dropped = session.ingest([vector])
            if accepted:
                accepted_vectors.append(vector)
        assert session.dropped == len(vectors) - 10
        del session.start  # restore the real method
        session.start()
        session.drain()
        pairs, _, _ = session.results.read(0)
        expected, _ = expected_pairs(accepted_vectors)
        assert pairs == expected
        session.close()

    def test_error_policy_raises_backpressure_error(self):
        vectors = random_vectors(12, seed=43)
        session = make_session(queue_max=4, backpressure="error")
        session.start = lambda: None  # type: ignore[method-assign]
        with pytest.raises(BackpressureError):
            session.ingest(vectors)
        assert session.accepted == 4
        del session.start
        session.close()

    def test_block_policy_blocks_until_the_worker_catches_up(self):
        vectors = random_vectors(60, seed=47)
        expected, _ = expected_pairs(vectors)
        session = make_session(queue_max=2, backpressure="block",
                               batch_max_items=1)
        session.ingest(vectors)  # must not deadlock
        session.drain()
        pairs, _, _ = session.results.read(0)
        assert pairs == expected
        session.close()

    def test_out_of_order_timestamps_are_rejected_at_ingest(self):
        from repro.exceptions import StreamOrderError

        session = make_session()
        session.ingest([SparseVector(0, 10.0, {1: 1.0})])
        with pytest.raises(StreamOrderError):
            session.ingest([SparseVector(1, 0.0, {1: 1.0})])
        # The session itself is still healthy: order resumes from t=10.
        session.ingest([SparseVector(2, 11.0, {1: 1.0})])
        session.drain()
        assert session.processed == 2
        session.close()

    def test_worker_failure_surfaces_through_status_and_ingest(self):
        def explode(_pair):
            raise RuntimeError("sink disk full")

        config = SessionConfig(name="s", threshold=THETA, decay=DECAY,
                               batch_max_items=1, batch_max_delay=0.0)
        session = JoinSession(config, sinks=[CallbackSink(explode)])
        # Two identical simultaneous vectors force a pair, which makes the
        # sink blow up inside the worker thread.
        session.ingest([SparseVector(0, 0.0, {1: 1.0}),
                        SparseVector(1, 0.0, {1: 1.0})])
        with pytest.raises(SessionError):
            session.drain(timeout=10.0)
        assert session.status == "failed"
        assert "sink disk full" in (session.error or "")
        with pytest.raises(SessionError):
            session.ingest([SparseVector(2, 1.0, {1: 1.0})])
        session.close()

    def test_vectors_accepted_behind_a_drain_token_are_still_processed(self):
        """A producer can race drain(): its status check passes before the
        worker flips the state, leaving accepted vectors queued *behind*
        the drain token.  They were acknowledged, so drain must process
        them rather than silently drop them."""
        vectors = random_vectors(30, seed=107)
        expected, _ = expected_pairs(vectors)
        session = make_session()
        session.start = lambda: None  # type: ignore[method-assign]
        session.ingest(vectors[:20])
        reply, done = session._enqueue_control("drain")
        session.ingest(vectors[20:])  # accepted behind the drain barrier
        del session.start
        session.start()
        session._await_control(done, reply, 30.0)
        assert reply["processed"] == 30
        pairs, _, _ = session.results.read(0)
        assert pairs == expected
        session.close()

    def test_ingest_after_drain_is_refused(self):
        session = make_session()
        session.ingest(random_vectors(10, seed=53))
        session.drain()
        with pytest.raises(SessionError):
            session.ingest(random_vectors(5, seed=53))
        session.close()

    def test_checkpoint_now_requires_a_checkpoint_path(self):
        session = make_session()
        with pytest.raises(SessionError):
            session.checkpoint_now()
        session.close()

    def test_checkpointing_rejects_non_str_and_sharded_sessions(self, tmp_path):
        with pytest.raises(SessionError):
            JoinSession(SessionConfig(name="mb", threshold=THETA, decay=DECAY,
                                      algorithm="MB-L2"),
                        checkpoint_path=tmp_path / "mb.ckpt")
        with pytest.raises(SessionError):
            JoinSession(SessionConfig(name="sh", threshold=THETA, decay=DECAY,
                                      workers=2),
                        checkpoint_path=tmp_path / "sh.ckpt")

    def test_stats_exposes_counters_and_latency_percentiles(self):
        vectors = random_vectors(40, seed=59)
        session = make_session()
        session.ingest(vectors)
        session.drain()
        stats = session.stats()
        assert stats["processed"] == 40
        assert stats["status"] == "drained"
        assert stats["counters"]["vectors_processed"] == 40
        for key in ("count", "p50_ms", "p95_ms", "p99_ms"):
            assert key in stats["latency"]
        assert stats["latency"]["count"] == 40
        assert stats["sinks"][0]["kind"] == "memory"
        session.close()


class TestRecovery:
    @pytest.mark.parametrize("backend", [
        "python",
        pytest.param("numpy", marks=pytest.mark.skipif(
            "numpy" not in available_backends(),
            reason="NumPy backend unavailable")),
    ])
    def test_kill_and_resume_matches_uninterrupted_run(self, tmp_path, backend):
        vectors = random_vectors(90, seed=61)
        expected, expected_stats = expected_pairs(vectors, backend=backend)
        ckpt = tmp_path / "s.ckpt"
        config = SessionConfig(name="s", threshold=THETA, decay=DECAY,
                               backend=backend, batch_max_items=8,
                               batch_max_delay=0.0)
        session = JoinSession(config, sinks=[JsonlSink(tmp_path / "p.jsonl")],
                              checkpoint_path=ckpt)
        session.ingest(vectors[:50])
        session.checkpoint_now()
        # Vectors past the checkpoint are lost with the crash; their pairs
        # must be rolled back from the durable sink on resume.
        session.ingest(vectors[50:70])
        session.drain = None  # make accidental use obvious
        session.kill()
        assert session.status == "killed"

        resumed = JoinSession.resume(ckpt)
        assert resumed.processed == 50
        assert resumed.resumed
        resumed.ingest(vectors[resumed.processed:])
        resumed.drain()
        assert read_jsonl_pairs(tmp_path / "p.jsonl") == expected
        assert (counters_without_time(resumed.join.stats.as_dict())
                == counters_without_time(expected_stats.as_dict()))
        resumed.close()

    def test_checkpoint_write_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        ckpt = tmp_path / "s.ckpt"
        config = SessionConfig(name="s", threshold=THETA, decay=DECAY)
        session = JoinSession(config, checkpoint_path=ckpt)
        session.ingest(random_vectors(30, seed=67))
        session.checkpoint_now()
        session.checkpoint_now()  # overwrite path exercised
        assert ckpt.exists()
        assert list(tmp_path.glob("*.tmp.*")) == []
        payload = json.loads(ckpt.read_text())
        assert payload["service_version"] == 1
        session.close()

    def test_periodic_checkpoints_fire_between_batches(self, tmp_path):
        ckpt = tmp_path / "s.ckpt"
        config = SessionConfig(name="s", threshold=THETA, decay=DECAY,
                               batch_max_items=5, batch_max_delay=0.0,
                               checkpoint_every_items=10)
        session = JoinSession(config, checkpoint_path=ckpt)
        session.ingest(random_vectors(40, seed=71))
        session.drain()
        assert session._checkpointer.checkpoints_written >= 2
        assert json.loads(ckpt.read_text())["processed"] == 40
        session.close()

    def test_drained_session_resumes_as_drained(self, tmp_path):
        ckpt = tmp_path / "s.ckpt"
        config = SessionConfig(name="s", threshold=THETA, decay=DECAY)
        session = JoinSession(config, checkpoint_path=ckpt)
        session.ingest(random_vectors(20, seed=73))
        session.drain()
        session.close()
        resumed = JoinSession.resume(ckpt)
        assert resumed.status == "drained"
        with pytest.raises(SessionError):
            resumed.ingest(random_vectors(5, seed=73))
        resumed.close()

    def test_memory_sink_cursor_base_survives_recovery(self, tmp_path):
        ckpt = tmp_path / "s.ckpt"
        vectors = random_vectors(60, seed=79)
        config = SessionConfig(name="s", threshold=THETA, decay=DECAY)
        session = JoinSession(config, checkpoint_path=ckpt)
        session.ingest(vectors[:40])
        session.checkpoint_now()
        emitted_before = session.results.count
        session.kill()
        resumed = JoinSession.resume(ckpt)
        # Cursors handed to clients before the crash stay valid: the
        # resumed sink continues the sequence instead of restarting at 0.
        assert resumed.results.count == emitted_before
        assert resumed.results.first_retained == emitted_before
        resumed.close()


class TestJoinServiceDispatch:
    """Drive the dispatcher with plain dictionaries (no sockets)."""

    def test_full_session_lifecycle(self, tmp_path):
        service = JoinService(checkpoint_dir=tmp_path)
        vectors = random_vectors(50, seed=83)
        expected, _ = expected_pairs(vectors)
        response = service.handle({"op": "open", "session": "s1",
                                   "theta": THETA, "decay": DECAY,
                                   "normalize": False})
        assert response["ok"] and not response["resumed"]
        response = service.handle({
            "op": "ingest", "session": "s1",
            "vectors": [encode_vector(vector) for vector in vectors]})
        assert response["ok"] and response["accepted"] == 50
        response = service.handle({"op": "drain", "session": "s1"})
        assert response["ok"] and response["processed"] == 50
        response = service.handle({"op": "results", "session": "s1"})
        assert [pair_from_wire(p) for p in response["pairs"]] == expected
        stats = service.handle({"op": "stats"})
        assert stats["server"]["sessions"] == 1
        assert stats["sessions"]["s1"]["latency"]["count"] == 50
        assert service.handle({"op": "close", "session": "s1"})["ok"]
        assert service.sessions == {}
        service.shutdown()

    def test_open_is_idempotent(self):
        service = JoinService()
        first = service.handle({"op": "open", "session": "s",
                                "theta": THETA, "decay": DECAY})
        second = service.handle({"op": "open", "session": "s",
                                 "theta": 0.9, "decay": 0.5})
        assert not first["existing"] and second["existing"]
        service.shutdown()

    @pytest.mark.parametrize("request_dict,needle", [
        ({"op": "frobnicate"}, "unknown op"),
        ({"op": "ingest", "session": "nope", "vectors": []}, "no session"),
        ({"op": "open", "session": "bad name!", "theta": 0.6, "decay": 0.1},
         "session name"),
        ({"op": "open", "session": "s"}, "decay"),
        ({"op": "drain"}, "session"),
    ])
    def test_bad_requests_return_errors_not_exceptions(self, request_dict,
                                                       needle):
        service = JoinService()
        response = service.handle(request_dict)
        assert response["ok"] is False
        assert needle in response["error"]
        service.shutdown()

    def test_recovery_scan_resumes_checkpointed_sessions(self, tmp_path):
        vectors = random_vectors(40, seed=89)
        service = JoinService(checkpoint_dir=tmp_path)
        service.handle({"op": "open", "session": "s1", "theta": THETA,
                        "decay": DECAY, "checkpoint_every_items": 5,
                        "normalize": False})
        service.handle({"op": "ingest", "session": "s1",
                        "vectors": [encode_vector(v) for v in vectors[:25]]})
        service.handle({"op": "checkpoint", "session": "s1"})
        # Simulate kill -9: drop the service object without closing it.
        for session in service.sessions.values():
            session.kill()

        reborn = JoinService(checkpoint_dir=tmp_path)
        assert reborn.recover_sessions() == ["s1"]
        resumed = reborn.sessions["s1"]
        assert resumed.processed == 25
        reborn.handle({"op": "ingest", "session": "s1",
                       "vectors": [encode_vector(v) for v in vectors[25:]]})
        response = reborn.handle({"op": "drain", "session": "s1"})
        assert response["processed"] == 40
        expected, _ = expected_pairs(vectors)
        # The memory sink only retains post-recovery pairs; check the tail.
        results = reborn.handle({"op": "results", "session": "s1",
                                 "cursor": resumed.results.first_retained})
        tail = [pair_from_wire(p) for p in results["pairs"]]
        assert tail == expected[len(expected) - len(tail):]
        reborn.shutdown()


class TestServiceOverSockets:
    def test_socket_round_trip_and_shutdown(self, tmp_path):
        vectors = random_vectors(60, seed=97)
        expected, _ = expected_pairs(vectors)
        server, recovered = serve(port=0, checkpoint_dir=tmp_path)
        assert recovered == []
        thread = threading.Thread(target=server.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        host, port = server.address
        with ServiceClient(host, port) as client:
            assert client.ping()["pong"]
            client.open_session("s1", theta=THETA, decay=DECAY,
                                normalize=False,
                                sinks=[{"kind": "jsonl",
                                        "path": str(tmp_path / "p.jsonl")}])
            totals = client.ingest("s1", vectors, chunk_size=17)
            assert totals == {"accepted": 60, "dropped": 0, "deduped": 0}
            summary = client.drain("s1")
            assert summary["processed"] == 60
            assert client.results("s1")["pairs"] == expected
            stats = client.stats("s1")
            assert stats["sessions"]["s1"]["pairs_emitted"] == len(expected)
            client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert read_jsonl_pairs(tmp_path / "p.jsonl") == expected

    def test_iter_results_follows_until_drained(self):
        vectors = random_vectors(40, seed=101)
        expected, _ = expected_pairs(vectors)
        server, _ = serve(port=0)
        thread = threading.Thread(target=server.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        host, port = server.address
        collected: list[SimilarPair] = []
        with ServiceClient(host, port) as client:
            client.open_session("s", theta=THETA, decay=DECAY,
                                normalize=False)
            client.ingest("s", vectors)
            with ServiceClient(host, port) as drainer:
                drainer.drain("s")
            collected = list(client.iter_results("s"))
            client.shutdown()
        thread.join(timeout=10)
        assert collected == expected


class TestFaultTolerantService:
    """Idempotent ingest, reconnects, injected faults, bounded deadlines."""

    def test_duplicate_batch_is_acked_and_deduped(self):
        vectors = random_vectors(20, seed=211)
        session = make_session()
        assert session.ingest(vectors[:10], seq=0) == (10, 0)
        # Resend of the same batch (its ack was "lost"): acknowledged,
        # nothing re-processed.
        assert session.ingest(vectors[:10], seq=0) == (0, 0)
        assert session.deduped == 10
        # Partial overlap: the already-consumed prefix is trimmed.
        assert session.ingest(vectors[5:15], seq=5) == (5, 0)
        assert session.deduped == 15
        assert session.ingest_seq == 15
        summary = session.drain()
        assert summary["processed"] == 15
        expected, _ = expected_pairs(vectors[:15])
        pairs, _, _ = session.results.read(0)
        assert pairs == expected
        stats = session.stats()
        assert stats["deduped"] == 15 and stats["ingest_seq"] == 15
        session.close()

    def test_sequence_gap_raises_immediately(self):
        session = make_session()
        vectors = random_vectors(10, seed=223)
        session.ingest(vectors[:3], seq=0)
        with pytest.raises(SessionError, match="sequence gap"):
            session.ingest(vectors[5:], seq=5)
        session.close()

    def test_worker_death_carries_the_original_traceback(self):
        def explode(_pair):
            raise RuntimeError("sink disk full")

        config = SessionConfig(name="s", threshold=THETA, decay=DECAY,
                               batch_max_items=1, batch_max_delay=0.0,
                               sink_retries=0)
        session = JoinSession(config, sinks=[CallbackSink(explode)])
        session.ingest([SparseVector(0, 0.0, {1: 1.0}),
                        SparseVector(1, 0.0, {1: 1.0})])
        with pytest.raises(SessionError) as excinfo:
            session.drain(timeout=10.0)
        assert "sink disk full" in (session.error_traceback or "")
        assert "RuntimeError" in (session.error_traceback or "")
        # The service error response forwards it to remote operators.
        service = JoinService()
        service.sessions["s"] = session
        response = service.handle({"op": "results", "session": "s"})
        assert not response["ok"]
        assert "sink disk full" in response.get("traceback", "")
        session.close()

    def test_injected_sink_failure_is_retried_without_loss(self):
        from repro.faults import FaultInjector

        vectors = random_vectors(30, seed=227)
        expected, _ = expected_pairs(vectors)
        config = SessionConfig(name="s", threshold=THETA, decay=DECAY)
        session = JoinSession(
            config, fault_injector=FaultInjector("fail-sink:after=1"))
        session.ingest(vectors)
        session.drain()
        assert session.sink_retried >= 1
        pairs, _, _ = session.results.read(0)
        assert pairs == expected
        session.close()

    def test_periodic_checkpoint_failures_are_tolerated_then_fatal(self):
        from repro.core.checkpoint import PeriodicCheckpointer

        class FakeStats:
            vectors_processed = 0

        class FakeJoin:
            stats = FakeStats()

        join = FakeJoin()
        calls = []

        def broken_save(_join, _path):
            calls.append(1)
            raise OSError("disk full")

        ticker = PeriodicCheckpointer(join, "/nonexistent/cp.json",
                                      every_vectors=1, save=broken_save,
                                      max_consecutive_failures=3)
        join.stats.vectors_processed = 2  # a checkpoint is now due
        assert ticker.tick() is None  # swallowed
        assert ticker.tick() is None  # swallowed, cadence clock not advanced
        with pytest.raises(OSError):
            ticker.tick()             # third consecutive failure propagates
        assert ticker.checkpoint_failures == 3
        assert len(calls) == 3
        assert isinstance(ticker.last_error, OSError)
        with pytest.raises(OSError):
            ticker.tick(force=True)   # explicit requests always tell the truth
        # One successful write heals the consecutive-failure streak.
        ticker._save = lambda _join, path: path
        assert ticker.tick(force=True) is not None
        assert ticker._consecutive_failures == 0

    def test_reconnect_mid_ingest_loses_and_duplicates_nothing(self):
        """The acceptance scenario: the server severs the connection after
        applying an ingest but before acking it.  The client reconnects,
        resends, and sequence numbers turn the resend into a no-op."""
        vectors = random_vectors(60, seed=233)
        expected, _ = expected_pairs(vectors)
        server, _ = serve(port=0, fault_plan="sever-client:after=2")
        thread = threading.Thread(target=server.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        host, port = server.address
        with ServiceClient(host, port, backoff_base=0.01) as client:
            client.open_session("s", theta=THETA, decay=DECAY,
                                normalize=False)
            totals = client.ingest("s", vectors, chunk_size=17)
            assert client.reconnects >= 1
            # Chunk 2 (17 vectors) was applied server-side, its ack lost,
            # and the resend deduplicated — nothing lost, nothing doubled.
            assert totals["deduped"] == 17
            assert totals["accepted"] == 60 - 17
            summary = client.drain("s")
            assert summary["processed"] == 60
            assert client.results("s")["pairs"] == expected
            client.shutdown()
        thread.join(timeout=10)
        injector = server.service.fault_injector
        assert [e["kind"] for e in injector.fired] == ["sever-client"]

    def test_drain_and_close_are_idempotent_over_the_protocol(self):
        vectors = random_vectors(20, seed=239)
        service = JoinService()
        service.handle({"op": "open", "session": "s", "theta": THETA,
                        "decay": DECAY, "normalize": False})
        service.handle({"op": "ingest", "session": "s",
                        "vectors": [encode_vector(v) for v in vectors]})
        first = service.handle({"op": "drain", "session": "s"})
        again = service.handle({"op": "drain", "session": "s"})
        assert first["ok"] and again["ok"]
        assert again["already_drained"]
        assert again["processed"] == first["processed"] == 20
        closed = service.handle({"op": "close", "session": "s"})
        missing = service.handle({"op": "close", "session": "s"})
        assert closed["ok"] and missing["ok"]
        assert missing.get("missing") is True

    def test_server_read_deadline_disconnects_wedged_clients(self):
        import socket as socket_module
        import time as time_module

        server, _ = serve(port=0, read_timeout=0.3)
        thread = threading.Thread(target=server.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        host, port = server.address
        try:
            with socket_module.create_connection((host, port),
                                                 timeout=5.0) as wedged:
                # Send nothing: the handler's read deadline must close the
                # connection instead of pinning its thread forever.
                wedged.settimeout(5.0)
                start = time_module.monotonic()
                assert wedged.recv(1) == b""
                assert time_module.monotonic() - start < 4.0
            # A well-behaved client still works afterwards.
            with ServiceClient(host, port) as client:
                assert client.ping()["pong"]
                client.shutdown()
        finally:
            thread.join(timeout=10)

    def test_client_retries_then_reports_the_transport_error(self):
        from repro.service import ServiceClientError

        server, _ = serve(port=0)
        thread = threading.Thread(target=server.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        host, port = server.address
        client = ServiceClient(host, port, max_retries=2, backoff_base=0.01)
        assert client.ping()["pong"]
        client.shutdown()
        thread.join(timeout=10)
        with pytest.raises(ServiceClientError, match="after 3 attempt"):
            client.ping()
        client.close()

    def test_open_resyncs_the_client_sequence_counter(self):
        """A restarted client asks the server where the stream stands and
        continues from there instead of double-feeding."""
        vectors = random_vectors(30, seed=241)
        expected, _ = expected_pairs(vectors)
        server, _ = serve(port=0)
        thread = threading.Thread(target=server.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        host, port = server.address
        with ServiceClient(host, port) as first:
            first.open_session("s", theta=THETA, decay=DECAY,
                               normalize=False)
            first.ingest("s", vectors[:20])
        # A brand-new client asks the server where the stream stands
        # (synced into its seq counter by open) and continues from there.
        with ServiceClient(host, port) as second:
            opened = second.open_session("s", theta=THETA, decay=DECAY,
                                         normalize=False)
            assert opened["ingest_seq"] == 20
            # A stale resend of an already-consumed slice (its ack was
            # lost before the restart) is acknowledged, not re-processed:
            response = second.request(
                "ingest", session="s", seq=10,
                vectors=[encode_vector(v) for v in vectors[10:20]])
            assert response["deduped"] == 10 and response["accepted"] == 0
            totals = second.ingest("s", vectors[20:])
            assert totals == {"accepted": 10, "dropped": 0, "deduped": 0}
            summary = second.drain("s")
            assert summary["processed"] == 30
            assert second.results("s")["pairs"] == expected
            second.shutdown()
        thread.join(timeout=10)


# -- the determinism acceptance property --------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    count=st.integers(10, 60),
    batch_max_items=st.integers(1, 16),
    batch_max_delay=st.sampled_from([0.0, 0.002]),
    queue_max=st.integers(8, 64),
    backpressure=st.sampled_from(["block", "drop", "error"]),
)
def test_service_is_deterministic_for_any_policy(seed, count, batch_max_items,
                                                 batch_max_delay, queue_max,
                                                 backpressure):
    """Any batching/backpressure configuration emits exactly the
    ``streaming_self_join`` pairs (the queue never overflows here, so the
    drop/error policies accept the whole stream)."""
    vectors = random_vectors(count, seed=seed)
    expected, expected_stats = expected_pairs(vectors)
    config = SessionConfig(
        name="h", threshold=THETA, decay=DECAY,
        batch_max_items=batch_max_items, batch_max_delay=batch_max_delay,
        queue_max=max(queue_max, count if backpressure != "block" else queue_max),
        backpressure=backpressure)
    session = JoinSession(config)
    session.ingest(vectors)
    session.drain()
    pairs, _, _ = session.results.read(0)
    assert pairs == expected
    assert (counters_without_time(session.join.stats.as_dict())
            == counters_without_time(expected_stats.as_dict()))
    session.close()


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    count=st.integers(20, 70),
    split=st.floats(0.1, 0.9),
    overrun=st.integers(0, 10),
    batch_max_items=st.integers(1, 16),
)
def test_service_recovery_is_deterministic(tmp_path_factory, seed, count,
                                           split, overrun, batch_max_items):
    """Checkpoint mid-stream, process a bit more, crash, resume, re-feed:
    the durable sink ends up with exactly the uninterrupted run's pairs."""
    tmp_path = tmp_path_factory.mktemp("svc")
    vectors = random_vectors(count, seed=seed)
    expected, expected_stats = expected_pairs(vectors)
    split_at = max(1, int(count * split))
    ckpt = tmp_path / "h.ckpt"
    config = SessionConfig(name="h", threshold=THETA, decay=DECAY,
                           batch_max_items=batch_max_items,
                           batch_max_delay=0.0)
    session = JoinSession(config, sinks=[JsonlSink(tmp_path / "p.jsonl")],
                          checkpoint_path=ckpt)
    session.ingest(vectors[:split_at])
    session.checkpoint_now()
    session.ingest(vectors[split_at:split_at + overrun])  # lost in the crash
    session.kill()

    resumed = JoinSession.resume(ckpt)
    assert resumed.processed == split_at
    resumed.ingest(vectors[split_at:])
    resumed.drain()
    assert read_jsonl_pairs(tmp_path / "p.jsonl") == expected
    assert (counters_without_time(resumed.join.stats.as_dict())
            == counters_without_time(expected_stats.as_dict()))
    resumed.close()
