"""Fault injection, crash recovery and the chaos determinism contract.

The promise under test: a chaos run — real SIGKILLed shard workers,
dropped pipe replies, degrade-to-serial mid-run — still produces
*bitwise identical* results to the fault-free single-process run (same
pairs, similarities, operation counters).  Recovery must also be
bounded: no coordinator call may block past its configured ``recv``
deadline.

Layout mirrors the machinery:

* plan parsing / validation (pure, fast),
* the injector's occurrence counting and exactly-once firing,
* CLI flag validation (exit 2 before any work starts),
* real multiprocess recovery: respawn + deterministic replay, and the
  degrade-to-serial fallback, each pinned to bitwise parity,
* a hypothesis sweep over random kill sites (during append AND during
  scan) on the real process executor.
"""

from __future__ import annotations

import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SparseVector, available_backends
from repro.core.results import JoinStatistics
from repro.exceptions import InvalidParameterError, ShardWorkerError
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    parse_fault_plan,
)
from tests.groundtruth import engine_pair_map

pytestmark = pytest.mark.skipif("numpy" not in available_backends(),
                                reason="NumPy backend unavailable")

PARITY_COUNTERS = ("candidates_generated", "candidates_sketch_pruned",
                   "full_similarities",
                   "entries_traversed", "entries_pruned", "entries_indexed",
                   "residual_entries", "reindexings", "reindexed_entries",
                   "pairs_output", "max_index_size", "max_residual_size")


def make_corpus(count=150, seed=17, dims=20):
    import random

    rng = random.Random(seed)
    vectors = []
    timestamp = 0.0
    for index in range(count):
        timestamp += rng.random() * 0.2
        coords = {rng.randrange(dims): rng.uniform(0.05, 1.0)
                  for _ in range(rng.randrange(1, 6))}
        vectors.append(SparseVector(index, timestamp, coords))
    return vectors


def run_chaos(algorithm, vectors, threshold, decay, fault_plan, *,
              workers=2, **kwargs):
    from repro.shard import create_sharded_join

    stats = JoinStatistics()
    with create_sharded_join(algorithm, threshold, decay, workers=workers,
                             stats=stats, backend="numpy",
                             executor="process", fault_plan=fault_plan,
                             **kwargs) as join:
        pairs = {pair.key: pair for pair in join.run(vectors)}
        recovery_events = list(join.recovery_events)
        degraded = join.degraded
    return pairs, stats, recovery_events, degraded


def assert_chaos_parity(algorithm, vectors, threshold, decay, fault_plan,
                        **kwargs):
    expected, expected_stats = engine_pair_map(vectors, threshold, decay,
                                               algorithm=algorithm,
                                               backend="numpy")
    actual, stats, events, degraded = run_chaos(algorithm, vectors, threshold,
                                                decay, fault_plan, **kwargs)
    assert set(actual) == set(expected), fault_plan
    for key, pair in expected.items():
        other = actual[key]
        assert other.similarity == pair.similarity, (fault_plan, key)
        assert other.dot == pair.dot, (fault_plan, key)
        assert other.time_delta == pair.time_delta, (fault_plan, key)
    for counter in PARITY_COUNTERS:
        assert (getattr(stats, counter)
                == getattr(expected_stats, counter)), (fault_plan, counter)
    return events, degraded


class TestFaultPlanParsing:
    def test_round_trip_canonical_spec(self):
        spec = ("kill-worker:shard=1,after=40;exit-in-scan:shard=0,after=3;"
                "delay-reply:shard=1,after=2,ms=250;fail-sink:after=1;"
                "sever-client:after=2;seed=7")
        plan = parse_fault_plan(spec)
        assert parse_fault_plan(plan.spec()) == plan
        assert plan.seed == 7
        assert len(plan.events) == 5
        assert len(plan.worker_events) == 3
        assert len(plan.service_events) == 2

    def test_defaults_and_whitespace(self):
        plan = parse_fault_plan("  kill-worker ;  sever-client : after = 3 ")
        assert plan.events[0] == FaultEvent("kill-worker")
        assert plan.events[0].after == 1
        assert plan.events[1].after == 3

    def test_none_and_empty_disable(self):
        assert parse_fault_plan(None) is None
        assert parse_fault_plan("") is None
        assert parse_fault_plan("   ") is None

    def test_existing_plan_passes_through(self):
        plan = FaultPlan(events=(FaultEvent("kill-worker", after=5),))
        assert parse_fault_plan(plan) is plan

    @pytest.mark.parametrize("spec", [
        "explode",                          # unknown kind
        "kill-worker:after=0",              # after must be >= 1
        "kill-worker:after=soon",           # non-integer
        "kill-worker:ms=5",                 # ms only on delay-reply
        "fail-sink:shard=1",                # service faults take no shard
        "delay-reply:ms=0",                 # ms must be > 0
        "kill-worker:shard",                # key without value
        "seed=7",                           # a seed is not a plan
        "banana=3",                         # stray assignment
        "kill-worker:pid=9",                # unknown key
    ])
    def test_malformed_specs_fail_fast(self, spec):
        with pytest.raises(InvalidParameterError):
            parse_fault_plan(spec)


class TestFaultInjector:
    def test_seeded_shard_pick_is_deterministic(self):
        plans = [parse_fault_plan("kill-worker:after=4;seed=9")
                 for _ in range(2)]
        shards = []
        for plan in plans:
            injector = FaultInjector(plan)
            injector.bind_workers(4)
            shards.append([armed.shard for armed in injector._armed])
        assert shards[0] == shards[1]
        assert all(0 <= shard < 4 for shard in shards[0])

    def test_bind_rejects_out_of_range_shard(self):
        injector = FaultInjector(parse_fault_plan("kill-worker:shard=5"))
        with pytest.raises(InvalidParameterError):
            injector.bind_workers(2)

    def test_kill_fires_exactly_once_at_its_site(self):
        injector = FaultInjector(parse_fault_plan("kill-worker:shard=1,after=3"))
        injector.bind_workers(2)
        assert not injector.worker_kill_due(1, 2)
        assert not injector.worker_kill_due(0, 3)
        assert injector.worker_kill_due(1, 3)
        assert not injector.worker_kill_due(1, 3)
        assert injector.pending == 0

    def test_sink_and_sever_count_occurrences(self):
        injector = FaultInjector(
            parse_fault_plan("fail-sink:after=2;sever-client:after=3"))
        assert [injector.sink_fail_due() for _ in range(3)] == [
            False, True, False]
        assert [injector.client_sever_due() for _ in range(4)] == [
            False, False, True, False]

    def test_worker_events_hand_off_once(self):
        injector = FaultInjector(
            parse_fault_plan("exit-in-scan:shard=0,after=2;"
                             "delay-reply:shard=0,after=5,ms=10"))
        injector.bind_workers(1)
        events = injector.worker_events_for(0)
        assert ("exit-in-scan", 2, 0.0) in events
        assert ("delay-reply", 5, 10.0) in events
        # A respawned worker must come up fault-free.
        assert injector.worker_events_for(0) == []

    def test_write_log_is_json_lines(self, tmp_path):
        import json

        injector = FaultInjector(parse_fault_plan("fail-sink:after=1"))
        injector.sink_fail_due()
        injector.record("recovered", shard=1, attempt=1)
        path = tmp_path / "faults.jsonl"
        injector.write_log(path)
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["kind"] for entry in entries] == ["fail-sink",
                                                        "recovered"]


class TestCliFaultPlan:
    def run_cli(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_malformed_plan_exits_2(self, capsys):
        code, _, err = self.run_cli(
            capsys, "run", "--profile", "tweets", "--num-vectors", "5",
            "--fault-plan", "explode")
        assert code == 2
        assert "unknown fault kind" in err

    def test_worker_fault_without_workers_exits_2(self, capsys):
        code, _, err = self.run_cli(
            capsys, "run", "--profile", "tweets", "--num-vectors", "5",
            "--fault-plan", "kill-worker")
        assert code == 2
        assert "--workers" in err

    def test_service_fault_on_run_exits_2(self, capsys):
        code, _, err = self.run_cli(
            capsys, "run", "--profile", "tweets", "--num-vectors", "5",
            "--workers", "2", "--fault-plan", "sever-client")
        assert code == 2
        assert "sssj serve" in err

    def test_env_var_is_validated_too(self, capsys, monkeypatch):
        monkeypatch.setenv("SSSJ_FAULT_PLAN", "explode")
        code, _, err = self.run_cli(
            capsys, "run", "--profile", "tweets", "--num-vectors", "5")
        assert code == 2
        assert "SSSJ_FAULT_PLAN" in err

    def test_fault_log_requires_plan(self, capsys):
        code, _, err = self.run_cli(
            capsys, "run", "--profile", "tweets", "--num-vectors", "5",
            "--fault-log", "/tmp/unused.jsonl")
        assert code == 2
        assert "--fault-log requires --fault-plan" in err


class TestCrashRecovery:
    """Real processes, real SIGKILLs, bitwise parity afterwards."""

    def test_recovers_from_coordinator_side_kill(self):
        vectors = make_corpus()
        events, degraded = assert_chaos_parity(
            "STR-L2AP", vectors, 0.5, 0.05, "kill-worker:shard=1,after=40")
        assert not degraded
        assert [event["kind"] for event in events] == ["respawn"]
        assert events[0]["shard"] == 1
        assert events[0]["latency_s"] > 0

    def test_recovers_from_death_during_append(self):
        vectors = make_corpus()
        events, degraded = assert_chaos_parity(
            "STR-L2AP", vectors, 0.5, 0.05,
            "exit-in-append:shard=1,after=60")
        assert not degraded and len(events) == 1

    def test_recovers_from_death_during_scan(self):
        vectors = make_corpus()
        events, degraded = assert_chaos_parity(
            "STR-L2", vectors, 0.5, 0.05, "exit-in-scan:shard=0,after=25")
        assert not degraded and len(events) == 1

    def test_recovers_from_dropped_reply_via_deadline(self):
        vectors = make_corpus(count=80)
        start = time.monotonic()
        events, degraded = assert_chaos_parity(
            "STR-L2", vectors, 0.5, 0.05, "drop-reply:shard=0,after=10",
            recv_timeout=2.0)
        elapsed = time.monotonic() - start
        assert not degraded and len(events) == 1
        assert events[0]["cause"].startswith("shard 0")
        # The deadline fired once (~2s); nothing blocked anywhere near the
        # acceptance ceiling of 10s.
        assert elapsed < 10.0

    def test_degrades_to_serial_when_respawns_exhausted(self):
        vectors = make_corpus(count=120)
        events, degraded = assert_chaos_parity(
            "STR-L2AP", vectors, 0.5, 0.05, "kill-worker:shard=1,after=30",
            max_respawns=0)
        assert degraded
        assert [event["kind"] for event in events] == ["degrade"]

    def test_two_faults_one_run(self):
        vectors = make_corpus(count=160)
        events, degraded = assert_chaos_parity(
            "STR-L2AP", vectors, 0.5, 0.05,
            "exit-in-scan:shard=0,after=20;kill-worker:shard=1,after=90")
        assert not degraded
        assert [event["kind"] for event in events] == ["respawn", "respawn"]

    def test_recovery_disabled_surfaces_worker_error(self):
        from repro.shard import create_sharded_join

        vectors = make_corpus(count=60)
        with pytest.raises(ShardWorkerError) as excinfo:
            with create_sharded_join(
                    "STR-L2", 0.5, 0.05, workers=2, backend="numpy",
                    executor="process",
                    fault_plan="kill-worker:shard=1,after=10",
                    recovery=False) as join:
                for vector in vectors:
                    join.process(vector)
        assert excinfo.value.shard == 1

    def test_close_does_not_hang_on_dead_worker(self):
        from repro.shard import create_sharded_join

        join = create_sharded_join("STR-L2", 0.6, 0.1, workers=2,
                                   executor="process", recv_timeout=5.0)
        join.process(SparseVector(0, 0.0, {1: 1.0}))
        executor = join._index._executor
        os.kill(executor._procs[1].pid, signal.SIGKILL)
        executor._procs[1].join(5)
        start = time.monotonic()
        join.close()
        assert time.monotonic() - start < 10.0
        join.close()  # still idempotent

    def test_serial_executor_rejects_worker_faults(self):
        from repro.shard import create_sharded_join

        with pytest.raises(InvalidParameterError):
            create_sharded_join("STR-L2", 0.5, 0.05, workers=2,
                                executor="serial",
                                fault_plan="kill-worker:after=5")

    def test_faults_require_workers_via_create_join(self):
        from repro.core.join import create_join

        with pytest.raises(InvalidParameterError):
            create_join("STR-L2", 0.5, 0.05,
                        fault_plan="kill-worker:after=5")


class TestRandomKillSites:
    """Hypothesis sweep: any kill site must leave results bitwise intact."""

    CORPUS = None

    @classmethod
    def corpus(cls):
        if cls.CORPUS is None:
            cls.CORPUS = make_corpus(count=70, seed=23, dims=12)
        return cls.CORPUS

    @given(kind=st.sampled_from(["kill-worker", "exit-in-append",
                                 "exit-in-scan"]),
           shard=st.integers(min_value=0, max_value=1),
           after=st.integers(min_value=1, max_value=50))
    @settings(max_examples=6, deadline=None)
    def test_random_kill_site_keeps_bitwise_parity(self, kind, shard, after):
        vectors = self.corpus()
        events, degraded = assert_chaos_parity(
            "STR-L2AP", vectors, 0.5, 0.05,
            f"{kind}:shard={shard},after={after}")
        assert not degraded
        assert [event["kind"] for event in events] == ["respawn"]
