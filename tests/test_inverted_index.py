"""Unit tests for the INV index (batch and streaming)."""

from __future__ import annotations

import math

import pytest

from repro.baselines.brute_force import brute_force_time_dependent
from repro.core.results import JoinStatistics
from repro.core.similarity import time_horizon
from repro.core.vector import SparseVector
from repro.indexes.inverted import InvertedBatchIndex, InvertedStreamingIndex
from tests.conftest import random_vectors


def vec(vector_id: int, t: float, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, t, entries)


class TestBatchInvertedIndex:
    def test_indexes_every_coordinate(self):
        index = InvertedBatchIndex(0.5)
        index.index_vector(vec(1, 0.0, {1: 1.0, 2: 1.0, 3: 1.0}))
        assert index.size == 3

    def test_candidate_generation_computes_exact_dot(self):
        index = InvertedBatchIndex(0.1)
        a = vec(1, 0.0, {1: 1.0, 2: 1.0})
        index.index_vector(a)
        b = vec(2, 0.0, {1: 1.0, 2: 1.0})
        scores = index.candidate_generation(b).to_dict()
        assert scores == {1: pytest.approx(1.0)}

    def test_verification_applies_threshold(self):
        index = InvertedBatchIndex(0.9)
        a = vec(1, 0.0, {1: 1.0, 5: 1.0})
        b = vec(2, 0.0, {1: 1.0, 9: 1.0})   # dot = 0.5 < 0.9
        index.index_vector(a)
        matches = index.query(b)
        assert matches == []

    def test_process_finds_pairs_and_indexes(self):
        index = InvertedBatchIndex(0.9)
        assert index.process(vec(1, 0.0, {1: 1.0})) == []
        matches = index.process(vec(2, 0.0, {1: 1.0}))
        assert [(m[0].vector_id, pytest.approx(m[1])) for m in matches] == [(1, 1.0)]
        assert index.size == 2

    def test_stats_counters(self):
        stats = JoinStatistics()
        index = InvertedBatchIndex(0.5, stats=stats)
        index.index_dataset([vec(1, 0.0, {1: 1.0}), vec(2, 0.0, {1: 1.0})])
        assert stats.entries_indexed == 2
        assert stats.entries_traversed >= 1
        assert stats.vectors_processed == 2


class TestStreamingInvertedIndex:
    def test_reports_decayed_pairs(self):
        index = InvertedStreamingIndex(0.7, 0.1)
        index.process(vec(1, 0.0, {1: 1.0}))
        pairs = index.process(vec(2, 1.0, {1: 1.0}))
        assert len(pairs) == 1
        assert pairs[0].similarity == pytest.approx(math.exp(-0.1))

    def test_does_not_report_pairs_beyond_horizon(self):
        threshold, decay = 0.7, 0.1
        tau = time_horizon(threshold, decay)
        index = InvertedStreamingIndex(threshold, decay)
        index.process(vec(1, 0.0, {1: 1.0}))
        pairs = index.process(vec(2, tau * 1.01, {1: 1.0}))
        assert pairs == []

    def test_prunes_expired_postings(self):
        threshold, decay = 0.7, 0.5
        index = InvertedStreamingIndex(threshold, decay)
        index.process(vec(1, 0.0, {1: 1.0, 2: 1.0}))
        index.process(vec(2, 100.0, {1: 1.0, 2: 1.0}))
        # The expired postings of vector 1 are truncated lazily during the
        # scan triggered by vector 2.
        assert index.size == 2
        assert index.stats.entries_pruned == 2

    def test_matches_brute_force_on_random_stream(self):
        vectors = random_vectors(80, seed=3)
        threshold, decay = 0.6, 0.05
        index = InvertedStreamingIndex(threshold, decay)
        got = set()
        for vector in vectors:
            got.update(pair.key for pair in index.process(vector))
        expected = {pair.key for pair in brute_force_time_dependent(vectors, threshold, decay)}
        assert got == expected

    def test_stats_track_pairs_and_vectors(self):
        index = InvertedStreamingIndex(0.7, 0.1)
        index.process(vec(1, 0.0, {1: 1.0}))
        index.process(vec(2, 0.5, {1: 1.0}))
        assert index.stats.vectors_processed == 2
        assert index.stats.pairs_output == 1

    def test_self_pair_never_reported(self):
        index = InvertedStreamingIndex(0.5, 0.1)
        pairs = index.process(vec(1, 0.0, {1: 1.0}))
        assert pairs == []
