"""Edge-case coverage for the NumPy backend's arena posting lists.

The arena-backed posting list (an extent of the shared
:class:`~repro.backends.arena.PostingArena`) mirrors the reference ring
buffer's observable behaviour while adding chunk capacity management and
amortised lazy expiry.  These tests pin down the per-list corners: resize
behaviour at the capacity boundaries, compress with degenerate masks, and
the dirty-counter bookkeeping of deferred expiry.  Arena-level behaviour
(chunk layout, whole-arena compaction, gathers across growth) lives in
``tests/test_arena.py``.
"""

from __future__ import annotations

import math

import pytest

from repro.backends import available_backends

pytestmark = pytest.mark.skipif("numpy" not in available_backends(),
                                reason="NumPy backend unavailable")

if "numpy" in available_backends():
    import numpy as np

    from repro.backends.numpy_backend import _MIN_CAPACITY, NumpyKernel
from repro.indexes.posting import PostingEntry


def entry(vector_id: int, timestamp: float, value: float = 0.5) -> PostingEntry:
    return PostingEntry(vector_id=vector_id, value=value, prefix_norm=0.1,
                        timestamp=timestamp)


def fresh_list():
    return NumpyKernel().new_posting_list()


class TestCapacityManagement:
    def test_grows_by_doubling(self):
        plist = fresh_list()
        for index in range(100):
            plist.append(entry(index, float(index)))
        assert len(plist) == 100
        assert plist.capacity >= 100
        # Power-of-two growth: capacity is at most one doubling above need.
        assert plist.capacity <= 256

    def test_shrinks_in_one_step_not_by_single_halving(self):
        plist = fresh_list()
        for index in range(1024):
            plist.append(entry(index, float(index)))
        grown = plist.capacity
        assert grown >= 1024
        plist.keep_newest(1)
        # A single maintenance step must land at a right-sized capacity,
        # not linger one halving below the high-water mark.
        assert len(plist) == 1
        assert plist.capacity <= max(_MIN_CAPACITY, 8)

    def test_no_shrink_grow_thrash_at_boundary(self):
        plist = fresh_list()
        for index in range(64):
            plist.append(entry(index, float(index)))
        # Hover around a quarter occupancy: repeated append/drop must keep
        # the capacity stable (hysteresis), not oscillate between sizes.
        plist.drop_oldest(48)  # 16 of 64 → may shrink once
        stable = plist.capacity
        for round_index in range(200):
            plist.append(entry(1000 + round_index, 64.0 + round_index))
            plist.drop_oldest(1)
            assert plist.capacity in (stable, stable * 2)

    def test_capacity_never_below_minimum(self):
        plist = fresh_list()
        plist.append(entry(1, 0.0))
        plist.drop_oldest(5)
        assert plist.capacity >= _MIN_CAPACITY
        assert len(plist) == 0

    def test_drop_oldest_negative_and_oversized(self):
        plist = fresh_list()
        for index in range(5):
            plist.append(entry(index, float(index)))
        assert plist.drop_oldest(-3) == 0
        assert len(plist) == 5
        assert plist.drop_oldest(100) == 5
        assert len(plist) == 0

    def test_keep_newest_negative_count(self):
        plist = fresh_list()
        for index in range(4):
            plist.append(entry(index, float(index)))
        assert plist.keep_newest(-1) == 4
        assert len(plist) == 0

    def test_dead_head_region_is_reclaimed(self):
        plist = fresh_list()
        for index in range(32):
            plist.append(entry(index, float(index)))
        plist.drop_oldest(20)
        # After dropping well past half, the head offset must be repacked so
        # appends do not hit the capacity wall early.
        for index in range(100, 130):
            plist.append(entry(index, float(index)))
        assert len(plist) == 42


class TestCompressEdgeCases:
    def test_compress_all_false_mask_empties_the_list(self):
        plist = fresh_list()
        for index in range(20):
            plist.append(entry(index, float(index)))
        removed = plist.compress(np.zeros(20, dtype=bool))
        assert removed == 20
        assert len(plist) == 0
        assert list(plist) == []
        assert plist.capacity == _MIN_CAPACITY
        # The list keeps working after being emptied.
        plist.append(entry(99, 99.0))
        assert [posting.vector_id for posting in plist] == [99]

    def test_compress_all_true_mask_is_a_noop(self):
        plist = fresh_list()
        for index in range(10):
            plist.append(entry(index, float(index)))
        assert plist.compress(np.ones(10, dtype=bool)) == 0
        assert len(plist) == 10

    def test_compress_empty_mask_on_empty_list(self):
        plist = fresh_list()
        assert plist.compress(np.zeros(0, dtype=bool)) == 0
        assert len(plist) == 0

    def test_compact_on_empty_list(self):
        plist = fresh_list()
        assert plist.compact(5.0) == 0
        assert len(plist) == 0

    def test_compact_counts_each_removal_once(self):
        plist = fresh_list()
        for index in range(10):
            plist.append(entry(index, float(index)))
        assert plist.compact(4.0) == 4
        assert plist.compact(4.0) == 0
        assert [posting.timestamp for posting in plist] == [4.0, 5.0, 6.0,
                                                            7.0, 8.0, 9.0]

    def test_replace_all_entries_with_empty_list(self):
        plist = fresh_list()
        for index in range(50):
            plist.append(entry(index, float(index)))
        plist.replace_all_entries([])
        assert len(plist) == 0
        assert list(plist) == []
        plist.append(entry(7, 3.0))
        assert len(plist) == 1


class TestLazyExpiry:
    def test_note_lazy_expiry_hides_expired_postings(self):
        plist = fresh_list()
        timestamps = [3.0, 1.0, 4.0, 0.5, 5.0]
        for index, timestamp in enumerate(timestamps):
            plist.append(entry(index, timestamp))
        # Mark everything below 2.0 as logically removed (2 postings).
        dirty = sum(1 for timestamp in timestamps if timestamp < 2.0)
        live = [timestamp for timestamp in timestamps if timestamp >= 2.0]
        plist.note_lazy_expiry(2.0, dirty, min(live), max(live))
        assert len(plist) == 3
        assert plist.dirty == 2
        assert plist.physical_size == 5
        assert [posting.timestamp for posting in plist] == [3.0, 4.0, 5.0]
        assert ([posting.timestamp for posting in plist.iter_newest_first()]
                == [5.0, 4.0, 3.0])

    def test_compress_after_lazy_expiry_reports_no_double_removal(self):
        plist = fresh_list()
        timestamps = [3.0, 1.0, 4.0, 0.5, 5.0]
        for index, timestamp in enumerate(timestamps):
            plist.append(entry(index, timestamp))
        plist.note_lazy_expiry(2.0, 2, 3.0, 5.0)
        live_ts = np.array(timestamps)
        removed = plist.compress(live_ts >= 2.0)
        # The two lazily expired postings were already reported removed.
        assert removed == 0
        assert plist.dirty == 0
        assert len(plist) == 3
        assert plist.min_live_timestamp == 3.0

    def test_compact_respects_earlier_lazy_cutoff(self):
        plist = fresh_list()
        for index, timestamp in enumerate([3.0, 1.0, 4.0]):
            plist.append(entry(index, timestamp))
        plist.note_lazy_expiry(2.0, 1, 3.0, 4.0)
        # A *lower* cutoff must not resurrect the lazily removed posting.
        assert plist.compact(0.0) == 0
        assert [posting.timestamp for posting in plist] == [3.0, 4.0]

    def test_min_max_timestamp_tracking(self):
        plist = fresh_list()
        assert plist.min_live_timestamp == math.inf
        for timestamp in (5.0, 2.0, 9.0):
            plist.append(entry(int(timestamp), timestamp))
        assert plist.min_live_timestamp == 2.0
        assert plist._max_ts == 9.0
        plist.compress(np.array([True, False, True]))
        assert plist.min_live_timestamp == 5.0
        assert plist._max_ts == 9.0
