"""Smoke tests: every example script runs end to end."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SRC_DIR = Path(__file__).parent.parent / "src"


def run_example(name: str, *extra_args: str) -> subprocess.CompletedProcess:
    # The examples import repro; make the src layout visible to the child
    # process even when the test run itself relies on pytest's pythonpath.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *extra_args],
        capture_output=True, text=True, timeout=300, env=env,
    )


class TestExamples:
    def test_examples_directory_has_at_least_three_scripts(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3

    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "similar pairs" in result.stdout
        assert "doc 0 ~ doc 1" in result.stdout

    def test_trend_detection(self):
        result = run_example("trend_detection.py", "--num-vectors", "300")
        assert result.returncode == 0, result.stderr
        assert "trend clusters" in result.stdout

    def test_near_duplicate_filtering(self):
        result = run_example("near_duplicate_filtering.py", "--num-vectors", "250")
        assert result.returncode == 0, result.stderr
        assert "delivered" in result.stdout
        assert "filtered as dup" in result.stdout

    def test_batch_vs_streaming(self):
        result = run_example("batch_vs_streaming.py", "--num-vectors", "200",
                             "--profile", "tweets")
        assert result.returncode == 0, result.stderr
        assert "entries traversed" in result.stdout

    def test_parameter_tuning(self):
        result = run_example("parameter_tuning.py")
        assert result.returncode == 0, result.stderr
        assert "derived λ" in result.stdout or "derived" in result.stdout

    def test_text_stream_dedup(self):
        result = run_example("text_stream_dedup.py")
        assert result.returncode == 0, result.stderr
        assert "SUPPRESS" in result.stdout
        assert "DELIVER" in result.stdout

    def test_service_dedup(self):
        result = run_example("service_dedup.py", "--num-vectors", "200")
        assert result.returncode == 0, result.stderr
        assert "recovered from" in result.stdout
        assert "identical to an uninterrupted run" in result.stdout

    @pytest.mark.parametrize("name", ["trend_detection.py", "near_duplicate_filtering.py",
                                      "batch_vs_streaming.py", "service_dedup.py"])
    def test_examples_expose_help(self, name):
        result = run_example(name, "--help")
        assert result.returncode == 0
        assert "usage" in result.stdout.lower()
