"""Tests for the multi-tenant session scheduler (repro.service.scheduler).

The load-bearing property is unchanged from the base service: for the
vectors a session accepts, the pairs it emits are bitwise identical to
:func:`repro.core.join.streaming_self_join` — now under any pool size,
quota configuration and eviction timing (pinned by the hypothesis tests
at the bottom).  On top of that, the scheduler's own contracts: quota
rejections are machine-readable and consume nothing, DRR keeps tenant
shares proportional to weights, and checkpoint-evict / lazy-restore is
invisible to clients (sequence numbers and JSONL sink offsets included).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.metrics import LatencyStats
from repro.core.vector import SparseVector
from repro.service import (
    QuotaError,
    SchedulerService,
    ServiceClient,
    ServiceClientError,
    TenantQuota,
    read_jsonl_pairs,
    serve,
)
from repro.service.protocol import encode_vector, pair_from_wire
from repro.service.scheduler.adaptive import AdaptiveBatcher
from repro.service.scheduler.ready import DRRReadyQueue
from repro.service.scheduler.tenants import TenantState
from tests.conftest import random_vectors
from tests.groundtruth import counters_without_time, engine_pairs

THETA, DECAY = 0.6, 0.05


def expected_pairs(vectors):
    return engine_pairs(vectors, THETA, DECAY)


def wait_until(predicate, *, timeout: float = 10.0, interval: float = 0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within the deadline")


def open_request(name, *, tenant="default", **options):
    return {"op": "open", "session": name, "theta": THETA, "decay": DECAY,
            "tenant": tenant, "normalize": False, **options}


def ingest_request(name, vectors, *, seq=None):
    request = {"op": "ingest", "session": name,
               "vectors": [encode_vector(v) for v in vectors]}
    if seq is not None:
        request["seq"] = seq
    return request


def ok(response):
    assert response.get("ok"), response
    return response


def session_pairs(service, name):
    response = ok(service.handle(
        {"op": "results", "session": name, "limit": 10 ** 9}))
    return [pair_from_wire(payload) for payload in response["pairs"]]


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Tenant quotas (unit)
# ---------------------------------------------------------------------------


class TestTenantQuota:
    def test_rejects_nonpositive_limits(self):
        for field, value in [("max_sessions", 0), ("max_queued", -1),
                             ("rate", 0.0), ("burst", -2.0), ("weight", 0.0)]:
            with pytest.raises(ValueError):
                TenantQuota(**{field: value})

    def test_default_quota_is_unlimited(self):
        state = TenantState("t", TenantQuota())
        for index in range(100):
            state.admit_session(f"s{index}")
        state.admit_vectors(10 ** 9, queued_now=10 ** 9)

    def test_session_cap_rejects_with_code(self):
        state = TenantState("t", TenantQuota(max_sessions=2))
        state.admit_session("a")
        state.admit_session("b")
        with pytest.raises(QuotaError) as err:
            state.admit_session("c")
        assert err.value.code == "quota_sessions"
        # Re-admitting an owned name is idempotent (client retries).
        state.admit_session("a")
        state.release_session("b")
        state.admit_session("c")

    def test_queued_cap_rejects_with_code_and_consumes_nothing(self):
        state = TenantState("t", TenantQuota(max_queued=100))
        with pytest.raises(QuotaError) as err:
            state.admit_vectors(50, queued_now=80)
        assert err.value.code == "quota_queued"
        assert state.admitted == 0
        state.admit_vectors(20, queued_now=80)
        assert state.admitted == 20

    def test_rate_limit_is_a_token_bucket_with_backoff_hint(self):
        clock = FakeClock()
        state = TenantState("t", TenantQuota(rate=100.0, burst=100.0),
                            clock=clock)
        state.admit_vectors(100, queued_now=0)  # burst drains the bucket
        with pytest.raises(QuotaError) as err:
            state.admit_vectors(50, queued_now=0)
        assert err.value.code == "quota_rate"
        assert err.value.retry_after_s == pytest.approx(0.5)
        clock.advance(0.5)  # refills 50 tokens
        state.admit_vectors(50, queued_now=0)
        assert state.admitted == 150

    def test_rate_admission_is_all_or_nothing(self):
        clock = FakeClock()
        state = TenantState("t", TenantQuota(rate=10.0, burst=30.0),
                            clock=clock)
        state.admit_vectors(25, queued_now=0)
        with pytest.raises(QuotaError):
            state.admit_vectors(10, queued_now=0)  # only 5 tokens left
        state.admit_vectors(5, queued_now=0)  # the partial fit still works


# ---------------------------------------------------------------------------
# DRR ready queue (unit)
# ---------------------------------------------------------------------------


def fake_session(tenant="t", name="f", pending=0):
    session = SimpleNamespace(
        config=SimpleNamespace(tenant=tenant, name=name),
        run_state="idle", status="active", pending=pending)
    session.has_pending = lambda: session.pending > 0
    return session


class TestDRRReadyQueue:
    def test_push_pop_finish_cycle(self):
        ready = DRRReadyQueue(quantum=10)
        session = fake_session(pending=1)
        assert ready.push(session)
        assert session.run_state == "ready"
        assert not ready.push(session)  # already queued
        popped = ready.pop(timeout=1.0)
        assert popped is session and session.run_state == "running"
        assert not ready.push(session)  # running sessions never re-queue
        session.pending = 0
        ready.finish(session)
        assert session.run_state == "idle"

    def test_finish_requeues_when_work_is_pending(self):
        ready = DRRReadyQueue(quantum=10)
        session = fake_session(pending=5)
        ready.push(session)
        assert ready.pop(timeout=1.0) is session
        ready.finish(session)  # still has pending work
        assert session.run_state == "ready"
        assert ready.pop(timeout=1.0) is session

    def test_pop_times_out_empty(self):
        ready = DRRReadyQueue()
        start = time.monotonic()
        assert ready.pop(timeout=0.05) is None
        assert time.monotonic() - start < 1.0

    def test_weighted_fairness_between_backlogged_tenants(self):
        ready = DRRReadyQueue(quantum=100)
        ready.set_weight("heavy", 2.0)
        ready.set_weight("light", 1.0)
        sessions = {"heavy": fake_session("heavy", "h", pending=1),
                    "light": fake_session("light", "l", pending=1)}
        served = {"heavy": 0, "light": 0}
        for session in sessions.values():
            ready.push(session)
        for _ in range(300):
            session = ready.pop(timeout=1.0)
            tenant = session.config.tenant
            served[tenant] += 100  # every quantum processes 100 vectors
            ready.charge(tenant, 100)
            ready.finish(session)  # pending stays >0: re-queues
        ratio = served["heavy"] / served["light"]
        assert 1.5 <= ratio <= 2.5

    def test_charge_debt_is_clamped(self):
        ready = DRRReadyQueue(quantum=10)
        ready.charge("t", 10 ** 9)  # one enormous quantum
        assert ready.stats()["deficit"]["t"] == -4.0 * 10

    def test_evict_claim_only_from_idle(self):
        ready = DRRReadyQueue()
        session = fake_session(pending=1)
        ready.push(session)
        assert not ready.claim_for_evict(session)  # ready, not idle
        assert ready.pop(timeout=1.0) is session
        assert not ready.claim_for_evict(session)  # running
        session.pending = 0
        ready.finish(session)
        assert ready.claim_for_evict(session)
        assert session.run_state == "evicted"
        assert not ready.push(session)  # fenced out while claimed

    def test_release_claim_reschedules_pending_work(self):
        ready = DRRReadyQueue()
        session = fake_session()
        ready.claim_for_evict(session)
        session.pending = 3  # work snuck in while the evict was underway
        ready.release_evict_claim(session)
        assert session.run_state == "ready"
        assert ready.pop(timeout=1.0) is session


# ---------------------------------------------------------------------------
# Adaptive batcher (unit)
# ---------------------------------------------------------------------------


def batcher_session(name="s", base=64, queued=0, latencies_ms=()):
    latency = LatencyStats()
    for value in latencies_ms:
        latency.record(value / 1e3)
    return SimpleNamespace(
        config=SimpleNamespace(name=name, batch_max_items=base),
        queued=queued, latency=latency)


class TestAdaptiveBatcher:
    def test_deep_backlog_grows_geometrically(self):
        batcher = AdaptiveBatcher(max_items=512)
        session = batcher_session(base=64, queued=10_000)
        sizes = [batcher.suggest(session) for _ in range(5)]
        assert sizes == [128, 256, 512, 512, 512]

    def test_high_p99_shrinks_toward_floor(self):
        batcher = AdaptiveBatcher(min_items=16, target_p99_ms=10.0)
        session = batcher_session(base=128, queued=0,
                                  latencies_ms=[50.0] * 20)
        sizes = [batcher.suggest(session) for _ in range(5)]
        assert sizes == [64, 32, 16, 16, 16]

    def test_decays_back_to_configured_size_when_load_clears(self):
        batcher = AdaptiveBatcher(max_items=1024)
        session = batcher_session(base=64, queued=10_000)
        for _ in range(4):
            batcher.suggest(session)
        session.queued = 0  # fast latencies, shallow queue
        sizes = [batcher.suggest(session) for _ in range(6)]
        assert sizes[-1] == 64 and sizes == sorted(sizes, reverse=True)

    def test_forget_drops_state(self):
        batcher = AdaptiveBatcher()
        batcher.suggest(batcher_session(name="gone", queued=10_000))
        batcher.forget("gone")
        assert batcher.stats()["sessions_tracked"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatcher(min_items=0)
        with pytest.raises(ValueError):
            AdaptiveBatcher(min_items=64, max_items=32)
        with pytest.raises(ValueError):
            AdaptiveBatcher(target_p99_ms=0)


# ---------------------------------------------------------------------------
# SchedulerService end-to-end (no sockets)
# ---------------------------------------------------------------------------


@pytest.fixture
def scheduler_service(request):
    services = []

    def factory(**options):
        service = SchedulerService(**options)
        services.append(service)
        return service

    yield factory
    for service in services:
        service.shutdown()


class TestSchedulerServiceParity:
    @pytest.mark.parametrize("pool_workers", [1, 4])
    def test_many_sessions_share_the_pool_bitwise(self, scheduler_service,
                                                  pool_workers):
        service = scheduler_service(pool_workers=pool_workers)
        streams = {f"s{i}": random_vectors(40, seed=i) for i in range(6)}
        for index, name in enumerate(streams):
            ok(service.handle(open_request(
                name, tenant=f"tenant{index % 3}", checkpoint=False,
                batch_max_items=7)))
        # Interleave the streams chunk by chunk across sessions.
        cursor, chunk = {name: 0 for name in streams}, 9
        while any(cursor[name] < len(vs) for name, vs in streams.items()):
            for name, vectors in streams.items():
                at = cursor[name]
                if at < len(vectors):
                    ok(service.handle(ingest_request(
                        name, vectors[at:at + chunk], seq=at)))
                    cursor[name] = min(len(vectors), at + chunk)
        for name, vectors in streams.items():
            summary = ok(service.handle({"op": "drain", "session": name}))
            reference, stats = expected_pairs(vectors)
            assert summary["processed"] == len(vectors)
            assert session_pairs(service, name) == reference
            counters = ok(service.handle(
                {"op": "stats", "session": name}))["sessions"][name]["counters"]
            assert counters_without_time(counters) == \
                counters_without_time(stats.as_dict())

    def test_scheduler_stats_and_session_rows(self, scheduler_service):
        service = scheduler_service(pool_workers=2, adaptive_batch=True)
        vectors = random_vectors(30, seed=3)
        ok(service.handle(open_request("a", tenant="acme", checkpoint=False)))
        ok(service.handle(open_request("b", tenant="zeta", checkpoint=False)))
        ok(service.handle(ingest_request("a", vectors, seq=0)))
        ok(service.handle({"op": "drain", "session": "a"}))
        listing = ok(service.handle({"op": "sessions"}))
        assert [row["session"] for row in listing["sessions"]] == ["a", "b"]
        row = listing["sessions"][0]
        assert row["tenant"] == "acme"
        assert row["processed"] == len(vectors)
        assert row["batches_flushed"] >= 1
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(row)
        filtered = ok(service.handle({"op": "sessions", "tenant": "zeta"}))
        assert [row["session"] for row in filtered["sessions"]] == ["b"]
        stats = ok(service.handle({"op": "stats"}))
        assert stats["scheduler"]["pool"]["workers"] == 2
        assert stats["scheduler"]["pool"]["vectors_processed"] >= len(vectors)
        assert stats["scheduler"]["adaptive"] is not None
        assert set(stats["tenants"]) == {"acme", "zeta"}
        assert stats["tenants"]["acme"]["admitted"] == len(vectors)

    def test_block_backpressure_drains_through_the_pool(self,
                                                        scheduler_service):
        # A queue far smaller than one ingest request: the producer blocks
        # mid-request and only the pool can unblock it — the regression
        # test for the scheduled-mode backpressure deadlock.
        service = scheduler_service(pool_workers=2)
        vectors = random_vectors(60, seed=4)
        ok(service.handle(open_request("tight", checkpoint=False,
                                       queue_max=5, batch_max_items=3,
                                       backpressure="block")))
        ok(service.handle(ingest_request("tight", vectors, seq=0)))
        ok(service.handle({"op": "drain", "session": "tight"}))
        assert session_pairs(service, "tight") == expected_pairs(vectors)[0]


class TestQuotaEnforcement:
    def test_session_quota_rejected_open_leaves_no_trace(self,
                                                         scheduler_service):
        service = scheduler_service(
            pool_workers=1,
            tenant_quotas={"small": TenantQuota(max_sessions=1)})
        ok(service.handle(open_request("one", tenant="small",
                                       checkpoint=False)))
        rejected = service.handle(open_request("two", tenant="small",
                                               checkpoint=False))
        assert not rejected["ok"]
        assert rejected["code"] == "quota_sessions" and rejected["quota"]
        assert "two" not in service.sessions
        # The cap is on live sessions: closing frees the slot.
        ok(service.handle({"op": "close", "session": "one"}))
        ok(service.handle(open_request("two", tenant="small",
                                       checkpoint=False)))

    def test_rate_quota_rejects_without_advancing_seq(self,
                                                      scheduler_service):
        clock = FakeClock()
        service = scheduler_service(
            pool_workers=1, clock=clock,
            default_quota=TenantQuota(rate=50.0, burst=50.0))
        vectors = random_vectors(80, seed=5)
        ok(service.handle(open_request("r", checkpoint=False)))
        first = ok(service.handle(ingest_request("r", vectors[:50], seq=0)))
        assert first["ingest_seq"] == 50
        rejected = service.handle(ingest_request("r", vectors[50:], seq=50))
        assert not rejected["ok"] and rejected["code"] == "quota_rate"
        assert rejected["retry_after_s"] > 0
        assert service.sessions["r"].ingest_seq == 50  # nothing consumed
        clock.advance(1.0)
        second = ok(service.handle(ingest_request("r", vectors[50:], seq=50)))
        assert second["ingest_seq"] == 80
        ok(service.handle({"op": "drain", "session": "r"}))
        assert session_pairs(service, "r") == expected_pairs(vectors)[0]

    def test_duplicate_resend_is_not_double_charged(self, scheduler_service):
        clock = FakeClock()
        service = scheduler_service(
            pool_workers=1, clock=clock,
            default_quota=TenantQuota(rate=50.0, burst=50.0))
        vectors = random_vectors(50, seed=6)
        ok(service.handle(open_request("d", checkpoint=False)))
        ok(service.handle(ingest_request("d", vectors, seq=0)))
        # The ack was "lost"; the client resends the same batch.  Every
        # vector is a known duplicate — a full bucket must not matter.
        resent = ok(service.handle(ingest_request("d", vectors, seq=0)))
        assert resent["deduped"] == 50 and resent["accepted"] == 0
        assert service.tenants["default"].admitted == 50

    def test_queued_quota_counts_the_standing_backlog(self,
                                                      scheduler_service):
        service = scheduler_service(
            pool_workers=1,
            default_quota=TenantQuota(max_queued=10))
        vectors = random_vectors(30, seed=7)
        ok(service.handle(open_request("q", checkpoint=False)))
        rejected = service.handle(ingest_request("q", vectors, seq=0))
        assert not rejected["ok"] and rejected["code"] == "quota_queued"
        for at in range(0, len(vectors), 10):
            ok(service.handle(ingest_request("q", vectors[at:at + 10],
                                             seq=at)))
            wait_until(lambda: service.sessions["q"].queued == 0)
        ok(service.handle({"op": "drain", "session": "q"}))
        assert session_pairs(service, "q") == expected_pairs(vectors)[0]


class TestEvictRestore:
    def _drained(self, service, name, count):
        session = service.sessions[name]
        wait_until(lambda: session.processed == count
                   and session.run_state == "idle")

    def test_evict_frees_the_engine_and_restore_is_bitwise(self,
                                                           scheduler_service,
                                                           tmp_path):
        service = scheduler_service(pool_workers=2, checkpoint_dir=tmp_path)
        vectors = random_vectors(60, seed=8)
        sink_path = tmp_path / "pairs.jsonl"
        ok(service.handle(open_request(
            "e", sinks=[{"kind": "jsonl", "path": str(sink_path)}])))
        ok(service.handle(ingest_request("e", vectors[:35], seq=0)))
        self._drained(service, "e", 35)
        evicted = ok(service.handle({"op": "evict", "session": "e"}))
        assert evicted["evicted"]
        placeholder = service.sessions["e"]
        assert placeholder.status == "evicted"
        assert placeholder.join is None  # the engine's memory is gone
        assert placeholder.run_state == "evicted"
        assert ok(service.handle(
            {"op": "evict", "session": "e"}))["already_evicted"]
        # Lazy restore: the next ingest transparently revives the session
        # and the stream continues exactly where it left off.
        ok(service.handle(ingest_request("e", vectors[35:], seq=35)))
        restored = service.sessions["e"]
        assert restored is not placeholder and restored.resumed
        assert restored.ingest_seq == 60
        ok(service.handle({"op": "drain", "session": "e"}))
        reference, stats = expected_pairs(vectors)
        # The JSONL sink saw the full pair stream with no duplicates or
        # gaps across the evict/restore boundary.
        assert read_jsonl_pairs(sink_path) == reference
        counters = ok(service.handle(
            {"op": "stats", "session": "e"}))["sessions"]["e"]["counters"]
        assert counters_without_time(counters) == \
            counters_without_time(stats.as_dict())
        assert service.evictions == 1 and service.restores == 1

    def test_evicted_placeholder_stats_do_not_need_the_engine(
            self, scheduler_service, tmp_path):
        service = scheduler_service(pool_workers=1, checkpoint_dir=tmp_path)
        vectors = random_vectors(20, seed=9)
        ok(service.handle(open_request("p")))
        ok(service.handle(ingest_request("p", vectors, seq=0)))
        self._drained(service, "p", 20)
        ok(service.handle({"op": "evict", "session": "p"}))
        stats = ok(service.handle({"op": "stats", "session": "p"}))
        payload = stats["sessions"]["p"]
        assert payload["status"] == "evicted"
        assert payload["processed"] == 20
        assert payload["counters"]  # cached from the eviction barrier
        listing = ok(service.handle({"op": "sessions"}))
        assert listing["sessions"][0]["status"] == "evicted"

    def test_sweeper_evicts_idle_sessions_and_memory_stays_flat(
            self, scheduler_service, tmp_path):
        service = scheduler_service(pool_workers=2, checkpoint_dir=tmp_path,
                                    evict_after=0.2)
        streams = {f"idle{index}": random_vectors(30, seed=20 + index)
                   for index in range(6)}
        for name, vectors in streams.items():
            ok(service.handle(open_request(name)))
            ok(service.handle(ingest_request(name, vectors[:15], seq=0)))
        wait_until(lambda: all(s.status == "evicted"
                               for s in service.sessions.values()),
                   timeout=15.0)
        # Evicted placeholders hold no engine and no retained pairs:
        # memory does not grow with the number of evicted sessions.
        assert all(s.join is None for s in service.sessions.values())
        assert service.evictions == 6
        # And they all come back on demand, streams intact.
        ok(service.handle(ingest_request(
            "idle0", streams["idle0"][15:], seq=15)))
        assert service.sessions["idle0"].status == "active"

    def test_restart_after_evict_recovers_the_session(self, tmp_path):
        vectors = random_vectors(40, seed=10)
        service = SchedulerService(pool_workers=1, checkpoint_dir=tmp_path)
        try:
            ok(service.handle(open_request("z")))
            ok(service.handle(ingest_request("z", vectors[:25], seq=0)))
            session = service.sessions["z"]
            wait_until(lambda: session.processed == 25
                       and session.run_state == "idle")
            ok(service.handle({"op": "evict", "session": "z"}))
        finally:
            service.shutdown()
        # A brand-new service (a process restart) recovers the evicted
        # session from its envelope and the stream continues bitwise.
        service = SchedulerService(pool_workers=2, checkpoint_dir=tmp_path)
        try:
            assert service.recover_sessions() == ["z"]
            opened = ok(service.handle(open_request("z")))
            assert opened["existing"] and opened["ingest_seq"] == 25
            ok(service.handle(ingest_request("z", vectors[25:], seq=25)))
            ok(service.handle({"op": "drain", "session": "z"}))
            reference, _ = expected_pairs(vectors)
            # Pairs found before the evict were flushed with the envelope;
            # the in-memory window holds the continuation — compare it
            # against the same suffix of the reference stream.
            emitted = session_pairs(service, "z")
            assert emitted == reference[len(reference) - len(emitted):]
            assert service.sessions["z"].processed == 40
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# Hypothesis: determinism under any scheduling configuration
# ---------------------------------------------------------------------------


class TestSchedulingDeterminism:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(pool_workers=st.integers(1, 4),
           batch_max_items=st.integers(1, 32),
           chunk=st.integers(1, 17),
           seed=st.integers(0, 5))
    def test_pairs_are_bitwise_under_any_pool_and_batching(
            self, pool_workers, batch_max_items, chunk, seed):
        vectors = random_vectors(30, seed=seed)
        service = SchedulerService(pool_workers=pool_workers)
        try:
            ok(service.handle(open_request(
                "h", checkpoint=False, batch_max_items=batch_max_items)))
            for at in range(0, len(vectors), chunk):
                ok(service.handle(ingest_request(
                    "h", vectors[at:at + chunk], seq=at)))
            ok(service.handle({"op": "drain", "session": "h"}))
            reference, stats = expected_pairs(vectors)
            assert session_pairs(service, "h") == reference
            counters = ok(service.handle(
                {"op": "stats", "session": "h"}))["sessions"]["h"]["counters"]
            assert counters_without_time(counters) == \
                counters_without_time(stats.as_dict())
        finally:
            service.shutdown()

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(pool_workers=st.integers(1, 3),
           evict_at=st.integers(1, 29),
           seed=st.integers(0, 3))
    def test_pairs_are_bitwise_across_evict_restore(self, tmp_path_factory,
                                                    pool_workers, evict_at,
                                                    seed):
        vectors = random_vectors(30, seed=seed)
        tmp_path = tmp_path_factory.mktemp("evict")
        sink_path = tmp_path / "pairs.jsonl"
        service = SchedulerService(pool_workers=pool_workers,
                                   checkpoint_dir=tmp_path)
        try:
            ok(service.handle(open_request(
                "h", batch_max_items=5,
                sinks=[{"kind": "jsonl", "path": str(sink_path)}])))
            ok(service.handle(ingest_request("h", vectors[:evict_at], seq=0)))
            session = service.sessions["h"]
            wait_until(lambda: session.processed == evict_at
                       and session.run_state == "idle")
            assert ok(service.handle(
                {"op": "evict", "session": "h"}))["evicted"]
            ok(service.handle(ingest_request(
                "h", vectors[evict_at:], seq=evict_at)))
            ok(service.handle({"op": "drain", "session": "h"}))
            reference, stats = expected_pairs(vectors)
            assert read_jsonl_pairs(sink_path) == reference
            counters = ok(service.handle(
                {"op": "stats", "session": "h"}))["sessions"]["h"]["counters"]
            assert counters_without_time(counters) == \
                counters_without_time(stats.as_dict())
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# Selector server (sockets)
# ---------------------------------------------------------------------------


@pytest.fixture
def selector_server(tmp_path):
    server, _ = serve(port=0, pool_workers=2, checkpoint_dir=tmp_path)
    thread = threading.Thread(target=server.serve_until_shutdown, daemon=True)
    thread.start()
    yield server
    server.service.shutdown()
    server.request_stop()
    thread.join(timeout=10)


class TestSelectorServer:
    def test_end_to_end_over_sockets_is_bitwise(self, selector_server):
        host, port = selector_server.address
        vectors = random_vectors(50, seed=11)
        with ServiceClient(host, port) as client:
            client.open_session("s", theta=THETA, decay=DECAY,
                                normalize=False, checkpoint=False)
            client.ingest("s", vectors, chunk_size=13)
            summary = client.drain("s")
            assert summary["processed"] == len(vectors)
            pairs = list(client.iter_results("s"))
        assert pairs == expected_pairs(vectors)[0]

    def test_pipelined_requests_answered_in_order(self, selector_server):
        host, port = selector_server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b'{"op": "ping"}\n{"op": "stats"}\n{"op": "ping"}\n')
            stream = sock.makefile("rb")
            first = json.loads(stream.readline())
            second = json.loads(stream.readline())
            third = json.loads(stream.readline())
        assert first["pong"] and third["pong"]
        assert second["ok"] and "scheduler" in second

    def test_concurrent_clients_multiplex_one_loop(self, selector_server):
        host, port = selector_server.address
        streams = {f"c{i}": random_vectors(25, seed=30 + i)
                   for i in range(8)}
        failures = []

        def run_client(name, vectors):
            try:
                with ServiceClient(host, port) as client:
                    client.open_session(name, theta=THETA, decay=DECAY,
                                        tenant=name, normalize=False,
                                        checkpoint=False)
                    client.ingest(name, vectors, chunk_size=7)
                    client.drain(name)
                    pairs = list(client.iter_results(name))
                assert pairs == expected_pairs(vectors)[0]
            except BaseException as error:  # noqa: BLE001 - report in main
                failures.append((name, error))

        threads = [threading.Thread(target=run_client, args=item)
                   for item in streams.items()]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures
        # All eight connections shared one selector loop.
        assert selector_server.stats()["connections_accepted"] >= 8

    def test_quota_error_surfaces_over_the_wire(self, tmp_path):
        server, _ = serve(
            port=0, pool_workers=1,
            scheduler_options={
                "tenant_quotas": {"tiny": TenantQuota(max_sessions=1)}})
        thread = threading.Thread(target=server.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        try:
            host, port = server.address
            with ServiceClient(host, port) as client:
                client.open_session("a", theta=THETA, decay=DECAY,
                                    tenant="tiny", checkpoint=False)
                with pytest.raises(ServiceClientError) as err:
                    client.open_session("b", theta=THETA, decay=DECAY,
                                        tenant="tiny", checkpoint=False)
                assert err.value.response["code"] == "quota_sessions"
                client.shutdown()
        finally:
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_shutdown_op_stops_the_loop(self, tmp_path):
        server, _ = serve(port=0, pool_workers=1)
        thread = threading.Thread(target=server.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        host, port = server.address
        with ServiceClient(host, port) as client:
            assert client.shutdown()["ok"]
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_idle_connection_is_dropped_after_read_timeout(self, tmp_path):
        server, _ = serve(port=0, pool_workers=1, read_timeout=0.3)
        thread = threading.Thread(target=server.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        try:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b'{"op": "ping"}\n')
                stream = sock.makefile("rb")
                assert json.loads(stream.readline())["pong"]
                # Go quiet: the server must close the connection, not pin
                # its loop slot forever.
                sock.settimeout(5.0)
                assert stream.readline() == b""
        finally:
            server.service.shutdown()
            server.request_stop()
            thread.join(timeout=10)
