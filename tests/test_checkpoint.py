"""Tests for checkpointing and resuming streaming joins."""

from __future__ import annotations

import json

import pytest

from repro.baselines.brute_force import brute_force_time_dependent
from repro.core.checkpoint import (
    CheckpointError,
    load_checkpoint,
    restore_join,
    save_checkpoint,
    snapshot_join,
)
from repro.core.frameworks.minibatch import MiniBatchFramework
from repro.core.frameworks.streaming import StreamingFramework
from repro.datasets.generator import generate_profile_corpus
from tests.conftest import random_vectors


def split_run(algorithm_index: str, vectors, threshold: float, decay: float,
              split_at: int, *, via_file=None):
    """Run the first part, checkpoint, restore, run the second part."""
    first = StreamingFramework(threshold, decay, index=algorithm_index)
    keys = set()
    for vector in vectors[:split_at]:
        keys.update(pair.key for pair in first.process(vector))
    if via_file is not None:
        save_checkpoint(first, via_file)
        resumed = load_checkpoint(via_file)
    else:
        resumed = restore_join(snapshot_join(first))
    for vector in vectors[split_at:]:
        keys.update(pair.key for pair in resumed.process(vector))
    return keys, resumed


class TestSnapshotRestore:
    @pytest.mark.parametrize("index", ["INV", "L2", "L2AP", "AP"])
    def test_resumed_run_matches_uninterrupted_run(self, index):
        vectors = random_vectors(80, seed=131)
        threshold, decay = 0.6, 0.05
        expected = {p.key for p in brute_force_time_dependent(vectors, threshold, decay)}
        keys, _ = split_run(index, vectors, threshold, decay, split_at=40)
        assert keys == expected

    @pytest.mark.parametrize("split_at", [1, 10, 59])
    def test_any_split_point_works(self, split_at):
        vectors = random_vectors(60, seed=137)
        threshold, decay = 0.6, 0.05
        expected = {p.key for p in brute_force_time_dependent(vectors, threshold, decay)}
        keys, _ = split_run("L2", vectors, threshold, decay, split_at=split_at)
        assert keys == expected

    def test_statistics_survive_the_checkpoint(self):
        vectors = random_vectors(50, seed=139)
        join = StreamingFramework(0.6, 0.05, index="L2")
        for vector in vectors[:25]:
            join.process(vector)
        resumed = restore_join(snapshot_join(join))
        assert resumed.stats.vectors_processed == join.stats.vectors_processed
        assert resumed.stats.entries_indexed == join.stats.entries_indexed
        for vector in vectors[25:]:
            resumed.process(vector)
        assert resumed.stats.vectors_processed == 50

    def test_snapshot_is_json_serialisable(self):
        join = StreamingFramework(0.6, 0.05, index="L2AP")
        for vector in random_vectors(30, seed=141):
            join.process(vector)
        payload = json.dumps(snapshot_join(join))
        assert isinstance(payload, str)
        restored = restore_join(json.loads(payload))
        assert restored.algorithm == "STR-L2AP"

    def test_file_round_trip(self, tmp_path):
        vectors = generate_profile_corpus("tweets", num_vectors=120, seed=31)
        threshold, decay = 0.6, 0.05
        expected = {p.key for p in brute_force_time_dependent(vectors, threshold, decay)}
        keys, resumed = split_run("L2", vectors, threshold, decay, split_at=60,
                                  via_file=tmp_path / "join.ckpt")
        assert keys == expected
        assert resumed.algorithm == "STR-L2"

    def test_restored_parameters_match(self):
        join = StreamingFramework(0.72, 0.03, index="L2")
        restored = restore_join(snapshot_join(join))
        assert restored.threshold == pytest.approx(0.72)
        assert restored.decay == pytest.approx(0.03)
        assert restored.horizon == pytest.approx(join.horizon)


class TestCheckpointErrors:
    def test_minibatch_framework_is_rejected(self):
        with pytest.raises(CheckpointError):
            snapshot_join(MiniBatchFramework(0.6, 0.05, index="L2"))

    def test_unknown_version_is_rejected(self):
        join = StreamingFramework(0.6, 0.05, index="L2")
        state = snapshot_join(join)
        state["version"] = 99
        with pytest.raises(CheckpointError):
            restore_join(state)

    def test_non_str_algorithm_is_rejected(self):
        join = StreamingFramework(0.6, 0.05, index="L2")
        state = snapshot_join(join)
        state["algorithm"] = "MB-L2"
        with pytest.raises(CheckpointError):
            restore_join(state)
