"""Tests for checkpointing and resuming streaming joins."""

from __future__ import annotations

import json

import pytest

from repro.backends import available_backends
from repro.baselines.brute_force import brute_force_time_dependent
from repro.core.checkpoint import (
    CheckpointError,
    PeriodicCheckpointer,
    atomic_write_json,
    load_checkpoint,
    restore_join,
    save_checkpoint,
    snapshot_join,
)
from repro.core.frameworks.minibatch import MiniBatchFramework
from repro.core.frameworks.streaming import StreamingFramework
from repro.datasets.generator import generate_profile_corpus
from tests.conftest import random_vectors

BACKENDS = [
    "python",
    pytest.param("numpy", marks=pytest.mark.skipif(
        "numpy" not in available_backends(),
        reason="NumPy backend unavailable")),
]


def split_run(algorithm_index: str, vectors, threshold: float, decay: float,
              split_at: int, *, via_file=None):
    """Run the first part, checkpoint, restore, run the second part."""
    first = StreamingFramework(threshold, decay, index=algorithm_index)
    keys = set()
    for vector in vectors[:split_at]:
        keys.update(pair.key for pair in first.process(vector))
    if via_file is not None:
        save_checkpoint(first, via_file)
        resumed = load_checkpoint(via_file)
    else:
        resumed = restore_join(snapshot_join(first))
    for vector in vectors[split_at:]:
        keys.update(pair.key for pair in resumed.process(vector))
    return keys, resumed


class TestSnapshotRestore:
    @pytest.mark.parametrize("index", ["INV", "L2", "L2AP", "AP"])
    def test_resumed_run_matches_uninterrupted_run(self, index):
        vectors = random_vectors(80, seed=131)
        threshold, decay = 0.6, 0.05
        expected = {p.key for p in brute_force_time_dependent(vectors, threshold, decay)}
        keys, _ = split_run(index, vectors, threshold, decay, split_at=40)
        assert keys == expected

    @pytest.mark.parametrize("split_at", [1, 10, 59])
    def test_any_split_point_works(self, split_at):
        vectors = random_vectors(60, seed=137)
        threshold, decay = 0.6, 0.05
        expected = {p.key for p in brute_force_time_dependent(vectors, threshold, decay)}
        keys, _ = split_run("L2", vectors, threshold, decay, split_at=split_at)
        assert keys == expected

    def test_statistics_survive_the_checkpoint(self):
        vectors = random_vectors(50, seed=139)
        join = StreamingFramework(0.6, 0.05, index="L2")
        for vector in vectors[:25]:
            join.process(vector)
        resumed = restore_join(snapshot_join(join))
        assert resumed.stats.vectors_processed == join.stats.vectors_processed
        assert resumed.stats.entries_indexed == join.stats.entries_indexed
        for vector in vectors[25:]:
            resumed.process(vector)
        assert resumed.stats.vectors_processed == 50

    def test_snapshot_is_json_serialisable(self):
        join = StreamingFramework(0.6, 0.05, index="L2AP")
        for vector in random_vectors(30, seed=141):
            join.process(vector)
        payload = json.dumps(snapshot_join(join))
        assert isinstance(payload, str)
        restored = restore_join(json.loads(payload))
        assert restored.algorithm == "STR-L2AP"

    def test_file_round_trip(self, tmp_path):
        vectors = generate_profile_corpus("tweets", num_vectors=120, seed=31)
        threshold, decay = 0.6, 0.05
        expected = {p.key for p in brute_force_time_dependent(vectors, threshold, decay)}
        keys, resumed = split_run("L2", vectors, threshold, decay, split_at=60,
                                  via_file=tmp_path / "join.ckpt")
        assert keys == expected
        assert resumed.algorithm == "STR-L2"

    def test_restored_parameters_match(self):
        join = StreamingFramework(0.72, 0.03, index="L2")
        restored = restore_join(snapshot_join(join))
        assert restored.threshold == pytest.approx(0.72)
        assert restored.decay == pytest.approx(0.03)
        assert restored.horizon == pytest.approx(join.horizon)


class TestRestoreThenContinueParity:
    """Checkpoint mid-stream, restore, finish: bitwise-equal to an
    uninterrupted run — pairs (similarities included) and every counter —
    on both compute backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("index", ["L2", "L2AP"])
    def test_pairs_and_counters_bitwise_equal(self, backend, index):
        vectors = random_vectors(80, seed=211)
        threshold, decay = 0.6, 0.05
        uninterrupted = StreamingFramework(threshold, decay, index=index,
                                           backend=backend)
        expected_pairs = [pair for vector in vectors
                          for pair in uninterrupted.process(vector)]

        first = StreamingFramework(threshold, decay, index=index,
                                   backend=backend)
        got_pairs = [pair for vector in vectors[:37]
                     for pair in first.process(vector)]
        resumed = restore_join(snapshot_join(first))
        got_pairs += [pair for vector in vectors[37:]
                      for pair in resumed.process(vector)]

        assert got_pairs == expected_pairs  # full tuples, not just keys
        expected_counters = uninterrupted.stats.as_dict()
        got_counters = resumed.stats.as_dict()
        expected_counters.pop("elapsed_seconds")
        got_counters.pop("elapsed_seconds")
        assert got_counters == expected_counters

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cross_backend_restore_keeps_pair_set(self, backend):
        """A checkpoint written by one backend restores on another."""
        vectors = random_vectors(60, seed=223)
        threshold, decay = 0.6, 0.05
        first = StreamingFramework(threshold, decay, index="L2",
                                   backend=backend)
        keys = set()
        for vector in vectors[:30]:
            keys.update(pair.key for pair in first.process(vector))
        state = snapshot_join(first)
        other = "python" if backend == "numpy" else None
        state["backend"] = other
        resumed = restore_join(state)
        for vector in vectors[30:]:
            keys.update(pair.key for pair in resumed.process(vector))
        expected = {p.key
                    for p in brute_force_time_dependent(vectors, threshold, decay)}
        assert keys == expected


class TestAtomicWrites:
    def test_save_leaves_no_temp_files_and_is_loadable(self, tmp_path):
        join = StreamingFramework(0.6, 0.05, index="L2")
        for vector in random_vectors(30, seed=227):
            join.process(vector)
        path = tmp_path / "join.ckpt"
        save_checkpoint(join, path)
        save_checkpoint(join, path)  # overwrite goes through os.replace too
        assert [p.name for p in tmp_path.iterdir()] == ["join.ckpt"]
        assert load_checkpoint(path).stats.vectors_processed == 30

    def test_failed_write_keeps_the_previous_checkpoint(self, tmp_path):
        path = tmp_path / "state.json"
        atomic_write_json(path, {"generation": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})  # not JSON-serialisable
        assert json.loads(path.read_text()) == {"generation": 1}
        assert list(tmp_path.glob("*.tmp.*")) == []


class TestPeriodicCheckpointer:
    def test_writes_every_n_vectors(self, tmp_path):
        join = StreamingFramework(0.6, 0.05, index="L2")
        checkpointer = PeriodicCheckpointer(join, tmp_path / "j.ckpt",
                                            every_vectors=10)
        for vector in random_vectors(35, seed=229):
            join.process(vector)
            checkpointer.tick()
        assert checkpointer.checkpoints_written == 3
        assert load_checkpoint(tmp_path / "j.ckpt").stats.vectors_processed == 30

    def test_no_interval_means_explicit_only(self, tmp_path):
        join = StreamingFramework(0.6, 0.05, index="L2")
        checkpointer = PeriodicCheckpointer(join, tmp_path / "j.ckpt")
        for vector in random_vectors(10, seed=233):
            join.process(vector)
            checkpointer.tick()
        assert checkpointer.checkpoints_written == 0
        assert checkpointer.tick(force=True) is not None
        assert checkpointer.checkpoints_written == 1

    def test_rejects_nonpositive_intervals(self, tmp_path):
        join = StreamingFramework(0.6, 0.05, index="L2")
        with pytest.raises(ValueError):
            PeriodicCheckpointer(join, tmp_path / "j.ckpt", every_vectors=0)
        with pytest.raises(ValueError):
            PeriodicCheckpointer(join, tmp_path / "j.ckpt", every_seconds=0)


class TestCheckpointErrors:
    def test_minibatch_framework_is_rejected(self):
        with pytest.raises(CheckpointError):
            snapshot_join(MiniBatchFramework(0.6, 0.05, index="L2"))

    def test_unknown_version_is_rejected(self):
        join = StreamingFramework(0.6, 0.05, index="L2")
        state = snapshot_join(join)
        state["version"] = 99
        with pytest.raises(CheckpointError):
            restore_join(state)

    def test_non_str_algorithm_is_rejected(self):
        join = StreamingFramework(0.6, 0.05, index="L2")
        state = snapshot_join(join)
        state["algorithm"] = "MB-L2"
        with pytest.raises(CheckpointError):
            restore_join(state)
