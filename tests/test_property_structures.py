"""Property-based tests for the index data structures (hypothesis).

The circular buffer is checked against a ``collections.deque`` model and
the linked hash-map against an ``OrderedDict`` model: after any sequence of
operations both must hold exactly the same content in the same order.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.circular import CircularBuffer
from repro.indexes.linked_map import LinkedHashMap

# Operations for the circular buffer model test:
#   ("append", value) | ("drop", count) | ("keep", count)
buffer_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(-1000, 1000)),
        st.tuples(st.just("drop"), st.integers(0, 20)),
        st.tuples(st.just("keep"), st.integers(0, 20)),
    ),
    max_size=200,
)

# Operations for the linked hash-map model test:
#   ("set", key, value) | ("del", key) | ("pop_oldest",)
map_keys = st.integers(min_value=0, max_value=15)
map_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set"), map_keys, st.integers()),
        st.tuples(st.just("del"), map_keys),
        st.tuples(st.just("pop_oldest")),
    ),
    max_size=200,
)


class TestCircularBufferModel:
    @given(buffer_ops)
    @settings(max_examples=150)
    def test_behaves_like_a_deque(self, operations):
        buffer: CircularBuffer[int] = CircularBuffer()
        model: deque[int] = deque()
        for operation in operations:
            if operation[0] == "append":
                buffer.append(operation[1])
                model.append(operation[1])
            elif operation[0] == "drop":
                count = operation[1]
                dropped = buffer.drop_oldest(count)
                expected_drop = min(count, len(model)) if count > 0 else 0
                assert dropped == expected_drop
                for _ in range(expected_drop):
                    model.popleft()
            else:  # keep
                count = operation[1]
                buffer.keep_newest(count)
                while len(model) > count:
                    model.popleft()
            assert list(buffer) == list(model)
            assert list(buffer.iter_newest_first()) == list(reversed(model))
            assert len(buffer) == len(model)

    @given(buffer_ops)
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_capacity(self, operations):
        buffer: CircularBuffer[int] = CircularBuffer()
        for operation in operations:
            if operation[0] == "append":
                buffer.append(operation[1])
            elif operation[0] == "drop":
                buffer.drop_oldest(operation[1])
            else:
                buffer.keep_newest(operation[1])
            assert len(buffer) <= buffer.capacity


class TestLinkedHashMapModel:
    @given(map_ops)
    @settings(max_examples=150)
    def test_behaves_like_an_ordered_dict(self, operations):
        table: LinkedHashMap[int, int] = LinkedHashMap()
        model: OrderedDict[int, int] = OrderedDict()
        for operation in operations:
            if operation[0] == "set":
                _, key, value = operation
                table[key] = value
                model[key] = value
            elif operation[0] == "del":
                key = operation[1]
                if key in model:
                    del table[key]
                    del model[key]
                else:
                    assert key not in table
            else:  # pop_oldest
                if model:
                    assert table.pop_oldest() == model.popitem(last=False)
                else:
                    assert len(table) == 0
            assert list(table.items()) == list(model.items())
            assert len(table) == len(model)

    @given(map_ops)
    @settings(max_examples=50)
    def test_oldest_and_newest_match_model(self, operations):
        table: LinkedHashMap[int, int] = LinkedHashMap()
        model: OrderedDict[int, int] = OrderedDict()
        for operation in operations:
            if operation[0] == "set":
                _, key, value = operation
                table[key] = value
                model[key] = value
            elif operation[0] == "del" and operation[1] in model:
                del table[operation[1]]
                del model[operation[1]]
            if model:
                first_key = next(iter(model))
                last_key = next(reversed(model))
                assert table.oldest() == (first_key, model[first_key])
                assert table.newest() == (last_key, model[last_key])
