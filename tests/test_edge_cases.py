"""Edge-case and regression tests cutting across the whole stack."""

from __future__ import annotations

import math

import pytest

from repro.baselines.brute_force import brute_force_time_dependent
from repro.core.join import create_join
from repro.core.similarity import time_horizon
from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError
from tests.conftest import random_vectors

ALL_ALGORITHMS = ["STR-INV", "STR-L2", "STR-L2AP", "MB-INV", "MB-L2", "MB-L2AP"]


def vec(vector_id: int, t: float, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, t, entries)


class TestDegenerateStreams:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_empty_stream(self, algorithm):
        join = create_join(algorithm, 0.7, 0.1)
        assert join.run_to_list([]) == []

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_single_vector_stream(self, algorithm):
        join = create_join(algorithm, 0.7, 0.1)
        assert join.run_to_list([vec(1, 0.0, {1: 1.0})]) == []

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_all_vectors_at_the_same_timestamp(self, algorithm):
        vectors = [vec(i, 5.0, {1: 1.0, 2: 1.0}) for i in range(6)]
        join = create_join(algorithm, 0.9, 0.1)
        pairs = join.run_to_list(vectors)
        # Every pair is identical content at zero time distance: 6 choose 2.
        assert len(pairs) == 15
        assert all(pair.similarity == pytest.approx(1.0) for pair in pairs)

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_single_dimension_vectors(self, algorithm):
        vectors = [vec(i, float(i) * 0.1, {7: 1.0}) for i in range(5)]
        expected = {p.key for p in brute_force_time_dependent(vectors, 0.8, 0.1)}
        join = create_join(algorithm, 0.8, 0.1)
        assert {p.key for p in join.run(vectors)} == expected

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_huge_time_gaps_between_every_pair_of_items(self, algorithm):
        vectors = [vec(i, float(i) * 1e6, {1: 1.0}) for i in range(5)]
        join = create_join(algorithm, 0.7, 0.1)
        assert join.run_to_list(vectors) == []

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_duplicate_ids_at_different_times_are_still_reported(self, algorithm):
        # The library treats vector ids as opaque labels; a repeated id forms
        # a pair with its earlier occurrence like any other vector.
        vectors = [vec(7, 0.0, {1: 1.0}), vec(8, 0.5, {1: 1.0})]
        join = create_join(algorithm, 0.9, 0.1)
        assert len(join.run_to_list(vectors)) == 1


class TestThresholdExtremes:
    @pytest.mark.parametrize("algorithm", ["STR-L2", "STR-L2AP", "MB-L2"])
    def test_threshold_one_keeps_only_exact_duplicates_at_zero_gap(self, algorithm):
        # Single-coordinate vectors keep the dot product exactly 1.0 after
        # normalisation, avoiding float round-off at the θ = 1 boundary.
        vectors = [
            vec(1, 0.0, {1: 3.0}),
            vec(2, 0.0, {1: 7.0}),              # same direction, simultaneous
            vec(3, 0.0, {1: 1.0, 2: 0.05}),     # almost the same direction
        ]
        join = create_join(algorithm, 1.0, 0.5)
        keys = {pair.key for pair in join.run(vectors)}
        assert (1, 2) in keys
        assert (1, 3) not in keys

    def test_threshold_above_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            create_join("STR-L2", 1.5, 0.1)

    def test_zero_threshold_rejected(self):
        with pytest.raises(InvalidParameterError):
            create_join("STR-L2", 0.0, 0.1)

    @pytest.mark.parametrize("algorithm", ["STR-L2", "STR-INV"])
    def test_very_low_threshold_still_exact(self, algorithm):
        vectors = random_vectors(40, seed=151)
        expected = {p.key for p in brute_force_time_dependent(vectors, 0.05, 0.05)}
        join = create_join(algorithm, 0.05, 0.05)
        assert {p.key for p in join.run(vectors)} == expected


class TestHorizonBoundary:
    def test_pair_exactly_at_the_horizon_with_unit_dot(self):
        threshold, decay = 0.7, 0.1
        tau = time_horizon(threshold, decay)
        a = vec(1, 0.0, {1: 1.0})
        b = vec(2, tau, {1: 1.0})
        # sim = exp(-decay * tau) = threshold exactly (up to float error).
        expected = {p.key for p in brute_force_time_dependent([a, b], threshold, decay)}
        got = {p.key for p in create_join("STR-L2", threshold, decay).run([a, b])}
        assert got == expected

    def test_pair_just_inside_the_horizon_is_found(self):
        threshold, decay = 0.7, 0.1
        tau = time_horizon(threshold, decay)
        a = vec(1, 0.0, {1: 1.0})
        b = vec(2, tau * 0.999, {1: 1.0})
        got = create_join("STR-L2", threshold, decay).run_to_list([a, b])
        assert len(got) == 1

    def test_reported_similarity_is_monotone_in_gap(self):
        threshold, decay = 0.5, 0.1
        join = create_join("STR-L2", threshold, decay)
        base = vec(0, 0.0, {1: 1.0})
        join.process(base)
        similarities = []
        for index, gap in enumerate((0.5, 1.0, 2.0), start=1):
            # Re-process against a fresh join each time to isolate the gap.
            fresh = create_join("STR-L2", threshold, decay)
            fresh.process(vec(0, 0.0, {1: 1.0}))
            pairs = fresh.process(vec(index, gap, {1: 1.0}))
            similarities.append(pairs[0].similarity)
        assert similarities == sorted(similarities, reverse=True)


class TestNumericalRobustness:
    @pytest.mark.parametrize("algorithm", ["STR-L2", "STR-L2AP"])
    def test_tiny_coordinate_values(self, algorithm):
        vectors = [vec(i, float(i) * 0.1, {1: 1e-9, 2: 2e-9, 3 + i: 1e-9})
                   for i in range(6)]
        expected = {p.key for p in brute_force_time_dependent(vectors, 0.7, 0.1)}
        join = create_join(algorithm, 0.7, 0.1)
        assert {p.key for p in join.run(vectors)} == expected

    @pytest.mark.parametrize("algorithm", ["STR-L2", "STR-L2AP"])
    def test_highly_skewed_vectors(self, algorithm):
        # One dominant coordinate plus a long tail of tiny ones.
        def skewed(vector_id: int, t: float, anchor: int) -> SparseVector:
            entries = {anchor: 100.0}
            entries.update({50 + k: 0.01 for k in range(20)})
            return vec(vector_id, t, entries)

        vectors = [skewed(1, 0.0, 5), skewed(2, 0.5, 5), skewed(3, 1.0, 6)]
        expected = {p.key for p in brute_force_time_dependent(vectors, 0.8, 0.1)}
        join = create_join(algorithm, 0.8, 0.1)
        assert {p.key for p in join.run(vectors)} == expected

    def test_large_timestamps_do_not_lose_precision(self):
        base = 1.7e9   # epoch-seconds scale
        vectors = [vec(1, base, {1: 1.0}), vec(2, base + 1.0, {1: 1.0})]
        join = create_join("STR-L2", 0.7, 0.1)
        pairs = join.run_to_list(vectors)
        assert len(pairs) == 1
        assert pairs[0].similarity == pytest.approx(math.exp(-0.1))

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_interleaved_dense_and_sparse_vectors(self, algorithm):
        vectors = []
        for i in range(30):
            if i % 2 == 0:
                entries = {k: 1.0 for k in range(i % 5, i % 5 + 20)}
            else:
                entries = {i: 1.0}
            vectors.append(vec(i, float(i) * 0.2, entries))
        expected = {p.key for p in brute_force_time_dependent(vectors, 0.6, 0.05)}
        join = create_join(algorithm, 0.6, 0.05)
        assert {p.key for p in join.run(vectors)} == expected
