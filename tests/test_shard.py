"""Parity and unit tests for the sharded parallel join engine.

The determinism contract of :mod:`repro.shard` (see
``repro/shard/coordinator.py``) promises that a sharded run is *bitwise
identical* to the single-process NumPy run — the same pair set with the
same similarities, dots and time deltas, and the same operation
counters — at every worker count.  The hypothesis suite here drives that
contract across the regimes that stress different machinery:

* ``θ = 1`` and mid-range thresholds (admission edge cases),
* aggressive decay (expiry: head truncation on time-ordered lists, lazy
  masked expiry + amortised compaction on unordered ones),
* growing maxima under STR-L2AP (re-indexing: out-of-order appends routed
  to shards, pscore refreshes, ℓ₂-locked boundaries).

The suite runs on the serial in-process executor (``workers ∈ {1, 2, 4}``)
so it is deterministic and CI-safe; a smaller non-hypothesis test
exercises the real multiprocess executor end to end.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SparseVector, available_backends
from repro.core.results import JoinStatistics, ShardCounters, merge_shard_counters
from repro.shard.plan import ShardPlan, plan_report
from tests.conftest import accelerated_backends
from tests.groundtruth import engine_pair_map

pytestmark = pytest.mark.skipif("numpy" not in available_backends(),
                                reason="NumPy backend unavailable")

PARITY_COUNTERS = ("candidates_generated", "candidates_sketch_pruned",
                   "full_similarities",
                   "entries_traversed", "entries_pruned", "entries_indexed",
                   "residual_entries", "reindexings", "reindexed_entries",
                   "pairs_output", "max_index_size", "max_residual_size")

WORKER_COUNTS = (1, 2, 4)


def run_single_process(algorithm, vectors, threshold, decay,
                       backend="numpy"):
    return engine_pair_map(vectors, threshold, decay, algorithm=algorithm,
                           backend=backend)


def run_sharded(algorithm, vectors, threshold, decay, workers,
                executor="serial", backend="numpy"):
    from repro.shard import create_sharded_join

    stats = JoinStatistics()
    with create_sharded_join(algorithm, threshold, decay, workers=workers,
                             stats=stats, backend=backend,
                             executor=executor) as join:
        pairs = {pair.key: pair for pair in join.run(vectors)}
    return pairs, stats


def assert_sharded_matches(algorithm, vectors, threshold, decay,
                           worker_counts=WORKER_COUNTS, executor="serial",
                           backend="numpy"):
    expected, expected_stats = run_single_process(algorithm, vectors,
                                                  threshold, decay, backend)
    for workers in worker_counts:
        actual, actual_stats = run_sharded(algorithm, vectors, threshold,
                                           decay, workers, executor, backend)
        assert set(actual) == set(expected), (algorithm, workers)
        for key, pair in expected.items():
            other = actual[key]
            assert other.similarity == pair.similarity, (algorithm, workers, key)
            assert other.dot == pair.dot, (algorithm, workers, key)
            assert other.time_delta == pair.time_delta, (algorithm, workers, key)
        for counter in PARITY_COUNTERS:
            assert (getattr(actual_stats, counter)
                    == getattr(expected_stats, counter)), (algorithm, workers,
                                                           counter)


sparse_streams = st.lists(
    st.dictionaries(st.integers(min_value=0, max_value=30),
                    st.floats(min_value=0.05, max_value=1.0),
                    min_size=1, max_size=7),
    min_size=2, max_size=35,
)


@pytest.mark.parametrize("backend", accelerated_backends())
class TestShardedParity:
    @settings(max_examples=15, deadline=None)
    @given(entries=sparse_streams,
           threshold=st.floats(min_value=0.3, max_value=0.99),
           decay=st.floats(min_value=0.05, max_value=2.0))
    def test_expiring_streams(self, entries, threshold, decay, backend):
        # Fast decay → short horizon: postings expire constantly, driving
        # both head truncation (STR-L2) and the lazy masked expiry +
        # amortised compaction of unordered lists (STR-L2AP) inside the
        # shard workers.
        vectors = [SparseVector(index, float(index), coords)
                   for index, coords in enumerate(entries)]
        for algorithm in ("STR-L2AP", "STR-L2", "STR-INV"):
            assert_sharded_matches(algorithm, vectors, threshold, decay,
                                   backend=backend)

    @settings(max_examples=10, deadline=None)
    @given(entries=sparse_streams,
           threshold=st.floats(min_value=0.4, max_value=0.95))
    def test_reindexing_streams(self, entries, threshold, backend):
        # Slow decay + values scaled up over time: the online maximum
        # vector keeps growing, so STR-L2AP re-indexes constantly and the
        # re-indexed (out-of-time-order) postings are routed to shards.
        count = len(entries)
        vectors = [
            SparseVector(index, float(index) * 0.1,
                         {dim: value * (0.3 + 0.7 * index / count)
                          for dim, value in coords.items()})
            for index, coords in enumerate(entries)
        ]
        for algorithm in ("STR-L2AP", "STR-AP"):
            assert_sharded_matches(algorithm, vectors, threshold, 0.002,
                                   backend=backend)

    @settings(max_examples=8, deadline=None)
    @given(entries=sparse_streams)
    def test_theta_one(self, entries, backend):
        # θ = 1 only admits exact duplicates; the admission bound sits on
        # the threshold for identical vectors, the regime where any
        # sharded drift in the replayed bounds would show.
        vectors = [SparseVector(index, float(index) * 0.01, coords)
                   for index, coords in enumerate(entries + entries[:3])]
        for algorithm in ("STR-L2AP", "STR-L2"):
            assert_sharded_matches(algorithm, vectors, 1.0, 0.01,
                                   worker_counts=(1, 3), backend=backend)

    def test_equal_timestamp_burst(self, backend):
        # Bursts of equal timestamps (the merge_streams tie regime) must
        # shard identically too.
        vectors = [SparseVector(index, float(index // 4),
                                {index % 6: 0.8, 6 + index % 5: 0.6})
                   for index in range(40)]
        for algorithm in ("STR-L2AP", "STR-L2", "STR-INV"):
            assert_sharded_matches(algorithm, vectors, 0.5, 0.1,
                                   backend=backend)


class TestGenericWorkerGather:
    def test_reference_backend_workers_keep_parity(self):
        # The base-class gather_*_partials defaults (per-entry loops over
        # the generic posting-list interface) must produce the same
        # partials as the vectorised arena gather: run the coordinator
        # over workers whose kernels are the pure-Python reference.
        import random

        from repro.shard.coordinator import (
            ShardedInvStreamingIndex,
            ShardedL2APStreamingIndex,
            ShardedL2StreamingIndex,
        )
        from repro.shard.executor import SerialShardExecutor

        random.seed(5)
        vectors = []
        timestamp = 0.0
        for index in range(100):
            timestamp += random.random() * 0.3
            vectors.append(SparseVector(
                index, timestamp,
                {random.randrange(15): random.uniform(0.1, 1.0)
                 for _ in range(random.randrange(1, 5))}))
        for index_cls, algorithm in (
                (ShardedL2StreamingIndex, "STR-L2"),
                (ShardedL2APStreamingIndex, "STR-L2AP"),
                (ShardedInvStreamingIndex, "STR-INV")):
            expected, expected_stats = run_single_process(
                algorithm, vectors, 0.5, 0.05)
            stats = JoinStatistics()
            sharded = index_cls(0.5, 0.05, stats=stats, backend="numpy")
            plan = ShardPlan(2)
            sharded.attach_executor(plan,
                                    SerialShardExecutor(plan, backend="python"))
            actual = {}
            for vector in vectors:
                for pair in sharded.process(vector):
                    actual[pair.key] = pair
            assert set(actual) == set(expected), algorithm
            for key, pair in expected.items():
                assert actual[key].similarity == pair.similarity, algorithm
            for counter in PARITY_COUNTERS:
                assert (getattr(stats, counter)
                        == getattr(expected_stats, counter)), (algorithm,
                                                               counter)


class TestProcessExecutor:
    def test_multiprocess_parity_two_workers(self):
        import random

        random.seed(17)
        vectors = []
        timestamp = 0.0
        for index in range(150):
            timestamp += random.random() * 0.2
            coords = {random.randrange(20): random.uniform(0.05, 1.0)
                      for _ in range(random.randrange(1, 6))}
            vectors.append(SparseVector(index, timestamp, coords))
        for algorithm in ("STR-L2AP", "STR-INV"):
            assert_sharded_matches(algorithm, vectors, 0.5, 0.05,
                                   worker_counts=(2,), executor="process")

    def test_shard_counters_report_traffic(self):
        from repro.shard import create_sharded_join

        vectors = [SparseVector(index, float(index),
                                {index % 8: 0.9, 8 + index % 7: 0.5})
                   for index in range(60)]
        with create_sharded_join("STR-L2", 0.5, 0.05, workers=2,
                                 executor="process") as join:
            for vector in vectors:
                join.process(vector)
            counters = join.shard_counters()
        assert len(counters) == 2
        total = merge_shard_counters(counters)
        assert total.entries_indexed == join.stats.entries_indexed
        assert total.entries_traversed == join.stats.entries_traversed
        assert all(c.scans == 60 for c in counters)

    def test_close_is_idempotent(self):
        from repro.shard import create_sharded_join

        join = create_sharded_join("STR-L2", 0.6, 0.1, workers=2,
                                   executor="process")
        join.process(SparseVector(0, 0.0, {1: 1.0}))
        join.close()
        join.close()


class TestShardPlan:
    def test_deterministic_and_in_range(self):
        plan = ShardPlan(4)
        owners = [plan.shard_of(dim) for dim in range(1000)]
        assert owners == [plan.shard_of(dim) for dim in range(1000)]
        assert set(owners) <= {0, 1, 2, 3}

    def test_single_shard_owns_everything(self):
        plan = ShardPlan(1)
        assert {plan.shard_of(dim) for dim in range(100)} == {0}

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ShardPlan(0)

    def test_consecutive_dims_spread(self):
        # The mixing hash must not map consecutive ids to one shard.
        plan = ShardPlan(4)
        counts = [0] * 4
        for dim in range(4000):
            counts[plan.shard_of(dim)] += 1
        assert max(counts) < 2 * min(counts)

    def test_split_positions_partitions_every_coordinate(self):
        plan = ShardPlan(3)
        vector = SparseVector(0, 0.0, {dim: 0.5 for dim in range(17)})
        groups = plan.split_positions(vector)
        flattened = sorted(position for group in groups for position in group)
        assert flattened == list(range(17))
        for shard, group in enumerate(groups):
            assert all(plan.shard_of(vector.dims[p]) == shard for p in group)

    def test_plan_report_measures_mass(self):
        vectors = [SparseVector(index, float(index),
                                {index % 10: 1.0, 10 + index % 3: 0.5})
                   for index in range(30)]
        balance = plan_report(vectors, 2)
        assert balance.total_postings == sum(len(v) for v in vectors)
        assert sum(shard.entries_indexed for shard in balance.shards) \
            == balance.total_postings
        assert balance.skew >= 1.0
        rows = balance.rows()
        assert len(rows) == 2 and {row["shard"] for row in rows} == {0, 1}


class TestShardCounters:
    def test_merge_accumulates(self):
        first = ShardCounters(shard=0, dimensions=3, entries_indexed=10,
                              entries_traversed=7, entries_removed=2, scans=5)
        second = ShardCounters(shard=1, dimensions=2, entries_indexed=4,
                               entries_traversed=1, entries_removed=0, scans=5)
        total = merge_shard_counters([first, second])
        assert total.shard == -1
        assert total.dimensions == 5
        assert total.entries_indexed == 14
        assert total.entries_traversed == 8
        assert total.scans == 10


class TestShardCLI:
    def test_shards_subcommand(self, capsys):
        from repro.cli import main

        assert main(["shards", "--profile", "tweets", "--num-vectors", "150",
                     "--workers", "3"]) == 0
        output = capsys.readouterr().out
        assert "3 shards" in output
        assert "skew" in output

    def test_run_with_workers(self, capsys):
        from repro.cli import main

        assert main(["run", "--profile", "tweets", "--num-vectors", "80",
                     "--algorithm", "STR-L2", "--theta", "0.6",
                     "--decay", "0.05", "--workers", "2",
                     "--shard-executor", "serial"]) == 0
        output = capsys.readouterr().out
        assert "numpyx2" in output

    def test_run_rejects_workers_for_minibatch(self, capsys):
        from repro.cli import main

        assert main(["run", "--profile", "tweets", "--num-vectors", "10",
                     "--algorithm", "MB-L2", "--workers", "2"]) == 2


class TestSharedMemoryAllocator:
    def test_alloc_and_release(self):
        import gc

        import numpy as np

        from repro.shard.shm import SharedMemoryAllocator

        allocator = SharedMemoryAllocator()
        array = allocator(1024, np.float64)
        array[:] = 1.5
        assert array.sum() == 1536.0
        assert allocator.live_segments == 1
        del array
        gc.collect()
        allocator.close()
        assert allocator.live_segments == 0
        assert not allocator._retired

    def test_arena_on_shared_memory(self):
        import gc

        from repro.backends.numpy_backend import NumpyKernel
        from repro.shard.shm import SharedMemoryAllocator

        allocator = SharedMemoryAllocator()
        kernel = NumpyKernel(arena_allocator=allocator)
        plist = kernel.new_posting_list()
        for index in range(5000):  # force several growth reallocations
            plist._append_fast(index, 0.5, 0.1, float(index))
        assert kernel._arena.capacity >= 5000
        assert allocator.bytes_allocated > 0
        del plist, kernel
        gc.collect()
        allocator.close()
        assert allocator.live_segments == 0
