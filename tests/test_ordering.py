"""Tests for the dimension-ordering strategies."""

from __future__ import annotations

import pytest

from repro.baselines.brute_force import brute_force_all_pairs
from repro.core.batch import all_pairs
from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError
from repro.indexes.ordering import DimensionOrdering, remap_vectors
from tests.conftest import random_vectors


def vec(vector_id: int, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, 0.0, entries)


class TestDimensionOrdering:
    def test_identity_ordering_is_a_noop(self):
        ordering = DimensionOrdering.identity()
        vector = vec(1, {3: 1.0, 7: 2.0})
        assert ordering.remap(vector) is vector
        assert ordering.map_dimension(3) == 3
        assert len(ordering) == 0

    def test_natural_strategy_returns_identity(self):
        ordering = DimensionOrdering.from_vectors([vec(1, {3: 1.0})], "natural")
        assert ordering.strategy == "natural"
        assert len(ordering) == 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(InvalidParameterError):
            DimensionOrdering.from_vectors([], "alphabetical")

    def test_frequency_strategy_puts_common_dimensions_first(self):
        dataset = [
            vec(1, {10: 1.0, 20: 1.0}),
            vec(2, {10: 1.0, 30: 1.0}),
            vec(3, {10: 1.0}),
        ]
        ordering = DimensionOrdering.from_vectors(dataset, "frequency")
        # Dimension 10 occurs in every vector, so it gets the smallest id.
        assert ordering.map_dimension(10) == 0

    def test_max_weight_strategy_puts_heavy_dimensions_last(self):
        dataset = [vec(1, {10: 0.1, 20: 0.9}), vec(2, {10: 0.2, 20: 0.8})]
        ordering = DimensionOrdering.from_vectors(dataset, "max_weight")
        assert ordering.map_dimension(10) < ordering.map_dimension(20)

    def test_remap_is_reversible(self):
        dataset = random_vectors(30, seed=101)
        ordering = DimensionOrdering.from_vectors(dataset, "frequency")
        for vector in dataset:
            remapped = ordering.remap(vector)
            restored = {ordering.unmap_dimension(dim): value for dim, value in remapped}
            assert restored == dict(vector)

    def test_remap_preserves_similarities(self):
        dataset = random_vectors(40, seed=103)
        remapped, _ = remap_vectors(dataset, "frequency")
        for a, b, a2, b2 in zip(dataset, dataset[1:], remapped, remapped[1:]):
            assert a.dot(b) == pytest.approx(a2.dot(b2))

    def test_unseen_dimension_passes_through(self):
        ordering = DimensionOrdering.from_vectors([vec(1, {5: 1.0})], "frequency")
        assert ordering.unmap_dimension(999) == 999


class TestOrderingInBatchJoin:
    @pytest.mark.parametrize("strategy", ["natural", "frequency", "max_weight"])
    @pytest.mark.parametrize("index", ["L2AP", "L2", "AP"])
    def test_result_is_independent_of_ordering(self, strategy, index):
        dataset = random_vectors(60, seed=107)
        expected = {pair.key for pair in brute_force_all_pairs(dataset, 0.7)}
        got = {pair.key for pair in all_pairs(dataset, 0.7, index=index,
                                              dimension_order=strategy)}
        assert got == expected

    def test_ordering_changes_only_the_work_not_the_answer(self):
        from repro.core.results import JoinStatistics

        dataset = random_vectors(120, seed=109)
        natural_stats = JoinStatistics()
        frequency_stats = JoinStatistics()
        natural = all_pairs(dataset, 0.8, index="L2AP", stats=natural_stats)
        frequency = all_pairs(dataset, 0.8, index="L2AP", stats=frequency_stats,
                              dimension_order="frequency")
        assert {p.key for p in natural} == {p.key for p in frequency}
        # Both orderings must have actually done some work.
        assert natural_stats.entries_traversed > 0
        assert frequency_stats.entries_traversed > 0
