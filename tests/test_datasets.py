"""Tests for the synthetic dataset substrate (profiles, arrivals, generator, stats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.arrival import (
    bursty_timestamps,
    make_arrival_process,
    poisson_timestamps,
    sequential_timestamps,
)
from repro.datasets.generator import (
    SyntheticCorpusGenerator,
    generate_corpus,
    generate_profile_corpus,
)
from repro.datasets.profiles import DatasetProfile, available_profiles, get_profile
from repro.datasets.stats import dataset_statistics
from repro.exceptions import InvalidParameterError


class TestProfiles:
    def test_paper_profiles_exist(self):
        # The four paper corpora plus the synthetic backend hot-path profile.
        assert set(available_profiles()) == {
            "webspam", "rcv1", "blogs", "tweets", "hashtags",
        }

    def test_get_profile_is_case_insensitive(self):
        assert get_profile("RCV1").name == "rcv1"

    def test_unknown_profile(self):
        with pytest.raises(InvalidParameterError):
            get_profile("imaginary")

    def test_scaled_overrides_vector_count(self):
        assert get_profile("rcv1", num_vectors=123).num_vectors == 123

    def test_density_ordering_matches_paper(self):
        # WebSpam is the densest profile, Tweets the sparsest (Table 1).
        avg = {name: get_profile(name).avg_nnz for name in available_profiles()}
        assert avg["webspam"] > avg["blogs"] > avg["rcv1"] > avg["tweets"]

    def test_invalid_profile_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            DatasetProfile(
                name="bad", num_vectors=0, vocabulary_size=10, avg_nnz=5,
                nnz_dispersion=0.5, zipf_exponent=1.0, arrival_process="sequential",
                arrival_rate=1.0, burst_size=4.0, duplicate_probability=0.1,
                duplicate_noise=0.1, duplicate_window=10, description="",
            )


class TestArrivalProcesses:
    def test_sequential(self):
        assert list(sequential_timestamps(4)) == [0.0, 1.0, 2.0, 3.0]

    def test_sequential_with_custom_step(self):
        assert list(sequential_timestamps(3, start=5.0, step=0.5)) == [5.0, 5.5, 6.0]

    def test_sequential_rejects_bad_step(self):
        with pytest.raises(InvalidParameterError):
            list(sequential_timestamps(3, step=0.0))

    def test_poisson_is_increasing(self):
        rng = np.random.default_rng(0)
        times = list(poisson_timestamps(100, rng, rate=2.0))
        assert len(times) == 100
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_poisson_rate_controls_density(self):
        rng = np.random.default_rng(0)
        fast = list(poisson_timestamps(200, rng, rate=10.0))
        rng = np.random.default_rng(0)
        slow = list(poisson_timestamps(200, rng, rate=0.1))
        assert fast[-1] < slow[-1]

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(InvalidParameterError):
            list(poisson_timestamps(3, np.random.default_rng(0), rate=0.0))

    def test_bursty_is_non_decreasing_and_complete(self):
        rng = np.random.default_rng(1)
        times = list(bursty_timestamps(150, rng, rate=2.0, burst_size=6.0))
        assert len(times) == 150
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_bursty_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            list(bursty_timestamps(3, np.random.default_rng(0), rate=1.0, burst_size=0.5))

    def test_make_arrival_process_dispatch(self):
        rng = np.random.default_rng(0)
        assert len(list(make_arrival_process("sequential", 5, rng))) == 5
        assert len(list(make_arrival_process("poisson", 5, rng))) == 5
        assert len(list(make_arrival_process("bursty", 5, rng))) == 5

    def test_make_arrival_process_unknown(self):
        with pytest.raises(InvalidParameterError):
            make_arrival_process("chaotic", 5, np.random.default_rng(0))


class TestGenerator:
    def test_generates_requested_count(self):
        corpus = generate_profile_corpus("tweets", num_vectors=120, seed=1)
        assert len(corpus) == 120

    def test_vectors_are_normalized_and_time_ordered(self):
        corpus = generate_profile_corpus("blogs", num_vectors=80, seed=2)
        assert all(vector.is_normalized() for vector in corpus)
        times = [vector.timestamp for vector in corpus]
        assert times == sorted(times)

    def test_vector_ids_are_unique_and_sequential(self):
        corpus = generate_profile_corpus("rcv1", num_vectors=50, seed=3)
        assert [vector.vector_id for vector in corpus] == list(range(50))

    def test_reproducible_with_same_seed(self):
        a = generate_profile_corpus("tweets", num_vectors=60, seed=9)
        b = generate_profile_corpus("tweets", num_vectors=60, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_profile_corpus("tweets", num_vectors=60, seed=9)
        b = generate_profile_corpus("tweets", num_vectors=60, seed=10)
        assert a != b

    def test_average_nnz_tracks_profile(self):
        profile = get_profile("rcv1", num_vectors=300)
        corpus = generate_corpus(profile, seed=4)
        avg_nnz = sum(len(vector) for vector in corpus) / len(corpus)
        assert 0.5 * profile.avg_nnz <= avg_nnz <= 2.0 * profile.avg_nnz

    def test_duplicates_create_similar_pairs(self):
        profile = get_profile("tweets", num_vectors=200)
        corpus = generate_corpus(profile, seed=5)
        # At least one pair of near-duplicates with high cosine similarity
        # must exist, otherwise the workload cannot exercise the join.
        best = max(corpus[i].dot(corpus[j])
                   for i in range(0, 50) for j in range(i + 1, 50))
        assert best >= 0.7

    def test_stream_is_lazy_and_matches_generate(self):
        profile = get_profile("tweets", num_vectors=40)
        eager = SyntheticCorpusGenerator(profile, seed=6).generate()
        lazy = list(SyntheticCorpusGenerator(profile, seed=6).stream())
        assert eager == lazy

    def test_start_id_offsets_vector_ids(self):
        profile = get_profile("tweets", num_vectors=10)
        corpus = SyntheticCorpusGenerator(profile, seed=7, start_id=100).generate()
        assert corpus[0].vector_id == 100

    def test_arrival_process_respected(self):
        sequential = generate_profile_corpus("rcv1", num_vectors=30, seed=8)
        gaps = {round(b.timestamp - a.timestamp, 6)
                for a, b in zip(sequential, sequential[1:])}
        assert gaps == {1.0}


class TestDatasetStatistics:
    def test_matches_manual_computation(self):
        corpus = generate_profile_corpus("tweets", num_vectors=100, seed=11)
        stats = dataset_statistics(corpus, name="tweets", timestamp_type="bursty")
        assert stats.num_vectors == 100
        assert stats.total_nonzeros == sum(len(vector) for vector in corpus)
        assert stats.avg_nonzeros == pytest.approx(stats.total_nonzeros / 100)
        dims = set()
        for vector in corpus:
            dims.update(vector.dims)
        assert stats.num_dimensions == len(dims)
        assert stats.density == pytest.approx(
            stats.total_nonzeros / (stats.num_vectors * stats.num_dimensions)
        )

    def test_empty_collection(self):
        stats = dataset_statistics([], name="empty")
        assert stats.num_vectors == 0
        assert stats.density == 0.0

    def test_as_row_keys(self):
        stats = dataset_statistics(generate_profile_corpus("rcv1", num_vectors=10, seed=1))
        row = stats.as_row()
        assert {"dataset", "n", "m", "nnz", "density_pct", "avg_nnz", "timestamps"} <= set(row)
