"""Integration tests: every algorithm produces the exact answer.

The central correctness claim of the paper (Appendix A) is that neither
framework produces false positives or false negatives.  These tests compare
every framework/index combination against the brute-force oracle on
realistic synthetic corpora generated from the paper-shaped profiles.

The oracle itself comes from the shared :mod:`tests.groundtruth` harness:
the ``tweets_truth`` / ``rcv1_truth`` fixtures memoise the O(n²) pair
sets session-wide, so each (θ, λ) setting is brute-forced once no matter
how many algorithm parametrisations compare against it.
"""

from __future__ import annotations

import pytest

from repro import create_join, sliding_window_join
from tests.conftest import accelerated_backends

ALGORITHMS = ["STR-INV", "STR-L2AP", "STR-L2", "MB-INV", "MB-L2AP", "MB-L2"]

# The INV schemes have no prefix filtering, so the MB variant re-tests
# every cross-window combination — by far the heaviest cells of the
# matrix.  The cheaper STR-INV row keeps the oracle honest for the
# unfiltered scheme in the default (tier-1) run.
_HEAVY = {"MB-INV"}

ALGORITHM_PARAMS = [
    pytest.param(algorithm, marks=pytest.mark.slow)
    if algorithm in _HEAVY else algorithm
    for algorithm in ALGORITHMS
]


class TestTweetsProfile:
    @pytest.mark.parametrize("algorithm", ALGORITHM_PARAMS)
    def test_matches_oracle(self, tweets_corpus, tweets_truth, algorithm):
        threshold, decay = 0.6, 0.05
        expected = tweets_truth.keys(threshold, decay)
        join = create_join(algorithm, threshold, decay)
        got = {pair.key for pair in join.run(tweets_corpus)}
        assert got == expected

    @pytest.mark.parametrize("threshold,decay", [(0.5, 0.01), (0.7, 0.1), (0.9, 0.001)])
    def test_str_l2_across_parameters(self, tweets_corpus, tweets_truth,
                                      threshold, decay):
        expected = tweets_truth.keys(threshold, decay)
        join = create_join("STR-L2", threshold, decay)
        assert {pair.key for pair in join.run(tweets_corpus)} == expected


class TestRCV1Profile:
    @pytest.mark.parametrize("algorithm", ALGORITHM_PARAMS)
    def test_matches_oracle(self, rcv1_corpus, rcv1_truth, algorithm):
        threshold, decay = 0.7, 0.02
        expected = rcv1_truth.keys(threshold, decay)
        join = create_join(algorithm, threshold, decay)
        got = {pair.key for pair in join.run(rcv1_corpus)}
        assert got == expected


class TestBackendOracle:
    """The no-false-positive/negative claim, per explicit backend.

    The classes above run the default backend (so the reference-backend
    CI job re-checks them under ``SSSJ_BACKEND=python``); this one names
    each accelerated backend explicitly, pinning the compiled tier
    against the memoised oracle wherever numba is installed.
    """

    @pytest.mark.parametrize("backend", accelerated_backends())
    @pytest.mark.parametrize("algorithm", ["STR-INV", "STR-L2AP", "STR-L2"])
    def test_matches_oracle(self, tweets_corpus, tweets_truth, algorithm,
                            backend):
        threshold, decay = 0.6, 0.05
        expected = tweets_truth.keys(threshold, decay)
        join = create_join(algorithm, threshold, decay, backend=backend)
        got = {pair.key for pair in join.run(tweets_corpus)}
        assert got == expected


class TestCrossAlgorithmAgreement:
    def test_all_algorithms_agree_with_each_other(self, tweets_corpus):
        threshold, decay = 0.65, 0.02
        results = {}
        for algorithm in ALGORITHMS:
            join = create_join(algorithm, threshold, decay)
            results[algorithm] = {pair.key for pair in join.run(tweets_corpus)}
        reference = results[ALGORITHMS[0]]
        for algorithm, keys in results.items():
            assert keys == reference, f"{algorithm} disagrees with {ALGORITHMS[0]}"

    def test_sliding_window_baseline_agrees(self, tweets_corpus, tweets_truth):
        threshold, decay = 0.65, 0.02
        expected = tweets_truth.keys(threshold, decay)
        got = {pair.key for pair in sliding_window_join(tweets_corpus, threshold, decay)}
        assert got == expected


class TestNoFalsePositives:
    @pytest.mark.parametrize("algorithm", ALGORITHM_PARAMS)
    def test_every_reported_pair_is_above_threshold(self, tweets_corpus, algorithm):
        threshold, decay = 0.6, 0.05
        by_id = {vector.vector_id: vector for vector in tweets_corpus}
        join = create_join(algorithm, threshold, decay)
        import math

        for pair in join.run(tweets_corpus):
            x, y = by_id[pair.id_a], by_id[pair.id_b]
            true_similarity = x.dot(y) * math.exp(-decay * abs(x.timestamp - y.timestamp))
            assert true_similarity >= threshold - 1e-9
            assert pair.similarity == pytest.approx(true_similarity)


class TestNoDuplicates:
    @pytest.mark.parametrize("algorithm", ALGORITHM_PARAMS)
    def test_each_pair_reported_once(self, tweets_corpus, algorithm):
        join = create_join(algorithm, 0.6, 0.05)
        pairs = [pair.key for pair in join.run(tweets_corpus)]
        assert len(pairs) == len(set(pairs))
