"""Robustness tests on adversarial / non-stationary workloads."""

from __future__ import annotations

import pytest

from repro.baselines.brute_force import brute_force_time_dependent
from repro.core.join import create_join
from repro.datasets.drift import (
    duplicate_storm_stream,
    growing_scale_stream,
    vocabulary_drift_stream,
)
from repro.exceptions import InvalidParameterError

ALGORITHMS = ["STR-INV", "STR-L2", "STR-L2AP", "MB-L2"]


class TestGenerators:
    def test_growing_scale_properties(self):
        stream = list(growing_scale_stream(50, seed=1))
        assert len(stream) == 50
        assert all(vector.is_normalized() for vector in stream)
        assert [v.vector_id for v in stream] == list(range(50))

    def test_growing_scale_rejects_negative_growth(self):
        with pytest.raises(InvalidParameterError):
            list(growing_scale_stream(5, growth=-0.1))

    def test_vocabulary_drift_moves_the_active_window(self):
        stream = list(vocabulary_drift_stream(100, active_terms=20, drift_every=10, seed=2))
        early_dims = set()
        late_dims = set()
        for vector in stream[:10]:
            early_dims.update(vector.dims)
        for vector in stream[-10:]:
            late_dims.update(vector.dims)
        # The active vocabulary at the end is shifted w.r.t. the beginning.
        assert max(late_dims) > max(early_dims)

    def test_vocabulary_drift_validation(self):
        with pytest.raises(InvalidParameterError):
            list(vocabulary_drift_stream(5, drift_every=0))

    def test_duplicate_storm_creates_many_pairs_inside_the_storm(self):
        stream = list(duplicate_storm_stream(60, storm_start=20, storm_length=15, seed=3))
        join = create_join("STR-L2", 0.8, 0.01)
        pairs = join.run_to_list(stream)
        storm_ids = set(range(20, 35))
        storm_pairs = [p for p in pairs if p.id_a in storm_ids and p.id_b in storm_ids]
        assert len(storm_pairs) >= 15 * 14 // 4   # a large fraction of the storm pairs

    def test_duplicate_storm_validation(self):
        with pytest.raises(InvalidParameterError):
            list(duplicate_storm_stream(10, storm_start=-1, storm_length=2))


class TestCorrectnessUnderDrift:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_growing_scale_stream_is_exact(self, algorithm):
        stream = list(growing_scale_stream(80, growth=0.05, seed=11))
        threshold, decay = 0.6, 0.05
        expected = {p.key for p in brute_force_time_dependent(stream, threshold, decay)}
        got = {p.key for p in create_join(algorithm, threshold, decay).run(stream)}
        assert got == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_vocabulary_drift_stream_is_exact(self, algorithm):
        stream = list(vocabulary_drift_stream(90, seed=13))
        threshold, decay = 0.6, 0.05
        expected = {p.key for p in brute_force_time_dependent(stream, threshold, decay)}
        got = {p.key for p in create_join(algorithm, threshold, decay).run(stream)}
        assert got == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_duplicate_storm_is_exact(self, algorithm):
        stream = list(duplicate_storm_stream(70, storm_start=25, storm_length=12, seed=17))
        threshold, decay = 0.7, 0.02
        expected = {p.key for p in brute_force_time_dependent(stream, threshold, decay)}
        got = {p.key for p in create_join(algorithm, threshold, decay).run(stream)}
        assert got == expected

    def test_growing_scale_forces_reindexing_in_l2ap_but_not_l2(self):
        stream = list(growing_scale_stream(120, growth=0.05, seed=19))
        l2ap = create_join("STR-L2AP", 0.7, 0.05)
        l2 = create_join("STR-L2", 0.7, 0.05)
        l2ap.run_to_list(stream)
        l2.run_to_list(stream)
        assert l2ap.stats.reindexings > 0
        assert l2.stats.reindexings == 0

    def test_index_stays_bounded_under_vocabulary_drift(self):
        stream = list(vocabulary_drift_stream(300, seed=23))
        join = create_join("STR-L2", 0.6, 0.2)   # short horizon
        join.run_to_list(stream)
        # The index holds only postings within the horizon, not the whole stream.
        assert join.index_size < sum(len(v) for v in stream) / 3
