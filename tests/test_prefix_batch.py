"""Unit tests for the batch prefix-filtering indexes (AP, L2AP, L2)."""

from __future__ import annotations

import pytest

from repro.baselines.brute_force import brute_force_all_pairs
from repro.core.results import JoinStatistics
from repro.core.vector import SparseVector
from repro.indexes.allpairs import APBatchIndex
from repro.indexes.inverted import InvertedBatchIndex
from repro.indexes.l2 import L2BatchIndex
from repro.indexes.l2ap import L2APBatchIndex
from repro.indexes.maxvector import MaxVector
from tests.conftest import random_vectors

BATCH_CLASSES = [APBatchIndex, L2APBatchIndex, L2BatchIndex]


def vec(vector_id: int, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, 0.0, entries)


def build(cls, threshold: float, dataset):
    max_vector = MaxVector.from_vectors(dataset) if cls.use_ap else None
    if cls.use_ap:
        return cls(threshold, max_vector=max_vector)
    return cls(threshold)


class TestIndexSizes:
    @pytest.mark.parametrize("cls", BATCH_CLASSES)
    def test_prefix_indexes_store_fewer_postings_than_inv(self, cls):
        dataset = random_vectors(60, seed=5)
        threshold = 0.8
        inv = InvertedBatchIndex(threshold)
        inv.index_dataset(dataset)
        pruned = build(cls, threshold, dataset)
        pruned.index_dataset(dataset)
        assert pruned.size <= inv.size

    def test_l2ap_index_is_no_larger_than_ap_or_l2(self):
        dataset = random_vectors(60, seed=6)
        threshold = 0.8
        sizes = {}
        for cls in BATCH_CLASSES:
            index = build(cls, threshold, dataset)
            index.index_dataset(dataset)
            sizes[cls.name] = index.size
        assert sizes["L2AP"] <= sizes["AP"]
        assert sizes["L2AP"] <= sizes["L2"]

    @pytest.mark.parametrize("cls", BATCH_CLASSES)
    def test_higher_threshold_means_smaller_index(self, cls):
        dataset = random_vectors(60, seed=7)
        low = build(cls, 0.5, dataset)
        low.index_dataset(dataset)
        high = build(cls, 0.95, dataset)
        high.index_dataset(dataset)
        assert high.size <= low.size


class TestCorrectness:
    @pytest.mark.parametrize("cls", BATCH_CLASSES)
    @pytest.mark.parametrize("threshold", [0.5, 0.7, 0.9])
    def test_matches_brute_force(self, cls, threshold):
        dataset = random_vectors(70, seed=11)
        expected = {pair.key for pair in brute_force_all_pairs(dataset, threshold)}
        index = build(cls, threshold, dataset)
        got = set()
        for x, y, score in index.index_dataset(dataset):
            assert score >= threshold
            got.add((min(x.vector_id, y.vector_id), max(x.vector_id, y.vector_id)))
        assert got == expected

    @pytest.mark.parametrize("cls", BATCH_CLASSES)
    def test_reported_scores_are_exact(self, cls):
        dataset = random_vectors(40, seed=13)
        index = build(cls, 0.6, dataset)
        by_id = {vector.vector_id: vector for vector in dataset}
        for x, y, score in index.index_dataset(dataset):
            assert score == pytest.approx(by_id[x.vector_id].dot(by_id[y.vector_id]))

    @pytest.mark.parametrize("cls", BATCH_CLASSES)
    def test_query_does_not_modify_index(self, cls):
        dataset = random_vectors(30, seed=17)
        index = build(cls, 0.6, dataset)
        index.index_dataset(dataset)
        size_before = index.size
        index.query(dataset[0])
        assert index.size == size_before

    def test_duplicate_vectors_are_found(self):
        a = vec(1, {1: 1.0, 2: 2.0, 3: 1.0})
        b = vec(2, {1: 1.0, 2: 2.0, 3: 1.0})
        for cls in BATCH_CLASSES:
            index = build(cls, 0.99, [a, b])
            pairs = index.index_dataset([a, b])
            assert [(p[0].vector_id, p[1].vector_id) for p in pairs] == [(2, 1)]


class TestStatistics:
    def test_l2ap_generates_no_more_candidates_than_inv(self):
        dataset = random_vectors(80, seed=19)
        threshold = 0.7
        inv_stats = JoinStatistics()
        InvertedBatchIndex(threshold, stats=inv_stats).index_dataset(dataset)
        l2ap_stats = JoinStatistics()
        L2APBatchIndex(threshold, stats=l2ap_stats,
                       max_vector=MaxVector.from_vectors(dataset)).index_dataset(dataset)
        assert l2ap_stats.candidates_generated <= inv_stats.candidates_generated
        assert l2ap_stats.entries_traversed <= inv_stats.entries_traversed

    def test_residual_counter_grows_for_prefix_indexes(self):
        dataset = random_vectors(50, seed=23)
        stats = JoinStatistics()
        index = L2BatchIndex(0.9, stats=stats)
        index.index_dataset(dataset)
        assert stats.residual_entries > 0
        assert index.residual_size > 0
