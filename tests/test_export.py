"""Tests for the CSV/JSON/Markdown exporters of the benchmark harness."""

from __future__ import annotations

import csv
import json

from repro.bench.experiments import ExperimentResult
from repro.bench.export import (
    experiment_to_markdown,
    metrics_to_csv,
    rows_to_csv,
    rows_to_json,
    write_markdown_report,
)
from repro.bench.metrics import RunMetrics

ROWS = [
    {"dataset": "rcv1", "theta": 0.5, "time_s": 1.25},
    {"dataset": "rcv1", "theta": 0.9, "time_s": 0.5, "extra": "note"},
]


class TestCsvAndJson:
    def test_rows_to_csv_round_trip(self, tmp_path):
        path = tmp_path / "rows.csv"
        assert rows_to_csv(ROWS, path) == 2
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["dataset"] == "rcv1"
        assert rows[1]["extra"] == "note"
        assert rows[0]["extra"] == ""          # union of columns

    def test_rows_to_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert rows_to_csv([], path) == 0
        assert path.read_text() == ""

    def test_rows_to_json(self, tmp_path):
        path = tmp_path / "rows.json"
        assert rows_to_json(ROWS, path) == 2
        payload = json.loads(path.read_text())
        assert payload[0]["theta"] == 0.5

    def test_metrics_to_csv(self, tmp_path):
        metrics = [RunMetrics(algorithm="STR-L2", dataset="rcv1", threshold=0.5,
                              decay=0.01, num_vectors=10, elapsed_seconds=0.5, pairs=3)]
        path = tmp_path / "metrics.csv"
        assert metrics_to_csv(metrics, path) == 1
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["algorithm"] == "STR-L2"
        assert rows[0]["pairs"] == "3"


class TestMarkdown:
    RESULT = ExperimentResult(
        experiment_id="figure5",
        title="STR by index",
        rows=ROWS,
        notes="L2 wins.",
    )

    def test_experiment_to_markdown(self):
        text = experiment_to_markdown(self.RESULT)
        assert "### figure5: STR by index" in text
        assert "L2 wins." in text
        assert "| dataset | theta | time_s |" in text

    def test_row_truncation(self):
        text = experiment_to_markdown(self.RESULT, max_rows=1)
        assert "more rows omitted" in text

    def test_empty_rows(self):
        empty = ExperimentResult(experiment_id="x", title="y", rows=[])
        assert "_(no rows)_" in experiment_to_markdown(empty)

    def test_write_markdown_report(self, tmp_path):
        path = write_markdown_report([self.RESULT, self.RESULT], tmp_path / "report.md",
                                     title="Demo report")
        content = path.read_text()
        assert content.startswith("# Demo report")
        assert content.count("### figure5") == 2
