"""Tests for the unified observability layer (repro.obs).

Four contracts are pinned here:

* **Registry correctness** — counters never lose concurrent increments
  (per-thread cells summed under the lock), label explosions collapse
  into the ``overflow`` series instead of growing memory, and the
  Prometheus rendering is byte-stable (golden test).
* **Deterministic sampling** — a fixed tracer seed reproduces the exact
  same sampled span subset run over run, and span nesting records
  parent ids correctly.
* **Zero interference** — pair output and operation counters of an
  engine run are bitwise identical with observability (and full-rate
  tracing) on or off; hypothesis drives the corpus.
* **Surface plumbing** — the ``metrics`` protocol op, the evicted-at
  timestamp on placeholder stats, the ``LatencyStats`` tiny-window
  interpolation, and the ``sssj top`` renderer.
"""

from __future__ import annotations

import io
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.bench.metrics import LatencyStats
from repro.obs import (
    Counter,
    DeltaTracker,
    MetricsRegistry,
    Tracer,
    render_prometheus,
)
from repro.obs.top import TopView
from repro.service.protocol import encode_vector
from tests.conftest import random_vectors
from tests.groundtruth import counters_without_time, engine_pairs

THETA, DECAY = 0.6, 0.05


@pytest.fixture
def registry():
    """A fresh process registry, restored afterwards."""
    fresh = MetricsRegistry()
    previous = obs.set_registry(fresh)
    yield fresh
    obs.set_registry(previous)


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("sssj_t_total", "T.", ("k",))
        counter.labels(k="a").inc()
        counter.labels(k="a").inc(2.5)
        assert counter.labels(k="a").value() == 3.5
        assert registry.get_value("sssj_t_total", k="a") == 3.5
        assert registry.get_value("sssj_t_total", k="missing") == 0.0
        gauge = registry.gauge("sssj_g").labels()
        gauge.set(7)
        gauge.dec(2)
        assert gauge.value() == 5
        histogram = registry.histogram(
            "sssj_h_seconds", buckets=(0.1, 1.0), window=8).labels()
        for value in (0.05, 0.5, 2.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"] == [(0.1, 1), (1.0, 2)]
        assert snap["window_dropped"] == 0

    def test_counter_rejects_negative_and_set_total_is_monotone(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)
        counter.set_total(10)
        counter.set_total(4)  # lower total never winds the counter back
        assert counter.value() == 10

    def test_kind_and_labelname_conflicts_fail_loudly(self):
        registry = MetricsRegistry()
        registry.counter("sssj_x_total", "X.", ("a",))
        with pytest.raises(ValueError, match="already registered as"):
            registry.gauge("sssj_x_total")
        with pytest.raises(ValueError, match="labels"):
            registry.counter("sssj_x_total", "X.", ("b",))
        with pytest.raises(ValueError, match="expects labels"):
            registry.counter("sssj_x_total", "X.", ("a",)).labels(wrong="v")

    def test_label_explosion_collapses_into_overflow_series(self):
        registry = MetricsRegistry(max_series_per_metric=4)
        family = registry.counter("sssj_churn_total", "Churn.", ("session",))
        for index in range(10):
            family.labels(session=f"s{index}").inc()
        # 4 real children + 1 overflow child, never 10.
        assert len(family) == 5
        assert family.dropped == 6
        # The six overflowed increments all landed on the overflow child.
        assert registry.get_value("sssj_churn_total",
                                  session=obs.OVERFLOW_LABEL) == 6
        text = render_prometheus(registry)
        assert 'session="overflow"' in text
        assert ('sssj_obs_series_dropped_total{metric="sssj_churn_total"} 6'
                in text)

    def test_collector_runs_at_scrape_and_dies_with_owner(self):
        registry = MetricsRegistry()

        class Subsystem:
            calls = 0

        subsystem = Subsystem()

        def collect(owner):
            owner.calls += 1
            registry.gauge("sssj_sub").labels().set(owner.calls)

        registry.add_collector(collect, owner=subsystem)
        assert subsystem.calls == 0  # nothing until someone scrapes
        registry.families()
        registry.families()
        assert subsystem.calls == 2
        del subsystem
        registry.families()  # dead weakref is pruned, not an error
        assert registry.collector_errors == 0

    def test_broken_collector_never_breaks_the_scrape(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda: 1 / 0)
        registry.gauge("sssj_ok").labels().set(1)
        text = render_prometheus(registry)
        assert "sssj_ok 1" in text
        assert registry.collector_errors == 1

    def test_delta_tracker_increments_and_handles_resets(self):
        child = Counter()
        tracker = DeltaTracker()
        tracker.export(child, "k", 10)
        tracker.export(child, "k", 25)
        assert child.value() == 25
        # Reset (fresh instance reusing the key): new epoch counts whole.
        tracker.export(child, "k", 5)
        assert child.value() == 30

    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    @given(per_thread=st.integers(min_value=1, max_value=400),
           threads=st.integers(min_value=2, max_value=6))
    def test_concurrent_increments_survive_flush_under_read(self, per_thread,
                                                            threads):
        """Readers summing the cells mid-flight never lose an increment."""
        counter = Counter()
        stop = threading.Event()
        observed = []

        def reader():
            while not stop.is_set():
                observed.append(counter.value())

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()

        def writer():
            for _ in range(per_thread):
                counter.inc()

        workers = [threading.Thread(target=writer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        reader_thread.join()
        assert counter.value() == per_thread * threads
        # Interleaved reads are monotone prefixes, never over the total.
        assert all(0 <= value <= per_thread * threads for value in observed)


# ---------------------------------------------------------------------------
# prometheus rendering


def test_prometheus_golden_format():
    registry = MetricsRegistry()
    registry.counter("sssj_pairs_total", "Pairs.",
                     ("tenant",)).labels(tenant="acme").inc(3)
    registry.gauge("sssj_queue_depth", "Depth.").labels().set(2)
    histogram = registry.histogram("sssj_wait_seconds", "Wait.",
                                   buckets=(0.1, 1.0))
    histogram.labels().observe(0.25)
    histogram.labels().observe(0.5)
    assert render_prometheus(registry) == (
        "# HELP sssj_pairs_total Pairs.\n"
        "# TYPE sssj_pairs_total counter\n"
        'sssj_pairs_total{tenant="acme"} 3\n'
        "# HELP sssj_queue_depth Depth.\n"
        "# TYPE sssj_queue_depth gauge\n"
        "sssj_queue_depth 2\n"
        "# HELP sssj_wait_seconds Wait.\n"
        "# TYPE sssj_wait_seconds histogram\n"
        'sssj_wait_seconds_bucket{le="0.1"} 0\n'
        'sssj_wait_seconds_bucket{le="1"} 2\n'
        'sssj_wait_seconds_bucket{le="+Inf"} 2\n'
        "sssj_wait_seconds_sum 0.75\n"
        "sssj_wait_seconds_count 2\n"
    )


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("sssj_esc_total", "E.",
                     ("name",)).labels(name='we"ird\\x\n').inc()
    text = render_prometheus(registry)
    assert r'name="we\"ird\\x\n"' in text


# ---------------------------------------------------------------------------
# tracing


def _sampled_markers(seed: int, sample: float = 0.4, spans: int = 300):
    records = []
    tracer = Tracer(sample=sample, seed=seed, sink=records.append)
    for index in range(spans):
        with tracer.span("work", marker=index):
            pass
    return [record["marker"] for record in records]


class TestTracing:
    def test_sampling_is_deterministic_per_seed(self):
        first = _sampled_markers(seed=42)
        second = _sampled_markers(seed=42)
        assert first == second
        assert 0 < len(first) < 300  # it actually samples
        assert _sampled_markers(seed=7) != first

    def test_span_nesting_records_parents(self):
        records = []
        tracer = Tracer(sample=1.0, sink=records.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = records  # inner closes (and emits) first
        assert inner["span"] == "inner" and outer["span"] == "outer"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None

    def test_slow_spans_emit_even_when_unsampled(self):
        records = []
        tracer = Tracer(sample=0.0, slow_ms=0.0, sink=records.append)
        with tracer.span("batch", session="s"):
            pass
        assert len(records) == 1
        assert records[0]["slow"] is True and records[0]["session"] == "s"
        assert tracer.slow_spans == 1

    def test_inactive_tracer_returns_the_shared_null_span(self):
        tracer = Tracer(sample=1.0)  # no sink, no slow_ms → inert
        assert tracer.span("x") is obs.NULL_SPAN
        assert obs.NULL_SPAN.note(anything=1) is obs.NULL_SPAN

    def test_span_records_exception_and_sink_errors_are_swallowed(self):
        records = []
        tracer = Tracer(sample=1.0, sink=records.append)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert records[0]["error"] == "RuntimeError"

        def broken_sink(record):
            raise OSError("disk full")

        tracer = Tracer(sample=1.0, sink=broken_sink)
        with tracer.span("fine"):
            pass  # the traced operation must survive the sink failure


# ---------------------------------------------------------------------------
# zero interference with the engine


@settings(deadline=None, max_examples=8,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16),
       count=st.integers(min_value=10, max_value=60))
def test_pairs_and_counters_bitwise_identical_obs_on_off(seed, count):
    vectors = random_vectors(count, seed=seed)

    def run_with_obs(flag: bool):
        previous_registry = obs.set_registry(MetricsRegistry())
        previous_tracer = obs.set_tracer(
            Tracer(sample=1.0, sink=lambda record: None))
        was_enabled = obs.enabled()
        obs.set_enabled(flag)
        try:
            return engine_pairs(vectors, THETA, DECAY)
        finally:
            obs.set_enabled(was_enabled)
            obs.set_registry(previous_registry)
            obs.set_tracer(previous_tracer)

    pairs_on, stats_on = run_with_obs(True)
    pairs_off, stats_off = run_with_obs(False)
    assert pairs_on == pairs_off
    assert counters_without_time(stats_on.as_dict()) == \
        counters_without_time(stats_off.as_dict())


# ---------------------------------------------------------------------------
# service surface


def _wait_until(predicate, timeout: float = 10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached within the deadline")


class TestServiceSurface:
    def test_metrics_op_returns_prometheus_text(self, registry):
        from repro.service.server import JoinService

        service = JoinService()
        try:
            response = service.handle({"op": "metrics"})
            assert response["ok"]
            assert response["content_type"].startswith("text/plain")
            assert "sssj_server_sessions" in response["metrics"]
            assert 'sssj_server_requests_total{op="metrics"} 1' \
                in response["metrics"]  # the op counts itself
        finally:
            service.shutdown()

    def test_scheduler_scrape_has_queue_depth_and_tenant_series(
            self, registry):
        from repro.service import SchedulerService

        service = SchedulerService(pool_workers=2)
        try:
            vectors = random_vectors(30, seed=3)
            assert service.handle(
                {"op": "open", "session": "s1", "theta": THETA,
                 "decay": DECAY, "tenant": "acme",
                 "checkpoint": False})["ok"]
            assert service.handle(
                {"op": "ingest", "session": "s1", "seq": 0,
                 "vectors": [encode_vector(v) for v in vectors]})["ok"]
            _wait_until(lambda: service.sessions["s1"].processed == 30)
            text = service.handle({"op": "metrics"})["metrics"]
            assert 'sssj_engine_vectors_processed_total{session="s1",' \
                   'tenant="acme",backend=' in text
            assert 'sssj_tenant_ingested_vectors_total{tenant="acme"} 30' \
                in text
            assert "sssj_pool_workers 2" in text
            assert "sssj_scheduler_dispatch_wait_seconds_bucket" in text
            assert 'sssj_session_queue_depth{session="s1",tenant="acme"} 0' \
                in text
        finally:
            service.shutdown()

    def test_evicted_stats_carry_last_counters_and_evicted_at(
            self, registry, tmp_path):
        from repro.service import SchedulerService

        service = SchedulerService(pool_workers=1, checkpoint_dir=tmp_path)
        try:
            vectors = random_vectors(20, seed=5)
            assert service.handle(
                {"op": "open", "session": "e", "theta": THETA,
                 "decay": DECAY})["ok"]
            assert service.handle(
                {"op": "ingest", "session": "e", "seq": 0,
                 "vectors": [encode_vector(v) for v in vectors]})["ok"]
            _wait_until(lambda: service.sessions["e"].processed == 20
                        and service.sessions["e"].run_state == "idle")
            before = time.time()
            assert service.handle({"op": "evict", "session": "e"})["ok"]
            payload = service.handle(
                {"op": "stats", "session": "e"})["sessions"]["e"]
            assert payload["status"] == "evicted"
            assert payload["counters"]["vectors_processed"] == 20
            assert before - 1.0 <= payload["evicted_at"] <= time.time() + 1.0
            # Live sessions report no eviction timestamp.
            assert service.handle(
                {"op": "open", "session": "live", "theta": THETA,
                 "decay": DECAY, "checkpoint": False})["ok"]
            live = service.handle(
                {"op": "stats", "session": "live"})["sessions"]["live"]
            assert live["evicted_at"] is None
            # The scrape still shows the evicted session's last counters.
            text = service.handle({"op": "metrics"})["metrics"]
            assert 'sssj_engine_vectors_processed_total{session="e"' in text
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# LatencyStats satellite


class TestLatencyStats:
    def test_tiny_windows_interpolate_instead_of_nearest_rank(self):
        stats = LatencyStats()
        stats.record(0.010)
        assert stats.percentile(50) == pytest.approx(0.010)
        stats.record(0.030)
        # Nearest-rank would answer 0.010 for every percentile; the
        # interpolated p50 of two samples is their midpoint.
        assert stats.percentile(50) == pytest.approx(0.020)
        assert stats.percentile(100) == pytest.approx(0.030)
        stats.record(0.020)  # n = 3 → nearest-rank again
        assert stats.percentile(50) == pytest.approx(0.020)

    def test_window_is_configurable_and_drops_are_counted(self):
        stats = LatencyStats(window=4)
        for value in (1, 2, 3, 4, 5, 6):
            stats.record(float(value))
        assert len(stats) == 4
        assert stats.count == 6
        assert stats.window_dropped == 2
        summary = stats.summary()
        assert summary["window_dropped"] == 2
        assert summary["max_ms"] == 6000.0
        with pytest.raises(ValueError):
            LatencyStats(window=0)

    def test_session_config_latency_window_is_plumbed(self):
        from repro.service.session import JoinSession, SessionConfig

        config = SessionConfig(name="w", threshold=THETA, decay=DECAY,
                               latency_window=128)
        session = JoinSession(config)
        try:
            assert session.latency.window == 128
        finally:
            session.close()
        from repro.service.session import SessionError

        with pytest.raises(SessionError):
            SessionConfig(name="w", threshold=THETA, decay=DECAY,
                          latency_window=0)


# ---------------------------------------------------------------------------
# sssj top


def test_top_view_renders_rates_and_tenant_rows():
    view = TopView()
    payload = {
        "server": {"uptime_s": 12.0, "sessions": 2, "requests_handled": 9},
        "scheduler": {
            "pool": {"workers": 2, "quanta_run": 4, "vectors_processed": 100},
            "ready": {"ready_sessions": 1, "tenants_in_rotation": 1,
                      "deficit": {"acme": -12.5}},
            "evictions": 1, "restores": 0,
        },
        "tenants": {"acme": {"sessions": 2, "admitted": 100,
                             "rejected": {"rate": 3}}},
        "sessions": {
            "s1": {"tenant": "acme", "status": "active", "queued": 5,
                   "processed": 50, "pairs_emitted": 7,
                   "latency": {"p99_ms": 1.25}, "evicted_at": None},
        },
    }
    first = view.render(payload, now=100.0)
    assert "sssj top" in first and "requests 9" in first
    assert "acme" in first and "-12.5" in first
    assert "s1" in first
    # First frame has no rate yet.
    assert any("-" in line for line in first.splitlines() if "s1" in line)
    payload["sessions"]["s1"]["processed"] = 150
    second = view.render(payload, now=110.0)
    row = [line for line in second.splitlines() if line.startswith("s1")][0]
    assert "10.0" in row  # (150-50)/10s

    evicted = {
        "server": {}, "sessions": {
            "old": {"tenant": "t", "status": "evicted", "queued": 0,
                    "processed": 10, "pairs_emitted": 0,
                    "latency": {}, "evicted_at": 123.0}}}
    frame = TopView().render(evicted)
    assert "evicted" in frame


def test_run_top_iterations_with_injected_fetch():
    from repro.obs.top import run_top

    frames = io.StringIO()
    calls = []

    def fetch():
        calls.append(1)
        return {"server": {"uptime_s": 1, "sessions": 0,
                           "requests_handled": len(calls)},
                "sessions": {}}

    assert run_top("h", 0, interval=0.0, iterations=3, out=frames,
                   clear=False, fetch=fetch) == 0
    assert len(calls) == 3
    assert frames.getvalue().count("sssj top") == 3
