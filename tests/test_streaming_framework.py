"""Tests for the Streaming (STR) framework."""

from __future__ import annotations

import math

import pytest

from repro.baselines.brute_force import brute_force_time_dependent
from repro.core.frameworks.streaming import StreamingFramework
from repro.core.similarity import time_horizon
from repro.core.vector import SparseVector
from repro.exceptions import UnknownAlgorithmError
from tests.conftest import random_vectors


def vec(vector_id: int, t: float, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, t, entries)


class TestBasics:
    def test_algorithm_name(self):
        assert StreamingFramework(0.7, 0.1, index="l2ap").algorithm == "STR-L2AP"

    def test_unknown_index_rejected(self):
        with pytest.raises(UnknownAlgorithmError):
            StreamingFramework(0.7, 0.1, index="BOGUS")

    def test_horizon_property(self):
        framework = StreamingFramework(0.7, 0.1)
        assert framework.horizon == pytest.approx(time_horizon(0.7, 0.1))

    def test_flush_is_empty(self):
        framework = StreamingFramework(0.7, 0.1)
        framework.process(vec(1, 0.0, {1: 1.0}))
        assert framework.flush() == []

    def test_index_size_exposed(self):
        framework = StreamingFramework(0.7, 0.1)
        framework.process(vec(1, 0.0, {1: 1.0, 2: 1.0}))
        assert framework.index_size >= 1


class TestReporting:
    def test_pairs_reported_immediately(self):
        framework = StreamingFramework(0.7, 0.1)
        assert framework.process(vec(1, 0.0, {1: 1.0})) == []
        pairs = framework.process(vec(2, 1.0, {1: 1.0}))
        assert [pair.key for pair in pairs] == [(1, 2)]
        assert pairs[0].reported_at == pytest.approx(1.0)

    def test_no_reporting_delay(self):
        framework = StreamingFramework(0.6, 0.05)
        vectors = random_vectors(50, seed=81)
        by_id = {vector.vector_id: vector for vector in vectors}
        for pair in framework.run(vectors):
            later = max(by_id[pair.id_a].timestamp, by_id[pair.id_b].timestamp)
            assert pair.reported_at == pytest.approx(later)

    def test_similarity_value(self):
        framework = StreamingFramework(0.5, 0.2)
        framework.process(vec(1, 0.0, {1: 1.0, 2: 1.0}))
        pairs = framework.process(vec(2, 1.0, {1: 1.0, 2: 1.0}))
        assert pairs[0].similarity == pytest.approx(math.exp(-0.2))


class TestRunDriver:
    def test_run_to_list(self):
        framework = StreamingFramework(0.7, 0.1)
        pairs = framework.run_to_list([
            vec(1, 0.0, {1: 1.0}), vec(2, 0.5, {1: 1.0}), vec(3, 1.0, {9: 1.0}),
        ])
        assert {pair.key for pair in pairs} == {(1, 2)}

    def test_stats_accumulate_across_run(self):
        framework = StreamingFramework(0.6, 0.05)
        framework.run_to_list(random_vectors(40, seed=83))
        assert framework.stats.vectors_processed == 40
        assert framework.stats.entries_indexed > 0


class TestCorrectness:
    @pytest.mark.parametrize("index", ["INV", "L2AP", "L2", "AP"])
    @pytest.mark.parametrize("threshold,decay", [(0.5, 0.05), (0.8, 0.01)])
    def test_matches_brute_force(self, index, threshold, decay):
        vectors = random_vectors(90, seed=89)
        expected = {p.key for p in brute_force_time_dependent(vectors, threshold, decay)}
        framework = StreamingFramework(threshold, decay, index=index)
        got = {p.key for p in framework.run(vectors)}
        assert got == expected
