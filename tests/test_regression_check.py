"""Unit tests for the benchmark artifact writer and regression checker."""

from __future__ import annotations

import json

from repro.bench.export import BENCH_MICRO_SCHEMA, git_revision, write_bench_micro
from repro.bench.regression import check_regression, main


def record(speedup: float) -> dict:
    return {
        "schema": BENCH_MICRO_SCHEMA,
        "benchmark": "l2ap_streaming_hot_path",
        "derived": {"speedup": speedup},
    }


class TestWriteBenchMicro:
    def test_writes_schema_sha_and_sections(self, tmp_path):
        path = write_bench_micro(
            tmp_path / "BENCH_micro.json",
            benchmark="l2ap_streaming_hot_path",
            config={"profile": "hashtags", "num_vectors": 100},
            backends={"numpy": {"elapsed_s": 1.0, "throughput_vps": 100.0,
                                "stages": {"scan": 0.5}}},
            derived={"speedup": 4.0},
        )
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_MICRO_SCHEMA
        entry = payload["benchmarks"]["l2ap_streaming_hot_path"]
        assert entry["config"]["profile"] == "hashtags"
        assert entry["backends"]["numpy"]["throughput_vps"] == 100.0
        assert entry["backends"]["numpy"]["stages"]["scan"] == 0.5
        assert entry["derived"]["speedup"] == 4.0
        assert isinstance(payload["git_sha"], str) and payload["git_sha"]

    def test_merges_multiple_benchmarks_into_one_artifact(self, tmp_path):
        path = tmp_path / "BENCH_micro.json"
        write_bench_micro(path, benchmark="l2ap_streaming_hot_path",
                          config={"num_vectors": 100}, backends={},
                          derived={"speedup": 4.0})
        write_bench_micro(path, benchmark="inv_streaming_hot_path",
                          config={"num_vectors": 50}, backends={},
                          derived={"speedup": 9.0})
        # Re-writing a benchmark replaces its entry, not the whole file.
        write_bench_micro(path, benchmark="l2ap_streaming_hot_path",
                          config={"num_vectors": 100}, backends={},
                          derived={"speedup": 5.0})
        payload = json.loads(path.read_text())
        assert set(payload["benchmarks"]) == {"l2ap_streaming_hot_path",
                                              "inv_streaming_hot_path"}
        assert payload["benchmarks"]["l2ap_streaming_hot_path"]["derived"]["speedup"] == 5.0
        assert payload["benchmarks"]["inv_streaming_hot_path"]["derived"]["speedup"] == 9.0

    def test_upgrades_schema1_artifact_in_place(self, tmp_path):
        path = tmp_path / "BENCH_micro.json"
        path.write_text(json.dumps({
            "schema": 1, "benchmark": "legacy_gate",
            "derived": {"speedup": 2.0},
        }))
        write_bench_micro(path, benchmark="inv_streaming_hot_path",
                          config={}, backends={}, derived={"speedup": 9.0})
        payload = json.loads(path.read_text())
        assert set(payload["benchmarks"]) == {"legacy_gate",
                                              "inv_streaming_hot_path"}

    def test_git_revision_returns_string(self):
        assert isinstance(git_revision(), str)


class TestCheckRegression:
    def test_no_regression_within_tolerance(self):
        report = check_regression(record(3.6), record(4.0), tolerance=0.2)
        assert not report.regressed
        assert len(report.checks) == 1
        assert "ok" in report.render()

    def test_flags_regression_beyond_tolerance(self):
        report = check_regression(record(3.0), record(4.0), tolerance=0.2)
        assert report.regressed
        assert "REGRESSED" in report.render()

    def test_improvement_is_never_a_regression(self):
        report = check_regression(record(8.0), record(4.0), tolerance=0.2)
        assert not report.regressed

    def test_missing_metric_is_skipped(self):
        report = check_regression({"derived": {}}, record(4.0))
        assert report.checks == []
        assert not report.regressed

    def test_cli_exit_codes(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(json.dumps(record(3.9)))
        baseline.write_text(json.dumps(record(4.0)))
        assert main([str(current), str(baseline)]) == 0
        current.write_text(json.dumps(record(1.0)))
        assert main([str(current), str(baseline)]) == 1
        capsys.readouterr()

    def test_cli_missing_baseline_is_skipped(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(record(3.9)))
        assert main([str(current), str(tmp_path / "absent.json")]) == 0
        assert "skipping" in capsys.readouterr().out

    def test_cli_refuses_mismatched_workloads(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current_record = record(8.0)
        current_record["config"] = {"num_vectors": 10000, "profile": "hashtags"}
        baseline_record = record(2.2)
        baseline_record["config"] = {"num_vectors": 2500, "profile": "hashtags"}
        current.write_text(json.dumps(current_record))
        baseline.write_text(json.dumps(baseline_record))
        assert main([str(current), str(baseline)]) == 2
        assert "config mismatch" in capsys.readouterr().out

    def test_config_subset_comparison_ignores_new_keys(self):
        from repro.bench.regression import config_mismatches

        current = {"config": {"num_vectors": 2500, "new_knob": True}}
        baseline = {"config": {"num_vectors": 2500}}
        assert config_mismatches(current, baseline) == []
