"""Tests for the application layer (trend detection, dedup, top-k monitor)."""

from __future__ import annotations

import pytest

from repro.applications.dedup import DuplicateFilter
from repro.applications.topk import TopKPairsMonitor
from repro.applications.trends import TrendDetector
from repro.core.vector import SparseVector
from repro.datasets.generator import generate_profile_corpus


def vec(vector_id: int, t: float, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, t, entries)


def burst(start_id: int, start_time: float, terms: dict[int, float], count: int,
          spacing: float = 0.2) -> list[SparseVector]:
    """A burst of near-identical posts sharing the same terms."""
    return [vec(start_id + i, start_time + i * spacing, terms) for i in range(count)]


class TestTrendDetector:
    def test_detects_a_burst_of_similar_posts(self):
        detector = TrendDetector(threshold=0.8, decay=0.05, min_size=3)
        stream = burst(0, 0.0, {1: 1.0, 2: 2.0, 3: 1.0}, count=5)
        stream.append(vec(100, 2.0, {50: 1.0}))
        trends = detector.run(sorted(stream, key=lambda v: v.timestamp))
        assert len(trends) == 1
        assert trends[0].size == 5
        assert trends[0].pair_count == 10   # 5 choose 2 mutually similar posts

    def test_unrelated_posts_produce_no_trend(self):
        detector = TrendDetector(threshold=0.8, decay=0.05)
        stream = [vec(i, float(i), {i * 10: 1.0, i * 10 + 1: 0.5}) for i in range(10)]
        assert detector.run(stream) == []

    def test_two_separate_trends(self):
        detector = TrendDetector(threshold=0.8, decay=0.05, min_size=3)
        stream = burst(0, 0.0, {1: 1.0, 2: 2.0}, count=3)
        stream += burst(10, 1.0, {7: 1.0, 8: 2.0, 9: 0.5}, count=4)
        stream.sort(key=lambda vector: vector.timestamp)
        trends = detector.run(stream)
        assert len(trends) == 2
        assert trends[0].size == 4          # biggest first
        assert trends[1].size == 3

    def test_min_size_filters_small_clusters(self):
        detector = TrendDetector(threshold=0.8, decay=0.05, min_size=4)
        stream = burst(0, 0.0, {1: 1.0, 2: 2.0}, count=3)
        assert detector.run(stream) == []

    def test_min_size_validation(self):
        with pytest.raises(ValueError):
            TrendDetector(threshold=0.8, decay=0.05, min_size=1)

    def test_old_trends_expire(self):
        detector = TrendDetector(threshold=0.8, decay=0.5, min_size=2)   # tau ~ 0.45
        for vector in burst(0, 0.0, {1: 1.0, 2: 2.0}, count=3, spacing=0.1):
            detector.process(vector)
        assert len(detector.active_trends()) == 1
        # A much later unrelated post pushes the clock past the horizon.
        detector.process(vec(99, 100.0, {50: 1.0}))
        assert detector.active_trends() == []

    def test_trend_of_lookup(self):
        detector = TrendDetector(threshold=0.8, decay=0.05, min_size=2)
        for vector in burst(0, 0.0, {1: 1.0, 2: 2.0}, count=3):
            detector.process(vector)
        trend = detector.trend_of(0)
        assert trend is not None
        assert 2 in trend.members
        assert detector.trend_of(12345) is None

    def test_duration_and_timestamps(self):
        detector = TrendDetector(threshold=0.8, decay=0.05, min_size=2)
        stream = burst(0, 5.0, {1: 1.0, 2: 2.0}, count=3, spacing=1.0)
        trends = detector.run(stream)
        assert trends[0].first_seen == pytest.approx(5.0)
        assert trends[0].last_seen == pytest.approx(7.0)
        assert trends[0].duration == pytest.approx(2.0)

    def test_join_statistics_exposed(self):
        detector = TrendDetector(threshold=0.8, decay=0.05)
        detector.run(burst(0, 0.0, {1: 1.0}, count=4))
        assert detector.join_statistics.vectors_processed == 4


class TestDuplicateFilter:
    def test_first_item_is_delivered(self):
        dedup = DuplicateFilter(threshold=0.8, decay=0.05)
        decision = dedup.process(vec(1, 0.0, {1: 1.0}))
        assert decision.delivered
        assert decision.canonical_id == 1

    def test_near_copy_is_suppressed(self):
        dedup = DuplicateFilter(threshold=0.8, decay=0.05)
        dedup.process(vec(1, 0.0, {1: 1.0, 2: 2.0}))
        decision = dedup.process(vec(2, 0.5, {1: 1.0, 2: 2.0}))
        assert not decision.delivered
        assert decision.canonical_id == 1
        assert decision.similarity >= 0.8
        assert decision.duplicates_so_far == 1

    def test_chain_of_copies_points_to_the_original(self):
        dedup = DuplicateFilter(threshold=0.8, decay=0.05)
        dedup.process(vec(1, 0.0, {1: 1.0, 2: 2.0}))
        dedup.process(vec(2, 0.5, {1: 1.0, 2: 2.0}))
        decision = dedup.process(vec(3, 1.0, {1: 1.0, 2: 2.0}))
        assert decision.canonical_id == 1
        assert decision.duplicates_so_far == 2
        assert dedup.group_size(1) == 3

    def test_duplicate_delivered_again_after_horizon(self):
        dedup = DuplicateFilter(threshold=0.8, decay=0.5)   # tau ~ 0.45
        dedup.process(vec(1, 0.0, {1: 1.0, 2: 2.0}))
        decision = dedup.process(vec(2, 10.0, {1: 1.0, 2: 2.0}))
        assert decision.delivered

    def test_suppression_rate(self):
        dedup = DuplicateFilter(threshold=0.8, decay=0.05)
        dedup.process(vec(1, 0.0, {1: 1.0}))
        dedup.process(vec(2, 0.1, {1: 1.0}))
        dedup.process(vec(3, 0.2, {9: 1.0}))
        assert dedup.suppression_rate == pytest.approx(1 / 3)
        assert dedup.delivered_count == 2
        assert dedup.suppressed_count == 1

    def test_canonical_for(self):
        dedup = DuplicateFilter(threshold=0.8, decay=0.05)
        dedup.process(vec(1, 0.0, {1: 1.0}))
        dedup.process(vec(2, 0.1, {1: 1.0}))
        assert dedup.canonical_for(2) == 1
        assert dedup.canonical_for(99) is None

    def test_run_over_profile_stream(self):
        stream = generate_profile_corpus("tweets", num_vectors=300, seed=17)
        dedup = DuplicateFilter(threshold=0.75, decay=0.05)
        decisions = dedup.run(stream)
        assert len(decisions) == 300
        assert dedup.delivered_count + dedup.suppressed_count == 300
        # The tweets profile injects near-duplicates, so some suppression
        # must happen.
        assert dedup.suppressed_count > 0


class TestTopKPairsMonitor:
    def test_keeps_only_k_pairs(self):
        monitor = TopKPairsMonitor(k=2, threshold=0.5, decay=0.05)
        stream = burst(0, 0.0, {1: 1.0, 2: 2.0}, count=4)   # 6 pairs total
        monitor.run(stream)
        assert monitor.pairs_seen == 6
        assert len(monitor.top()) == 2

    def test_top_is_sorted_by_similarity(self):
        monitor = TopKPairsMonitor(k=3, threshold=0.5, decay=0.1)
        monitor.process(vec(1, 0.0, {1: 1.0, 2: 1.0}))
        monitor.process(vec(2, 0.1, {1: 1.0, 2: 1.0}))    # very similar, close
        monitor.process(vec(3, 3.0, {1: 1.0, 2: 1.0}))    # similar but decayed
        top = monitor.top()
        similarities = [pair.similarity for pair in top]
        assert similarities == sorted(similarities, reverse=True)

    def test_minimum_retained_similarity(self):
        monitor = TopKPairsMonitor(k=2, threshold=0.5, decay=0.05)
        assert monitor.minimum_retained_similarity() == 0.0
        monitor.run(burst(0, 0.0, {1: 1.0, 2: 2.0}, count=3))
        assert monitor.minimum_retained_similarity() > 0.5

    def test_threshold_floor(self):
        monitor = TopKPairsMonitor(k=5, threshold=0.99, decay=0.5)
        monitor.process(vec(1, 0.0, {1: 1.0, 2: 1.0}))
        monitor.process(vec(2, 5.0, {1: 1.0, 2: 1.0}))   # decayed below floor
        assert monitor.top() == []
