"""Unit tests for the residual direct index R / Q store."""

from __future__ import annotations

import pytest

from repro.core.vector import SparseVector
from repro.indexes.residual import ResidualEntry, ResidualIndex


def vec(vector_id: int, t: float, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, t, entries, normalize=False)


def make_entry(vector_id: int, t: float = 0.0, boundary: int = 2,
               pscore: float = 0.4) -> ResidualEntry:
    vector = vec(vector_id, t, {1: 0.2, 3: 0.3, 5: 0.6, 8: 0.7})
    return ResidualEntry(vector=vector, boundary=boundary, pscore=pscore)


class TestResidualEntry:
    def test_residual_is_the_strict_prefix(self):
        entry = make_entry(1, boundary=2)
        assert entry.residual == {1: 0.2, 3: 0.3}

    def test_empty_residual_when_boundary_zero(self):
        entry = make_entry(1, boundary=0)
        assert entry.residual == {}
        assert entry.residual_max == 0.0
        assert entry.residual_sum == 0.0
        assert entry.residual_size == 0

    def test_statistics(self):
        entry = make_entry(1, boundary=3)
        assert entry.residual_max == pytest.approx(0.6)
        assert entry.residual_sum == pytest.approx(1.1)
        assert entry.residual_size == 3

    def test_size_filter_value_uses_full_vector(self):
        entry = make_entry(1, boundary=1)
        assert entry.size_filter_value == pytest.approx(4 * 0.7)

    def test_residual_dot(self):
        entry = make_entry(1, boundary=2)
        query = vec(9, 0.0, {1: 1.0, 5: 1.0})
        assert entry.residual_dot(query) == pytest.approx(0.2)

    def test_residual_dot_with_empty_residual(self):
        entry = make_entry(1, boundary=0)
        assert entry.residual_dot(vec(9, 0.0, {1: 1.0})) == 0.0

    def test_vector_id_and_timestamp_proxies(self):
        entry = make_entry(7, t=3.5)
        assert entry.vector_id == 7
        assert entry.timestamp == 3.5

    def test_shrink_to_moves_boundary_and_frees_dims(self):
        entry = make_entry(1, boundary=3)
        freed = entry.shrink_to(1, 0.1)
        assert freed == [3, 5]
        assert entry.boundary == 1
        assert entry.pscore == 0.1
        assert entry.residual == {1: 0.2}

    def test_shrink_to_with_larger_boundary_is_noop(self):
        entry = make_entry(1, boundary=2)
        assert entry.shrink_to(3, 0.9) == []
        assert entry.boundary == 2


class TestResidualIndex:
    def test_add_and_get(self):
        index = ResidualIndex()
        entry = make_entry(1)
        index.add(entry)
        assert 1 in index
        assert index.get(1) is entry
        assert index.get(99) is None
        assert len(index) == 1

    def test_total_residual_coordinates(self):
        index = ResidualIndex()
        index.add(make_entry(1, boundary=2))
        index.add(make_entry(2, boundary=3))
        assert index.total_residual_coordinates() == 5

    def test_candidates_for_dimensions(self):
        index = ResidualIndex()
        index.add(make_entry(1, boundary=2))   # residual dims {1, 3}
        index.add(make_entry(2, boundary=1))   # residual dims {1}
        assert index.candidates_for_dimensions([3]) == {1}
        assert index.candidates_for_dimensions([1]) == {1, 2}
        assert index.candidates_for_dimensions([99]) == set()

    def test_forget_residual_dimension(self):
        index = ResidualIndex()
        index.add(make_entry(1, boundary=2))
        index.forget_residual_dimension(1, [1, 3])
        assert index.candidates_for_dimensions([1, 3]) == set()

    def test_evict_older_than(self):
        index = ResidualIndex()
        index.add(make_entry(1, t=0.0))
        index.add(make_entry(2, t=5.0))
        index.add(make_entry(3, t=10.0))
        evicted = index.evict_older_than(6.0)
        assert [entry.vector_id for entry in evicted] == [1, 2]
        assert 3 in index
        assert index.candidates_for_dimensions([1]) == {3}

    def test_evict_respects_arrival_order(self):
        index = ResidualIndex()
        index.add(make_entry(1, t=0.0))
        index.add(make_entry(2, t=10.0))
        # Cutoff below the oldest: nothing leaves.
        assert index.evict_older_than(-1.0) == []
        assert len(index) == 2

    def test_entries_iteration(self):
        index = ResidualIndex()
        index.add(make_entry(1, t=0.0))
        index.add(make_entry(2, t=1.0))
        assert [entry.vector_id for entry in index.entries()] == [1, 2]

    def test_clear(self):
        index = ResidualIndex()
        index.add(make_entry(1))
        index.clear()
        assert len(index) == 0
        assert index.candidates_for_dimensions([1]) == set()
