"""Property tests for the slot-space candidate pipeline.

The NumPy backend keeps candidates in ``(slots, partial_scores)`` arrays
from scan through verification (see ``docs/ARCHITECTURE.md``, "Candidate
data path"), while the reference backend keeps the original dictionaries.
These tests assert that the two data paths are observationally identical on
randomised streams: the same pairs with the same similarities, and the same
``candidates_generated`` / ``full_similarities`` / ``entries_traversed`` /
``entries_pruned`` operation counters — including the regimes the
acceptance gate does not reach: ``θ = 1``, aggressive decay (so postings
expire and the amortised lazy compaction runs), and re-indexing-heavy
streams whose unordered lists mix lazy and physical removal.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SparseVector, available_backends, create_join
from repro.core.results import JoinStatistics
from tests.conftest import accelerated_backends

pytestmark = pytest.mark.skipif("numpy" not in available_backends(),
                                reason="NumPy backend unavailable")

if "numpy" in available_backends():
    from repro.backends.numpy_backend import NumpyKernel

PARITY_COUNTERS = ("candidates_generated", "full_similarities",
                   "entries_traversed", "entries_pruned", "entries_indexed",
                   "residual_entries", "reindexings", "reindexed_entries",
                   "pairs_output")


def run_backend(algorithm, vectors, threshold, decay, backend):
    stats = JoinStatistics()
    join = create_join(algorithm, threshold, decay, stats=stats,
                       backend=backend)
    pairs = {pair.key: pair for pair in join.run(vectors)}
    return pairs, stats


def assert_backends_agree(algorithm, vectors, threshold, decay,
                          reference_backend, other_backend):
    reference, reference_stats = run_backend(algorithm, vectors, threshold,
                                             decay, reference_backend)
    vectorized, vectorized_stats = run_backend(algorithm, vectors, threshold,
                                               decay, other_backend)
    assert set(vectorized) == set(reference)
    for key, pair in reference.items():
        other = vectorized[key]
        assert other.similarity == pair.similarity, key
        assert other.dot == pair.dot, key
        assert other.time_delta == pair.time_delta, key
    for counter in PARITY_COUNTERS:
        assert (getattr(vectorized_stats, counter)
                == getattr(reference_stats, counter)), counter


def assert_dict_and_array_paths_agree(algorithm, vectors, threshold, decay,
                                      backend="numpy"):
    assert_backends_agree(algorithm, vectors, threshold, decay,
                          "python", backend)


sparse_streams = st.lists(
    st.dictionaries(st.integers(min_value=0, max_value=30),
                    st.floats(min_value=0.05, max_value=1.0),
                    min_size=1, max_size=7),
    min_size=2, max_size=40,
)


@pytest.mark.parametrize("backend", accelerated_backends())
class TestSlotSpaceParity:
    @settings(max_examples=25, deadline=None)
    @given(entries=sparse_streams,
           threshold=st.floats(min_value=0.3, max_value=0.99),
           decay=st.floats(min_value=0.05, max_value=2.0))
    def test_expiring_streams(self, entries, threshold, decay, backend):
        # Fast decay → short horizon: postings expire constantly, driving
        # both the time-ordered truncation (STR-L2) and the lazy masked
        # expiry + amortised compaction of unordered lists (STR-L2AP).
        vectors = [SparseVector(index, float(index), coords)
                   for index, coords in enumerate(entries)]
        for algorithm in ("STR-L2AP", "STR-L2", "STR-INV", "STR-AP"):
            assert_dict_and_array_paths_agree(algorithm, vectors, threshold,
                                              decay, backend)

    @settings(max_examples=15, deadline=None)
    @given(entries=sparse_streams)
    def test_theta_one(self, entries, backend):
        # θ = 1 collapses the horizon to zero: only simultaneous identical
        # vectors can pair, every bound sits exactly at the threshold, and
        # the guard-band verification must not leak near-misses.
        vectors = [SparseVector(index, float(index // 3), coords)
                   for index, coords in enumerate(entries)]
        for algorithm in ("STR-L2AP", "STR-L2", "STR-INV"):
            assert_dict_and_array_paths_agree(algorithm, vectors, 1.0, 0.5,
                                              backend)

    @settings(max_examples=15, deadline=None)
    @given(entries=sparse_streams,
           threshold=st.floats(min_value=0.4, max_value=0.9))
    def test_expired_entry_verification(self, entries, threshold, backend):
        # Bursts separated by long gaps: whole windows of residual entries
        # and postings expire between bursts, so verification must mask
        # candidates whose residual metadata was evicted.
        vectors = [
            SparseVector(index, float(index) + (index // 5) * 1000.0, coords)
            for index, coords in enumerate(entries)
        ]
        for algorithm in ("STR-L2AP", "STR-L2"):
            assert_dict_and_array_paths_agree(algorithm, vectors, threshold,
                                              0.01, backend)

    def test_reindexing_with_expiry(self, backend):
        # Growing maxima force re-indexing (unordered lists) while a short
        # horizon expires postings: the lazily compacted lists must report
        # exactly the removals the eagerly compacting reference reports.
        vectors = [
            SparseVector(index, float(index),
                         {dim: 1.0 + 0.06 * index
                          for dim in range(index % 5, index % 5 + 4)})
            for index in range(150)
        ]
        assert_dict_and_array_paths_agree("STR-L2AP", vectors, 0.6, 0.08,
                                          backend)

    def test_identical_vectors_at_threshold_one(self, backend):
        coords = {1: 2.0, 5: 1.0, 9: 3.0}
        vectors = [SparseVector(index, 0.0, coords) for index in range(4)]
        reference, _ = run_backend("STR-L2AP", vectors, 1.0, 0.7, "python")
        vectorized, _ = run_backend("STR-L2AP", vectors, 1.0, 0.7, backend)
        assert set(vectorized) == set(reference)
        assert len(vectorized) == 6  # all pairs of the 4 identical vectors

    def test_fused_scan_counts_one_kernel_call_per_query(self, backend):
        # The whole-query fusion is observable through the profiling
        # wrapper: exactly one scan call per processed vector, instead of
        # one per query term.
        from repro.backends import get_backend
        from repro.backends.profiling import ProfilingKernel

        kernel = ProfilingKernel(get_backend(backend)())
        join = create_join("STR-L2AP", 0.6, 0.05, backend=kernel)
        vectors = [SparseVector(index, float(index),
                                {dim: 1.0 for dim in range(index % 3, index % 3 + 4)})
                   for index in range(30)]
        for vector in vectors:
            join.process(vector)
        assert kernel.stage_calls["scan"] == len(vectors)


class TestFusedVersusPerTermParity:
    """The fused arena scans against the per-term kernel fallback.

    ``NumpyKernel(fused=False)`` routes candidate generation through the
    base class's per-term driver loop over the same vectorised ``scan_*``
    kernels — the code path the fused ``scan_query_*`` implementations
    must replicate decision for decision.
    """

    @settings(max_examples=25, deadline=None)
    @given(entries=sparse_streams,
           threshold=st.floats(min_value=0.3, max_value=0.99),
           decay=st.floats(min_value=0.05, max_value=2.0))
    def test_expiring_streams(self, entries, threshold, decay):
        vectors = [SparseVector(index, float(index), coords)
                   for index, coords in enumerate(entries)]
        for algorithm in ("STR-L2AP", "STR-L2", "STR-INV", "STR-AP"):
            assert_backends_agree(algorithm, vectors, threshold, decay,
                                  NumpyKernel(fused=False),
                                  NumpyKernel(fused=True))

    @settings(max_examples=15, deadline=None)
    @given(entries=sparse_streams)
    def test_theta_one(self, entries):
        vectors = [SparseVector(index, float(index // 3), coords)
                   for index, coords in enumerate(entries)]
        for algorithm in ("STR-L2AP", "STR-L2", "STR-INV"):
            assert_backends_agree(algorithm, vectors, 1.0, 0.5,
                                  NumpyKernel(fused=False),
                                  NumpyKernel(fused=True))

    def test_reindexing_with_expiry(self):
        vectors = [
            SparseVector(index, float(index),
                         {dim: 1.0 + 0.06 * index
                          for dim in range(index % 5, index % 5 + 4)})
            for index in range(150)
        ]
        assert_backends_agree("STR-L2AP", vectors, 0.6, 0.08,
                              NumpyKernel(fused=False),
                              NumpyKernel(fused=True))

    def test_batch_prefix_parity(self):
        from repro.indexes.base import create_batch_index

        vectors = [SparseVector(index, 0.0,
                                {dim: 1.0 + 0.1 * (index % 4)
                                 for dim in range(index % 4, index % 4 + 3)})
                   for index in range(25)]
        for algorithm in ("L2AP", "AP", "L2", "INV"):
            per_term = create_batch_index(algorithm, 0.5,
                                          backend=NumpyKernel(fused=False))
            fused = create_batch_index(algorithm, 0.5,
                                       backend=NumpyKernel(fused=True))
            for vector in vectors[:-1]:
                per_term.index_vector(vector)
                fused.index_vector(vector)
            query = vectors[-1]
            reference_set = per_term.candidate_generation(query)
            fused_set = fused.candidate_generation(query)
            assert fused_set.to_dict() == reference_set.to_dict()
            assert list(fused_set.to_dict()) == list(reference_set.to_dict())


class TestCandidateSetViews:
    def test_batch_candidate_set_views(self):
        # The CandidateSet compatibility views must agree with the
        # reference dictionaries entry for entry and in order.
        vectors = [SparseVector(index, 0.0,
                                {dim: 1.0 for dim in range(index % 4, index % 4 + 3)})
                   for index in range(20)]
        from repro.indexes.base import create_batch_index

        reference = create_batch_index("L2AP", 0.5, backend="python")
        vectorized = create_batch_index("L2AP", 0.5, backend="numpy")
        for vector in vectors[:-1]:
            reference.index_vector(vector)
            vectorized.index_vector(vector)
        query = vectors[-1]
        reference_set = reference.candidate_generation(query)
        vectorized_set = vectorized.candidate_generation(query)
        assert len(vectorized_set) == len(reference_set)
        assert vectorized_set.to_dict() == reference_set.to_dict()
        assert (list(vectorized_set.to_dict())
                == list(reference_set.to_dict()))  # insertion order
        assert vectorized_set.above(0.5) == reference_set.above(0.5)
