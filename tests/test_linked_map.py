"""Unit tests for the linked hash-map used by the residual index."""

from __future__ import annotations

import pytest

from repro.indexes.linked_map import LinkedHashMap


class TestMappingProtocol:
    def test_set_and_get(self):
        table = LinkedHashMap()
        table["a"] = 1
        assert table["a"] == 1
        assert table.get("a") == 1

    def test_get_missing_returns_default(self):
        table = LinkedHashMap()
        assert table.get("missing") is None
        assert table.get("missing", 7) == 7

    def test_contains_and_len(self):
        table = LinkedHashMap()
        table["a"] = 1
        table["b"] = 2
        assert "a" in table
        assert "c" not in table
        assert len(table) == 2

    def test_delete(self):
        table = LinkedHashMap()
        table["a"] = 1
        del table["a"]
        assert "a" not in table

    def test_pop(self):
        table = LinkedHashMap()
        table["a"] = 1
        assert table.pop("a") == 1
        assert table.pop("a", "gone") == "gone"

    def test_update_keeps_position(self):
        table = LinkedHashMap()
        table["a"] = 1
        table["b"] = 2
        table["a"] = 10
        assert list(table.keys()) == ["a", "b"]
        assert table["a"] == 10

    def test_bool_and_clear(self):
        table = LinkedHashMap()
        assert not table
        table["a"] = 1
        assert table
        table.clear()
        assert not table

    def test_iteration_orders(self):
        table = LinkedHashMap()
        for key in "cab":
            table[key] = key.upper()
        assert list(table) == ["c", "a", "b"]
        assert list(table.values()) == ["C", "A", "B"]
        assert list(table.items()) == [("c", "C"), ("a", "A"), ("b", "B")]


class TestInsertionOrderHelpers:
    def test_oldest_and_newest(self):
        table = LinkedHashMap()
        table["first"] = 1
        table["second"] = 2
        assert table.oldest() == ("first", 1)
        assert table.newest() == ("second", 2)

    def test_oldest_on_empty_raises(self):
        with pytest.raises(KeyError):
            LinkedHashMap().oldest()

    def test_newest_on_empty_raises(self):
        with pytest.raises(KeyError):
            LinkedHashMap().newest()

    def test_pop_oldest(self):
        table = LinkedHashMap()
        table["first"] = 1
        table["second"] = 2
        assert table.pop_oldest() == ("first", 1)
        assert list(table) == ["second"]

    def test_evict_while(self):
        table = LinkedHashMap()
        for i in range(6):
            table[i] = i * 10
        evicted = table.evict_while(lambda key, value: key < 3)
        assert evicted == [(0, 0), (1, 10), (2, 20)]
        assert list(table) == [3, 4, 5]

    def test_evict_while_stops_at_first_failure(self):
        table = LinkedHashMap()
        table["old"] = 1
        table["new"] = 100
        table["older-looking"] = 2
        evicted = table.evict_while(lambda key, value: value < 50)
        assert [key for key, _ in evicted] == ["old"]

    def test_evict_while_on_empty(self):
        assert LinkedHashMap().evict_while(lambda key, value: True) == []
