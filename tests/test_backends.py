"""Equivalence and property coverage for the compute-backend subsystem.

The NumPy backend must be a drop-in replacement for the pure-Python
reference backend: identical :class:`SimilarPair` output (keys *and*
similarity values), identical operation counters, and posting lists with
identical observable behaviour.  These tests enforce that on the dataset
profiles and with hypothesis-generated adversarial inputs.
"""

from __future__ import annotations

import math
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    SparseVector,
    UnknownBackendError,
    all_pairs,
    available_backends,
    brute_force_all_pairs,
    brute_force_time_dependent,
    create_join,
    default_backend,
    sliding_window_join,
)
from repro.backends import get_backend, resolve_kernel
from repro.core.results import JoinStatistics
from repro.core.similarity import JoinParameters
from repro.indexes.posting import PostingEntry, PostingList
from tests.conftest import accelerated_backends, random_vectors

numpy_missing = "numpy" not in available_backends()
needs_numpy = pytest.mark.skipif(numpy_missing, reason="NumPy backend unavailable")

STREAMING_ALGORITHMS = ["STR-INV", "STR-L2", "STR-L2AP", "STR-AP"]
MINIBATCH_ALGORITHMS = ["MB-INV", "MB-L2", "MB-L2AP", "MB-AP"]
BATCH_INDEXES = ["INV", "AP", "L2", "L2AP"]


def run_pairs(algorithm, vectors, threshold, decay, backend):
    stats = JoinStatistics()
    join = create_join(algorithm, threshold, decay, stats=stats, backend=backend)
    pairs = {pair.key: pair for pair in join.run(vectors)}
    return pairs, stats


def assert_backend_parity(algorithm, vectors, threshold, decay,
                          backend="numpy"):
    reference, reference_stats = run_pairs(algorithm, vectors, threshold, decay,
                                           "python")
    vectorized, vectorized_stats = run_pairs(algorithm, vectors, threshold, decay,
                                             backend)
    assert set(vectorized) == set(reference)
    for key, pair in reference.items():
        other = vectorized[key]
        assert other.similarity == pair.similarity
        assert other.dot == pair.dot
        assert other.time_delta == pair.time_delta
    # The kernels must traverse, admit and verify exactly the same entries.
    assert vectorized_stats.entries_traversed == reference_stats.entries_traversed
    assert vectorized_stats.candidates_generated == reference_stats.candidates_generated
    assert vectorized_stats.full_similarities == reference_stats.full_similarities
    assert vectorized_stats.entries_pruned == reference_stats.entries_pruned
    return reference


@needs_numpy
@pytest.mark.parametrize("backend", accelerated_backends())
class TestJoinEquivalence:
    """Pair-for-pair parity on the paper-shaped profile corpora."""

    @pytest.mark.parametrize("algorithm", STREAMING_ALGORITHMS + MINIBATCH_ALGORITHMS)
    def test_tweets_profile(self, tweets_corpus, algorithm, backend):
        pairs = assert_backend_parity(algorithm, tweets_corpus, 0.6, 0.05,
                                      backend)
        expected = {p.key for p in brute_force_time_dependent(tweets_corpus, 0.6, 0.05)}
        assert set(pairs) == expected

    @pytest.mark.parametrize("algorithm", STREAMING_ALGORITHMS + MINIBATCH_ALGORITHMS)
    def test_rcv1_profile(self, rcv1_corpus, algorithm, backend):
        assert_backend_parity(algorithm, rcv1_corpus, 0.7, 0.02, backend)

    @pytest.mark.parametrize("algorithm", ["STR-L2", "STR-L2AP"])
    def test_near_threshold_parameters(self, tweets_corpus, algorithm, backend):
        # A high threshold with slow decay stresses the decayed bounds.
        assert_backend_parity(algorithm, tweets_corpus, 0.9, 0.001, backend)

    def test_reindexing_heavy_stream(self, backend):
        # Growing maxima force frequent STR-L2AP re-indexing, exercising the
        # unordered (compacting) posting-list scans on both backends.
        vectors = [
            SparseVector(index, float(index),
                         {dim: 1.0 + 0.05 * index for dim in range(index % 7, index % 7 + 4)})
            for index in range(120)
        ]
        assert_backend_parity("STR-L2AP", vectors, 0.6, 0.02, backend)

    @pytest.mark.parametrize("algorithm", ["STR-INV", "STR-L2", "STR-L2AP"])
    def test_long_posting_lists_use_vectorised_scans(self, algorithm, backend):
        # Every vector shares the same six dimensions, so the posting lists
        # grow far past the NumPy backend's scalar-scan cutoff and the fully
        # vectorised kernels (not just the short-list fast path) are covered.
        vectors = [
            SparseVector(index, index * 0.01,
                         {dim: 1.0 + ((index * 7 + dim) % 5) * 0.1
                          for dim in range(6)})
            for index in range(150)
        ]
        assert_backend_parity(algorithm, vectors, 0.5, 0.001, backend)

    @pytest.mark.slow
    def test_hot_path_profile_equivalence(self, backend):
        from repro.datasets.generator import generate_profile_corpus

        vectors = generate_profile_corpus("hashtags", num_vectors=1200, seed=7)
        assert_backend_parity("STR-L2AP", vectors, 0.6, 2e-5, backend)
        assert_backend_parity("STR-L2", vectors, 0.6, 2e-5, backend)


@needs_numpy
class TestBatchAndBaselineEquivalence:
    @pytest.mark.parametrize("backend", accelerated_backends())
    @pytest.mark.parametrize("index", BATCH_INDEXES)
    def test_all_pairs(self, rcv1_corpus, index, backend):
        reference = {p.key: p.similarity
                     for p in all_pairs(rcv1_corpus, 0.7, index=index, backend="python")}
        vectorized = {p.key: p.similarity
                      for p in all_pairs(rcv1_corpus, 0.7, index=index, backend=backend)}
        assert vectorized == reference

    def test_brute_force(self, small_random_stream):
        reference = {p.key: p.similarity
                     for p in brute_force_all_pairs(small_random_stream, 0.6,
                                                    backend="python")}
        vectorized = {p.key: p.similarity
                      for p in brute_force_all_pairs(small_random_stream, 0.6,
                                                     backend="numpy")}
        assert vectorized == reference

    def test_brute_force_time_dependent(self, small_random_stream):
        reference = {p.key: p.similarity
                     for p in brute_force_time_dependent(small_random_stream, 0.6,
                                                         0.05, backend="python")}
        vectorized = {p.key: p.similarity
                      for p in brute_force_time_dependent(small_random_stream, 0.6,
                                                          0.05, backend="numpy")}
        assert vectorized == reference

    def test_sliding_window(self, small_random_stream):
        reference = {p.key: p.similarity
                     for p in sliding_window_join(small_random_stream, 0.6, 0.05,
                                                  backend="python")}
        vectorized = {p.key: p.similarity
                      for p in sliding_window_join(small_random_stream, 0.6, 0.05,
                                                   backend="numpy")}
        assert vectorized == reference


class TestBackendSelection:
    def test_python_backend_always_available(self):
        assert "python" in available_backends()

    def test_default_backend_prefers_numpy(self):
        override = os.environ.get("SSSJ_BACKEND", "").strip().lower()
        if override and override != "auto":
            if override in available_backends():
                assert default_backend() == override
            else:
                # A known-but-unavailable override (e.g. numba without
                # numba installed) degrades to the auto default.
                assert default_backend() in available_backends()
        elif numpy_missing:
            assert default_backend() == "python"
        else:
            assert default_backend() == "numpy"

    def test_auto_resolves_to_default(self):
        assert get_backend("auto").name == default_backend()
        assert get_backend(None).name == default_backend()

    def test_unknown_backend_raises(self):
        with pytest.raises(UnknownBackendError):
            get_backend("fortran")

    def test_env_var_override(self):
        code = (
            "import repro; import sys; "
            "sys.exit(0 if repro.default_backend() == 'python' else 1)"
        )
        env = dict(os.environ, SSSJ_BACKEND="python",
                   PYTHONPATH="src" + os.pathsep + os.environ.get("PYTHONPATH", ""))
        result = subprocess.run([sys.executable, "-c", code], env=env,
                                cwd=os.path.dirname(os.path.dirname(__file__)))
        assert result.returncode == 0

    def test_join_reports_backend(self):
        join = create_join("STR-L2", 0.7, 0.1, backend="python")
        assert join.backend_name == "python"
        assert join.index.backend_name == "python"

    def test_join_parameters_carry_backend(self):
        params = JoinParameters(threshold=0.7, decay=0.1, backend="PYTHON")
        assert params.backend == "python"
        join = params.create_join("STR-L2")
        assert join.threshold == 0.7
        assert join.backend_name == "python"

    def test_kernel_resolution_accepts_instance(self):
        kernel = get_backend("python")()
        assert resolve_kernel(kernel) is kernel


# ---------------------------------------------------------------------------
# Property tests for the vectorised kernels and the array posting lists.


entry_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),          # vector id
        st.floats(min_value=0.01, max_value=1.0),        # value
        st.floats(min_value=0.0, max_value=1.0),         # prefix norm
        st.floats(min_value=0.0, max_value=100.0),       # timestamp
    ),
    max_size=80,
)


def build_lists(raw, *, time_ordered):
    """Build one reference and one array posting list with identical content."""
    from repro.backends.numpy_backend import NumpyKernel

    if time_ordered:
        raw = sorted(raw, key=lambda item: item[3])
    entries = [PostingEntry(vector_id=vid, value=val, prefix_norm=norm,
                            timestamp=ts)
               for vid, val, norm, ts in raw]
    reference = PostingList()
    vectorized = NumpyKernel().new_posting_list()
    for entry in entries:
        reference.append(entry)
        vectorized.append(entry)
    return reference, vectorized


@needs_numpy
class TestArenaPostingListProperties:
    @settings(max_examples=40, deadline=None)
    @given(raw=entry_lists)
    def test_iteration_matches_reference(self, raw):
        reference, vectorized = build_lists(raw, time_ordered=False)
        assert list(vectorized) == list(reference)
        assert (list(vectorized.iter_newest_first())
                == list(reference.iter_newest_first()))
        assert len(vectorized) == len(reference)

    @settings(max_examples=40, deadline=None)
    @given(raw=entry_lists, cutoff=st.floats(min_value=-1.0, max_value=101.0))
    def test_truncate_older_than(self, raw, cutoff):
        reference, vectorized = build_lists(raw, time_ordered=True)
        assert vectorized.truncate_older_than(cutoff) == reference.truncate_older_than(cutoff)
        assert list(vectorized) == list(reference)

    @settings(max_examples=40, deadline=None)
    @given(raw=entry_lists, cutoff=st.floats(min_value=-1.0, max_value=101.0))
    def test_compact(self, raw, cutoff):
        reference, vectorized = build_lists(raw, time_ordered=False)
        assert vectorized.compact(cutoff) == reference.compact(cutoff)
        assert list(vectorized) == list(reference)

    @settings(max_examples=40, deadline=None)
    @given(raw=entry_lists, keep=st.integers(min_value=0, max_value=90))
    def test_keep_newest(self, raw, keep):
        reference, vectorized = build_lists(raw, time_ordered=True)
        assert vectorized.keep_newest(keep) == reference.keep_newest(keep)
        assert list(vectorized) == list(reference)

    @settings(max_examples=20, deadline=None)
    @given(raw=entry_lists)
    def test_replace_all_entries(self, raw):
        reference, vectorized = build_lists(raw, time_ordered=False)
        replacement = list(reference)[::2]
        reference.replace_all_entries(replacement)
        vectorized.replace_all_entries(replacement)
        assert list(vectorized) == list(reference)


sparse_streams = st.lists(
    st.dictionaries(st.integers(min_value=0, max_value=25),
                    st.floats(min_value=0.05, max_value=1.0),
                    min_size=1, max_size=6),
    min_size=2, max_size=30,
)


@needs_numpy
@pytest.mark.parametrize("backend", accelerated_backends())
class TestKernelProperties:
    """End-to-end kernel parity on adversarial hypothesis streams."""

    @settings(max_examples=30, deadline=None)
    @given(entries=sparse_streams,
           threshold=st.floats(min_value=0.3, max_value=0.95),
           decay=st.floats(min_value=0.01, max_value=0.5))
    def test_streaming_parity(self, entries, threshold, decay, backend):
        vectors = [SparseVector(index, float(index), coords)
                   for index, coords in enumerate(entries)]
        for algorithm in ("STR-L2", "STR-L2AP", "STR-INV"):
            reference, _ = run_pairs(algorithm, vectors, threshold, decay, "python")
            vectorized, _ = run_pairs(algorithm, vectors, threshold, decay, backend)
            assert set(vectorized) == set(reference)
            for key, pair in reference.items():
                assert math.isclose(vectorized[key].similarity, pair.similarity,
                                    rel_tol=1e-12, abs_tol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(entries=sparse_streams,
           threshold=st.floats(min_value=0.3, max_value=0.95))
    def test_batch_parity(self, entries, threshold, backend):
        vectors = [SparseVector(index, float(index), coords)
                   for index, coords in enumerate(entries)]
        reference = {p.key: p.similarity
                     for p in all_pairs(vectors, threshold, backend="python")}
        vectorized = {p.key: p.similarity
                      for p in all_pairs(vectors, threshold, backend=backend)}
        assert vectorized == reference


@needs_numpy
class TestCheckpointAcrossBackends:
    def test_checkpoint_roundtrip_records_backend(self, tmp_path):
        from repro import load_checkpoint, save_checkpoint

        vectors = random_vectors(60, seed=5)
        join = create_join("STR-L2", 0.6, 0.05, backend="numpy")
        midpoint = len(vectors) // 2
        for vector in vectors[:midpoint]:
            join.process(vector)
        path = save_checkpoint(join, tmp_path / "join.ckpt")
        resumed = load_checkpoint(path)
        assert resumed.index.backend_name == "numpy"
        rest = [pair.key for vector in vectors[midpoint:]
                for pair in resumed.process(vector)]
        fresh = create_join("STR-L2", 0.6, 0.05, backend="python")
        expected = []
        for index, vector in enumerate(vectors):
            keys = [pair.key for pair in fresh.process(vector)]
            if index >= midpoint:
                expected.extend(keys)
        assert rest == expected

    @pytest.mark.parametrize("backend", ["python", *accelerated_backends()])
    def test_resume_preserves_size_filter_counters(self, tmp_path, backend):
        # Restoring must rebuild the kernel's sz1 size-filter map: a resumed
        # join has to do exactly the same amount of work (not just produce
        # the same pairs) as an uninterrupted one.  STR-AP makes sz1 the
        # binding filter: single-coordinate vectors on the *highest* query
        # dimensions are admitted by the remaining-score bound (the backward
        # scan meets them first) and, with no ℓ₂ pruning, only the size
        # filter rejects them — so a lost map inflates candidates_generated.
        from repro import load_checkpoint, save_checkpoint

        singles = [SparseVector(index, float(index), {20 + index % 5: 1.0})
                   for index in range(40)]
        wide = [SparseVector(100 + index, 40.0 + index,
                             {dim: 1.0 for dim in range(25)})
                for index in range(10)]
        vectors = singles + wide
        midpoint = len(singles)

        uninterrupted = create_join("STR-AP", 0.8, 0.01, backend=backend)
        for vector in vectors:
            uninterrupted.process(vector)

        first = create_join("STR-AP", 0.8, 0.01, backend=backend)
        for vector in vectors[:midpoint]:
            first.process(vector)
        resumed = load_checkpoint(save_checkpoint(first, tmp_path / "l2ap.ckpt"))
        for vector in vectors[midpoint:]:
            resumed.process(vector)

        for attribute in ("entries_traversed", "candidates_generated",
                          "full_similarities", "pairs_output"):
            assert (getattr(resumed.stats, attribute)
                    == getattr(uninterrupted.stats, attribute)), attribute
