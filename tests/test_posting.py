"""Unit tests for posting lists and the inverted index container."""

from __future__ import annotations

from repro.indexes.posting import InvertedIndex, PostingEntry, PostingList


def entry(vector_id: int, timestamp: float, value: float = 0.5) -> PostingEntry:
    return PostingEntry(vector_id=vector_id, value=value, prefix_norm=0.1,
                        timestamp=timestamp)


class TestPostingList:
    def test_append_and_iterate(self):
        plist = PostingList()
        plist.append(entry(1, 0.0))
        plist.append(entry(2, 1.0))
        assert [e.vector_id for e in plist] == [1, 2]
        assert [e.vector_id for e in plist.iter_newest_first()] == [2, 1]

    def test_len_and_bool(self):
        plist = PostingList()
        assert not plist
        plist.append(entry(1, 0.0))
        assert plist
        assert len(plist) == 1

    def test_truncate_older_than(self):
        plist = PostingList()
        for i in range(5):
            plist.append(entry(i, float(i)))
        removed = plist.truncate_older_than(3.0)
        assert removed == 3
        assert [e.vector_id for e in plist] == [3, 4]

    def test_truncate_with_no_expired_entries(self):
        plist = PostingList()
        plist.append(entry(1, 5.0))
        assert plist.truncate_older_than(1.0) == 0

    def test_keep_newest(self):
        plist = PostingList()
        for i in range(5):
            plist.append(entry(i, float(i)))
        assert plist.keep_newest(2) == 3
        assert [e.vector_id for e in plist] == [3, 4]

    def test_compact_removes_expired_anywhere(self):
        plist = PostingList()
        # Out-of-order timestamps, as after L2AP re-indexing.
        for vector_id, timestamp in [(1, 5.0), (2, 1.0), (3, 6.0), (4, 0.5)]:
            plist.append(entry(vector_id, timestamp))
        removed = plist.compact(2.0)
        assert removed == 2
        assert [e.vector_id for e in plist] == [1, 3]

    def test_compact_noop_when_nothing_expired(self):
        plist = PostingList()
        plist.append(entry(1, 5.0))
        assert plist.compact(1.0) == 0
        assert len(plist) == 1

    def test_replace_all_entries(self):
        plist = PostingList()
        plist.append(entry(1, 0.0))
        plist.replace_all_entries([entry(7, 2.0), entry(8, 3.0)])
        assert [e.vector_id for e in plist] == [7, 8]

    def test_to_list(self):
        plist = PostingList()
        plist.append(entry(1, 0.0))
        assert [e.vector_id for e in plist.to_list()] == [1]


class TestInvertedIndex:
    def test_add_and_size(self):
        index = InvertedIndex()
        index.add(3, entry(1, 0.0))
        index.add(3, entry(2, 1.0))
        index.add(5, entry(1, 0.0))
        assert len(index) == 3
        assert 3 in index
        assert 7 not in index

    def test_get_missing_dimension(self):
        assert InvertedIndex().get(42) is None

    def test_list_for_creates_on_demand(self):
        index = InvertedIndex()
        plist = index.list_for(9)
        assert len(plist) == 0
        assert index.get(9) is plist

    def test_dimensions(self):
        index = InvertedIndex()
        index.add(1, entry(1, 0.0))
        index.add(4, entry(1, 0.0))
        assert sorted(index.dimensions()) == [1, 4]

    def test_note_removed_adjusts_size(self):
        index = InvertedIndex()
        index.add(1, entry(1, 0.0))
        index.get(1).keep_newest(0)
        index.note_removed(1)
        assert len(index) == 0

    def test_note_removed_never_goes_negative(self):
        index = InvertedIndex()
        index.note_removed(5)
        assert len(index) == 0

    def test_prune_older_than_ordered(self):
        index = InvertedIndex()
        for i in range(4):
            index.add(1, entry(i, float(i)))
        removed = index.prune_older_than(2.0, ordered=True)
        assert removed == 2
        assert len(index) == 2

    def test_prune_older_than_unordered(self):
        index = InvertedIndex()
        index.add(1, entry(1, 5.0))
        index.add(1, entry(2, 0.5))
        removed = index.prune_older_than(2.0, ordered=False)
        assert removed == 1
        assert len(index) == 1

    def test_clear(self):
        index = InvertedIndex()
        index.add(1, entry(1, 0.0))
        index.clear()
        assert len(index) == 0
        assert index.get(1) is None
