"""Shared ground-truth harness for the differential test suites.

Several suites (equivalence, shard parity, service determinism, the
approximate tier) need "the exact answer" for a corpus — either the
brute-force oracle pair set or a single-process exact engine run to
compare richer structure (similarities, dots, operation counters)
against.  Before this module each suite recomputed those from scratch
per test; the oracle in particular is O(n²) per (θ, λ) setting, so the
same pair sets were being brute-forced many times over.

This module centralises both:

* :class:`GroundTruth` — a per-corpus memoised brute-force oracle; the
  session-scoped fixtures below (``tweets_truth``, ``rcv1_truth``) share
  one instance across every test in the run, so each (θ, λ) setting is
  brute-forced exactly once per corpus.
* :func:`engine_pairs` / :func:`engine_pair_map` — one exact engine run
  with its :class:`~repro.core.results.JoinStatistics`, for suites that
  compare bitwise against the engine rather than the oracle.

The fixtures are re-exported from ``tests/conftest.py`` so test modules
use them like any other fixture.
"""

from __future__ import annotations

import pytest

from repro import brute_force_time_dependent
from repro.core.join import streaming_self_join
from repro.core.results import JoinStatistics, SimilarPair


def brute_force_truth(vectors, threshold: float,
                      decay: float) -> dict[tuple[int, int], SimilarPair]:
    """The brute-force oracle's pairs for one (θ, λ) setting, keyed by pair."""
    return {pair.key: pair
            for pair in brute_force_time_dependent(vectors, threshold, decay)}


def engine_pairs(vectors, threshold: float, decay: float, *,
                 algorithm: str = "STR-L2", backend: str | None = None,
                 approx: str | None = None,
                 ) -> tuple[list[SimilarPair], JoinStatistics]:
    """One single-process engine run: ``(pairs_in_report_order, stats)``.

    The exact run (``approx=None``) is the reference side of every
    differential test; the same helper also drives the approximate side
    so both runs are configured identically except for the tier under
    test.
    """
    stats = JoinStatistics()
    pairs = list(streaming_self_join(vectors, threshold, decay,
                                     algorithm=algorithm, backend=backend,
                                     stats=stats, approx=approx))
    return pairs, stats


def engine_pair_map(vectors, threshold: float, decay: float, *,
                    algorithm: str = "STR-L2", backend: str | None = None,
                    approx: str | None = None,
                    ) -> tuple[dict[tuple[int, int], SimilarPair], JoinStatistics]:
    """Like :func:`engine_pairs` but keyed by pair for order-free comparison."""
    pairs, stats = engine_pairs(vectors, threshold, decay,
                                algorithm=algorithm, backend=backend,
                                approx=approx)
    return {pair.key: pair for pair in pairs}, stats


def counters_without_time(stats_dict: dict) -> dict:
    """Drop the wall-clock entry so counter dicts compare deterministically."""
    return {key: value for key, value in stats_dict.items()
            if key != "elapsed_seconds"}


class GroundTruth:
    """Memoised brute-force oracle over one corpus.

    One instance per corpus, shared session-wide: the O(n²) oracle runs
    once per distinct (θ, λ) setting no matter how many tests ask.
    """

    def __init__(self, vectors) -> None:
        self.vectors = vectors
        self._cache: dict[tuple[float, float],
                          dict[tuple[int, int], SimilarPair]] = {}

    def pairs(self, threshold: float,
              decay: float) -> dict[tuple[int, int], SimilarPair]:
        """The oracle's pairs for (θ, λ), keyed by pair key."""
        setting = (threshold, decay)
        cached = self._cache.get(setting)
        if cached is None:
            cached = brute_force_truth(self.vectors, threshold, decay)
            self._cache[setting] = cached
        return cached

    def keys(self, threshold: float, decay: float) -> set[tuple[int, int]]:
        """The oracle's pair-key set for (θ, λ)."""
        return set(self.pairs(threshold, decay))


@pytest.fixture(scope="session")
def tweets_truth(tweets_corpus) -> GroundTruth:
    """Session-wide memoised oracle over the shared tweets corpus."""
    return GroundTruth(tweets_corpus)


@pytest.fixture(scope="session")
def rcv1_truth(rcv1_corpus) -> GroundTruth:
    """Session-wide memoised oracle over the shared rcv1 corpus."""
    return GroundTruth(rcv1_corpus)
