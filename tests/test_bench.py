"""Tests for the benchmark harness (runner, tables, regression, experiments)."""

from __future__ import annotations

import math

import pytest

from repro.bench.config import (
    DATASETS,
    LAMBDA_GRID,
    THETA_GRID,
    ExperimentScale,
    default_scale,
)
from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    ablation_baseline,
    ablation_bounds,
    figure2,
    figure9,
    run_experiment,
    table1,
    table2,
)
from repro.bench.regression import fit_line
from repro.bench.runner import clear_corpus_cache, corpus_for, run_algorithm, sweep
from repro.bench.tables import pivot, render_table, series_by
from repro.datasets.generator import generate_profile_corpus

TINY_SCALE = ExperimentScale(
    vector_counts={"webspam": 40, "rcv1": 60, "blogs": 50, "tweets": 80},
    thetas=(0.5, 0.9),
    decays=(0.01, 0.1),
    seed=5,
)


class TestConfig:
    def test_paper_grids(self):
        assert THETA_GRID == (0.5, 0.6, 0.7, 0.8, 0.9, 0.99)
        assert LAMBDA_GRID == (1e-4, 1e-3, 1e-2, 1e-1)
        assert DATASETS == ("webspam", "rcv1", "blogs", "tweets")

    def test_default_scale_has_counts_for_every_dataset(self):
        scale = default_scale()
        for dataset in DATASETS:
            assert scale.vectors_for(dataset) >= 50

    def test_scale_env_variable(self, monkeypatch):
        monkeypatch.setenv("SSSJ_BENCH_SCALE", "2.0")
        doubled = default_scale()
        monkeypatch.delenv("SSSJ_BENCH_SCALE")
        base = default_scale()
        for dataset in DATASETS:
            assert doubled.vectors_for(dataset) == 2 * base.vectors_for(dataset)


class TestRunner:
    def test_corpus_cache(self):
        clear_corpus_cache()
        a = corpus_for("tweets", 50, seed=1)
        b = corpus_for("tweets", 50, seed=1)
        assert a is b
        clear_corpus_cache()
        c = corpus_for("tweets", 50, seed=1)
        assert c is not a
        assert c == a

    def test_run_algorithm_metrics(self):
        vectors = generate_profile_corpus("tweets", num_vectors=100, seed=2)
        metrics = run_algorithm("STR-L2", vectors, 0.6, 0.05, dataset="tweets")
        assert metrics.completed
        assert metrics.num_vectors == 100
        assert metrics.stats.vectors_processed == 100
        assert metrics.elapsed_seconds > 0
        assert metrics.horizon == pytest.approx(math.log(1 / 0.6) / 0.05)
        row = metrics.as_row()
        assert row["algorithm"] == "STR-L2"
        assert row["completed"] is True

    def test_operation_budget_aborts_run(self):
        vectors = generate_profile_corpus("rcv1", num_vectors=150, seed=3)
        metrics = run_algorithm("STR-INV", vectors, 0.5, 0.001,
                                dataset="rcv1", operation_budget=500)
        assert not metrics.completed
        assert "budget" in metrics.abort_reason
        assert metrics.stats.vectors_processed < 150

    def test_time_budget_aborts_run(self):
        vectors = generate_profile_corpus("rcv1", num_vectors=200, seed=3)
        metrics = run_algorithm("STR-INV", vectors, 0.5, 0.001,
                                dataset="rcv1", time_budget=0.0)
        assert not metrics.completed

    def test_sweep_covers_the_grid(self):
        results = sweep(["STR-L2"], ["tweets"], TINY_SCALE)
        assert len(results) == len(TINY_SCALE.thetas) * len(TINY_SCALE.decays)
        combos = {(metrics.threshold, metrics.decay) for metrics in results}
        assert combos == {(t, d) for t in TINY_SCALE.thetas for d in TINY_SCALE.decays}

    def test_throughput_property(self):
        vectors = generate_profile_corpus("tweets", num_vectors=50, seed=4)
        metrics = run_algorithm("STR-L2", vectors, 0.7, 0.1)
        assert metrics.throughput > 0


class TestTables:
    ROWS = [
        {"dataset": "a", "theta": 0.5, "time_s": 1.0},
        {"dataset": "a", "theta": 0.9, "time_s": 0.25},
        {"dataset": "b", "theta": 0.5, "time_s": 2.0},
    ]

    def test_render_table_contains_all_cells(self):
        text = render_table(self.ROWS, title="demo")
        assert "demo" in text
        assert "dataset" in text
        assert "0.25" in text

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_render_formats_booleans_and_large_numbers(self):
        text = render_table([{"ok": True, "count": 1234567.0}])
        assert "yes" in text
        assert "1.23e+06" in text

    def test_pivot(self):
        wide = pivot(self.ROWS, index="dataset", column="theta", value="time_s")
        assert wide[0]["dataset"] == "a"
        assert wide[0]["0.5"] == 1.0
        assert wide[0]["0.9"] == 0.25

    def test_series_by(self):
        series = series_by(self.ROWS, group="dataset", x="theta", y="time_s")
        assert series["a"] == [(0.5, 1.0), (0.9, 0.25)]
        assert series["b"] == [(0.5, 2.0)]


class TestRegression:
    def test_perfect_line(self):
        fit = fit_line([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_noisy_line_has_lower_r_squared(self):
        fit = fit_line([0, 1, 2, 3, 4], [0, 2, 1, 3, 10])
        assert 0.0 <= fit.r_squared <= 1.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_line([1, 2], [1])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_line([1], [1])


class TestExperiments:
    def test_registry_covers_every_table_and_figure(self):
        expected = {"table1", "table2"} | {f"figure{i}" for i in range(2, 10)}
        assert expected <= set(ALL_EXPERIMENTS)

    def test_run_experiment_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_table1_rows(self):
        result = table1(TINY_SCALE)
        assert len(result.rows) == 4
        assert {row["dataset"] for row in result.rows} == set(DATASETS)
        assert "density_pct" in result.rows[0]
        assert result.render()

    @pytest.mark.slow
    def test_table2_fractions_are_valid(self):
        result = table2(TINY_SCALE)
        for row in result.rows:
            for key, value in row.items():
                if key in ("dataset", "budget_ops"):
                    continue
                assert 0.0 <= value <= 1.0

    def test_figure2_ratio_rows(self):
        result = figure2(TINY_SCALE)
        assert result.rows
        for row in result.rows:
            assert row["entries_MB"] >= 0
            assert row["tau"] > 0

    def test_figure9_produces_a_fit_per_dataset(self):
        result = figure9(TINY_SCALE)
        assert {row["dataset"] for row in result.rows} == set(DATASETS)
        for row in result.rows:
            assert row["points"] == len(TINY_SCALE.thetas) * len(TINY_SCALE.decays)

    @pytest.mark.slow
    def test_ablation_bounds_has_all_indexes(self):
        result = ablation_bounds(TINY_SCALE)
        assert {row["indexing"] for row in result.rows} == {"INV", "AP", "L2AP", "L2"}

    def test_ablation_baseline_pair_counts_agree(self):
        result = ablation_baseline(TINY_SCALE)
        for row in result.rows:
            assert row["pairs"] == row["baseline_pairs"]
