"""Unit tests for similar pairs, collectors and statistics."""

from __future__ import annotations

import pytest

from repro.core.results import (
    CallbackCollector,
    CountingCollector,
    JoinStatistics,
    ListCollector,
    SimilarPair,
    TopKCollector,
)


def pair(a: int, b: int, similarity: float = 0.9) -> SimilarPair:
    return SimilarPair.make(a, b, similarity)


class TestSimilarPair:
    def test_make_orders_ids(self):
        assert pair(5, 2).key == (2, 5)
        assert pair(2, 5).key == (2, 5)

    def test_pairs_with_same_ids_compare_equal(self):
        assert pair(1, 2, 0.8) == pair(2, 1, 0.95)

    def test_carries_metadata(self):
        p = SimilarPair.make(1, 2, 0.8, time_delta=3.0, dot=0.9, reported_at=10.0)
        assert p.time_delta == 3.0
        assert p.dot == 0.9
        assert p.reported_at == 10.0

    def test_ordering_by_ids(self):
        assert sorted([pair(3, 4), pair(1, 2)])[0].key == (1, 2)


class TestJoinStatistics:
    def test_defaults_to_zero(self):
        stats = JoinStatistics()
        assert stats.entries_traversed == 0
        assert stats.operations == 0

    def test_merge_accumulates(self):
        a = JoinStatistics(entries_traversed=5, pairs_output=1, max_index_size=10)
        b = JoinStatistics(entries_traversed=7, pairs_output=2, max_index_size=4)
        a.merge(b)
        assert a.entries_traversed == 12
        assert a.pairs_output == 3
        assert a.max_index_size == 10

    def test_operations_aggregate(self):
        stats = JoinStatistics(entries_traversed=3, full_similarities=2,
                               entries_indexed=4, reindexed_entries=1)
        assert stats.operations == 10

    def test_as_dict_round_trip(self):
        stats = JoinStatistics(entries_traversed=3)
        payload = stats.as_dict()
        assert payload["entries_traversed"] == 3
        assert set(payload) >= {"vectors_processed", "pairs_output", "elapsed_seconds"}


class TestCollectors:
    def test_list_collector(self):
        collector = ListCollector()
        collector(pair(1, 2))
        collector(pair(3, 4))
        assert len(collector) == 2
        assert collector.keys() == {(1, 2), (3, 4)}

    def test_counting_collector(self):
        collector = CountingCollector()
        for _ in range(5):
            collector(pair(1, 2))
        assert collector.count == 5

    def test_callback_collector(self):
        seen = []
        collector = CallbackCollector(seen.append)
        collector(pair(1, 2))
        assert seen[0].key == (1, 2)

    def test_top_k_keeps_most_similar(self):
        collector = TopKCollector(2)
        collector(pair(1, 2, 0.5))
        collector(pair(3, 4, 0.9))
        collector(pair(5, 6, 0.7))
        kept = [p.similarity for p in collector.pairs]
        assert kept == [0.9, 0.7]

    def test_top_k_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            TopKCollector(0)

    def test_top_k_with_fewer_pairs_than_k(self):
        collector = TopKCollector(10)
        collector(pair(1, 2, 0.6))
        assert [p.key for p in collector.pairs] == [(1, 2)]
