"""Tests for the exact baselines (brute force and sliding window)."""

from __future__ import annotations

import math

import pytest

from repro.baselines.brute_force import brute_force_all_pairs, brute_force_time_dependent
from repro.baselines.sliding_window import SlidingWindowJoin, sliding_window_join
from repro.core.results import JoinStatistics
from repro.core.similarity import time_horizon
from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError
from tests.conftest import random_vectors


def vec(vector_id: int, t: float, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, t, entries)


class TestBruteForceAllPairs:
    def test_finds_duplicate_pair(self):
        a = vec(1, 0.0, {1: 1.0})
        b = vec(2, 5.0, {1: 1.0})
        pairs = brute_force_all_pairs([a, b], 0.9)
        assert [pair.key for pair in pairs] == [(1, 2)]
        assert pairs[0].similarity == pytest.approx(1.0)

    def test_threshold_is_inclusive(self):
        # Un-normalised vectors whose dot product is exactly representable.
        a = SparseVector(1, 0.0, {1: 1.0}, normalize=False)
        b = SparseVector(2, 0.0, {1: 0.5, 2: 0.25}, normalize=False)   # dot exactly 0.5
        assert len(brute_force_all_pairs([a, b], 0.5)) == 1
        assert len(brute_force_all_pairs([a, b], 0.5000001)) == 0

    def test_invalid_threshold(self):
        with pytest.raises(InvalidParameterError):
            brute_force_all_pairs([], 0.0)

    def test_number_of_comparisons_is_quadratic(self):
        stats = JoinStatistics()
        brute_force_all_pairs(random_vectors(20, seed=1), 0.9, stats=stats)
        assert stats.full_similarities == 20 * 19 // 2


class TestBruteForceTimeDependent:
    def test_applies_decay(self):
        a = vec(1, 0.0, {1: 1.0})
        b = vec(2, 10.0, {1: 1.0})
        pairs = brute_force_time_dependent([a, b], 0.3, 0.1)
        assert pairs[0].similarity == pytest.approx(math.exp(-1.0))

    def test_zero_decay_equals_all_pairs(self):
        vectors = random_vectors(30, seed=2)
        with_time = {p.key for p in brute_force_time_dependent(vectors, 0.6, 0.0)}
        plain = {p.key for p in brute_force_all_pairs(vectors, 0.6)}
        assert with_time == plain

    def test_pairs_beyond_horizon_excluded(self):
        threshold, decay = 0.7, 0.1
        tau = time_horizon(threshold, decay)
        a = vec(1, 0.0, {1: 1.0})
        b = vec(2, tau * 1.01, {1: 1.0})
        assert brute_force_time_dependent([a, b], threshold, decay) == []


class TestSlidingWindowJoin:
    def test_matches_brute_force(self):
        vectors = random_vectors(80, seed=3)
        threshold, decay = 0.6, 0.05
        expected = {p.key for p in brute_force_time_dependent(vectors, threshold, decay)}
        got = {p.key for p in sliding_window_join(vectors, threshold, decay)}
        assert got == expected

    def test_window_is_pruned(self):
        join = SlidingWindowJoin(0.7, 1.0)   # tau ~ 0.36
        for i in range(50):
            join.process(vec(i, float(i), {1: 1.0}))
        assert join.window_size <= 2

    def test_window_keeps_everything_with_tiny_decay(self):
        join = SlidingWindowJoin(0.7, 1e-9)
        for i in range(10):
            join.process(vec(i, float(i), {i: 1.0}))
        assert join.window_size == 10

    def test_run_generator_interface(self):
        vectors = [vec(1, 0.0, {1: 1.0}), vec(2, 0.5, {1: 1.0})]
        join = SlidingWindowJoin(0.7, 0.1)
        pairs = list(join.run(vectors))
        assert len(pairs) == 1
        assert join.stats.vectors_processed == 2

    def test_does_fewer_comparisons_than_brute_force_when_window_is_short(self):
        vectors = random_vectors(100, seed=4)
        stats = JoinStatistics()
        join = SlidingWindowJoin(0.8, 0.5, stats=stats)
        for vector in vectors:
            join.process(vector)
        assert stats.full_similarities < 100 * 99 // 2
