"""Unit tests for the streaming prefix-filtering indexes (L2, L2AP, AP)."""

from __future__ import annotations

import math

import pytest

from repro.baselines.brute_force import brute_force_time_dependent
from repro.core.similarity import time_horizon
from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError
from repro.indexes.allpairs import APStreamingIndex
from repro.indexes.inverted import InvertedStreamingIndex
from repro.indexes.l2 import L2StreamingIndex
from repro.indexes.l2ap import L2APStreamingIndex
from tests.conftest import random_vectors

STREAMING_CLASSES = [L2StreamingIndex, L2APStreamingIndex, APStreamingIndex]


def vec(vector_id: int, t: float, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, t, entries)


class TestBasicBehaviour:
    @pytest.mark.parametrize("cls", STREAMING_CLASSES)
    def test_near_duplicates_are_reported_with_decay(self, cls):
        index = cls(0.7, 0.1)
        index.process(vec(1, 0.0, {1: 1.0, 2: 1.0}))
        pairs = index.process(vec(2, 1.0, {1: 1.0, 2: 1.0}))
        assert len(pairs) == 1
        assert pairs[0].similarity == pytest.approx(math.exp(-0.1))
        assert pairs[0].dot == pytest.approx(1.0)
        assert pairs[0].time_delta == pytest.approx(1.0)

    @pytest.mark.parametrize("cls", STREAMING_CLASSES)
    def test_dissimilar_items_not_reported(self, cls):
        index = cls(0.7, 0.1)
        index.process(vec(1, 0.0, {1: 1.0}))
        assert index.process(vec(2, 0.1, {2: 1.0})) == []

    @pytest.mark.parametrize("cls", STREAMING_CLASSES)
    def test_items_beyond_horizon_not_reported(self, cls):
        threshold, decay = 0.7, 0.1
        tau = time_horizon(threshold, decay)
        index = cls(threshold, decay)
        index.process(vec(1, 0.0, {1: 1.0}))
        assert index.process(vec(2, tau * 1.01, {1: 1.0})) == []

    @pytest.mark.parametrize("cls", STREAMING_CLASSES)
    def test_zero_decay_is_rejected(self, cls):
        with pytest.raises(InvalidParameterError):
            cls(0.7, 0.0)

    def test_l2_keeps_time_ordered_lists(self):
        index = L2StreamingIndex(0.6, 0.1)
        assert index.time_ordered is True

    def test_l2ap_lists_are_not_time_ordered(self):
        index = L2APStreamingIndex(0.6, 0.1)
        assert index.time_ordered is False


class TestTimeFiltering:
    @pytest.mark.parametrize("cls", STREAMING_CLASSES)
    def test_index_size_stays_bounded_on_spread_out_stream(self, cls):
        threshold, decay = 0.6, 0.5   # tau ~ 1.02
        index = cls(threshold, decay)
        for i in range(200):
            index.process(vec(i, float(i), {i % 7: 1.0, 7 + i % 5: 0.7, 20 + i % 3: 0.3}))
        # With a horizon around one time unit and unit-spaced arrivals, only a
        # handful of postings (bounded by the number of live dimensions, not
        # by the stream length) can be alive at any moment.
        assert index.size <= 60
        assert index.residual_size <= 60

    @pytest.mark.parametrize("cls", STREAMING_CLASSES)
    def test_residual_entries_are_evicted(self, cls):
        index = cls(0.9, 1.0)
        index.process(vec(1, 0.0, {1: 1.0, 2: 0.1, 3: 0.1}))
        index.process(vec(2, 100.0, {1: 1.0, 2: 0.1, 3: 0.1}))
        assert len(index._residual) <= 1


class TestEquivalenceWithBruteForce:
    @pytest.mark.parametrize("cls", STREAMING_CLASSES)
    @pytest.mark.parametrize("threshold,decay", [(0.5, 0.05), (0.7, 0.01), (0.9, 0.2)])
    def test_matches_brute_force(self, cls, threshold, decay):
        vectors = random_vectors(90, seed=29)
        expected = {pair.key for pair in brute_force_time_dependent(vectors, threshold, decay)}
        index = cls(threshold, decay)
        got = set()
        for vector in vectors:
            for pair in index.process(vector):
                assert pair.similarity >= threshold
                got.add(pair.key)
        assert got == expected

    @pytest.mark.parametrize("cls", STREAMING_CLASSES)
    def test_similarities_are_exact(self, cls):
        vectors = random_vectors(60, seed=31)
        threshold, decay = 0.5, 0.05
        by_id = {vector.vector_id: vector for vector in vectors}
        index = cls(threshold, decay)
        for vector in vectors:
            for pair in index.process(vector):
                x, y = by_id[pair.id_a], by_id[pair.id_b]
                expected = x.dot(y) * math.exp(-decay * abs(x.timestamp - y.timestamp))
                assert pair.similarity == pytest.approx(expected)


class TestPruningEffectiveness:
    def test_l2_traverses_no_more_entries_than_inv(self):
        vectors = random_vectors(120, seed=37)
        threshold, decay = 0.8, 0.01
        inv = InvertedStreamingIndex(threshold, decay)
        l2 = L2StreamingIndex(threshold, decay)
        for vector in vectors:
            inv.process(vector)
            l2.process(vector)
        assert l2.stats.entries_traversed <= inv.stats.entries_traversed
        assert l2.stats.full_similarities <= inv.stats.full_similarities

    def test_l2_index_is_smaller_than_inv(self):
        vectors = random_vectors(120, seed=41)
        threshold, decay = 0.8, 0.001
        inv = InvertedStreamingIndex(threshold, decay)
        l2 = L2StreamingIndex(threshold, decay)
        for vector in vectors:
            inv.process(vector)
            l2.process(vector)
        assert l2.stats.max_index_size <= inv.stats.max_index_size

    def test_l2_never_reindexes(self):
        vectors = random_vectors(100, seed=43)
        index = L2StreamingIndex(0.7, 0.01)
        for vector in vectors:
            index.process(vector)
        assert index.stats.reindexings == 0
        assert index.stats.reindexed_entries == 0
