"""Unit tests for the time-dependent similarity and parameter helpers."""

from __future__ import annotations

import math

import pytest

from repro.core.similarity import (
    JoinParameters,
    cosine_similarity,
    decay_factor,
    decay_for_horizon,
    time_dependent_similarity,
    time_horizon,
)
from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError


def vec(vector_id: int, t: float, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, t, entries)


class TestCosineSimilarity:
    def test_identical_vectors(self):
        a = vec(1, 0.0, {1: 1.0, 2: 2.0})
        b = vec(2, 5.0, {1: 1.0, 2: 2.0})
        assert cosine_similarity(a, b) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(vec(1, 0.0, {1: 1.0}), vec(2, 0.0, {2: 1.0})) == 0.0


class TestDecayFactor:
    def test_no_gap_means_no_decay(self):
        assert decay_factor(0.5, 0.0) == 1.0

    def test_zero_decay_rate(self):
        assert decay_factor(0.0, 1000.0) == 1.0

    def test_decay_value(self):
        assert decay_factor(0.1, 10.0) == pytest.approx(math.exp(-1.0))

    def test_negative_gap_rejected(self):
        with pytest.raises(InvalidParameterError):
            decay_factor(0.1, -1.0)


class TestTimeDependentSimilarity:
    def test_reduces_to_cosine_at_zero_gap(self):
        a = vec(1, 3.0, {1: 1.0, 2: 1.0})
        b = vec(2, 3.0, {1: 1.0, 2: 1.0})
        assert time_dependent_similarity(a, b, 0.5) == pytest.approx(1.0)

    def test_reduces_to_cosine_at_zero_decay(self):
        a = vec(1, 0.0, {1: 1.0, 2: 1.0})
        b = vec(2, 100.0, {1: 1.0})
        assert time_dependent_similarity(a, b, 0.0) == pytest.approx(a.dot(b))

    def test_decays_with_time_gap(self):
        a = vec(1, 0.0, {1: 1.0})
        b = vec(2, 10.0, {1: 1.0})
        assert time_dependent_similarity(a, b, 0.1) == pytest.approx(math.exp(-1.0))

    def test_symmetric_in_time(self):
        a = vec(1, 0.0, {1: 1.0})
        b = vec(2, 7.0, {1: 1.0})
        assert (time_dependent_similarity(a, b, 0.2)
                == pytest.approx(time_dependent_similarity(b, a, 0.2)))


class TestTimeHorizon:
    def test_formula(self):
        assert time_horizon(0.5, 0.1) == pytest.approx(math.log(2.0) / 0.1)

    def test_zero_decay_gives_infinite_horizon(self):
        assert time_horizon(0.5, 0.0) == math.inf

    def test_threshold_one_gives_zero_horizon(self):
        assert time_horizon(1.0, 0.1) == 0.0

    def test_horizon_shrinks_with_larger_decay(self):
        assert time_horizon(0.5, 0.1) < time_horizon(0.5, 0.01)

    def test_horizon_shrinks_with_larger_threshold(self):
        assert time_horizon(0.9, 0.1) < time_horizon(0.5, 0.1)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(InvalidParameterError):
            time_horizon(0.0, 0.1)
        with pytest.raises(InvalidParameterError):
            time_horizon(1.5, 0.1)

    def test_negative_decay_rejected(self):
        with pytest.raises(InvalidParameterError):
            time_horizon(0.5, -0.1)

    def test_pairs_beyond_horizon_cannot_be_similar(self):
        threshold, decay = 0.7, 0.05
        tau = time_horizon(threshold, decay)
        a = vec(1, 0.0, {1: 1.0})
        b = vec(2, tau * 1.001, {1: 1.0})
        assert time_dependent_similarity(a, b, decay) < threshold


class TestDecayForHorizon:
    def test_round_trip_with_time_horizon(self):
        threshold, horizon = 0.8, 25.0
        decay = decay_for_horizon(threshold, horizon)
        assert time_horizon(threshold, decay) == pytest.approx(horizon)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(InvalidParameterError):
            decay_for_horizon(0.8, 0.0)
        with pytest.raises(InvalidParameterError):
            decay_for_horizon(0.8, math.inf)


class TestJoinParameters:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            JoinParameters(threshold=2.0, decay=0.1)
        with pytest.raises(InvalidParameterError):
            JoinParameters(threshold=0.5, decay=-1.0)

    def test_horizon_property(self):
        params = JoinParameters(threshold=0.5, decay=0.1)
        assert params.horizon == pytest.approx(time_horizon(0.5, 0.1))

    def test_from_horizon_follows_paper_methodology(self):
        params = JoinParameters.from_horizon(0.6, 120.0)
        assert params.horizon == pytest.approx(120.0)
        assert params.threshold == 0.6

    def test_is_similar(self):
        params = JoinParameters(threshold=0.9, decay=0.1)
        a = vec(1, 0.0, {1: 1.0})
        near = vec(2, 0.5, {1: 1.0})
        far = vec(3, 50.0, {1: 1.0})
        assert params.is_similar(a, near)
        assert not params.is_similar(a, far)

    def test_within_horizon(self):
        params = JoinParameters(threshold=0.5, decay=0.1)
        assert params.within_horizon(params.horizon * 0.99)
        assert not params.within_horizon(params.horizon * 1.01)

    def test_similarity_matches_free_function(self):
        params = JoinParameters(threshold=0.5, decay=0.2)
        a = vec(1, 0.0, {1: 1.0, 3: 1.0})
        b = vec(2, 2.0, {1: 1.0})
        assert params.similarity(a, b) == pytest.approx(
            time_dependent_similarity(a, b, 0.2)
        )
