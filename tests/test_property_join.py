"""Property-based tests of the end-to-end join algorithms (hypothesis).

The generated streams are small but adversarial (arbitrary sparse vectors,
arbitrary inter-arrival gaps); on every one of them each framework/index
combination must return exactly the brute-force answer.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import brute_force_time_dependent
from repro.core.join import create_join
from repro.core.similarity import time_horizon
from repro.core.vector import SparseVector

values = st.floats(min_value=0.05, max_value=5.0, allow_nan=False, allow_infinity=False)
entries = st.dictionaries(st.integers(min_value=0, max_value=25), values,
                          min_size=1, max_size=6)
gaps = st.floats(min_value=0.0, max_value=30.0, allow_nan=False, allow_infinity=False)
streams = st.lists(st.tuples(entries, gaps), min_size=2, max_size=25)
thresholds = st.sampled_from([0.5, 0.7, 0.9])
decays = st.sampled_from([0.01, 0.1, 0.5])

ALGORITHMS = ["STR-INV", "STR-L2", "STR-L2AP", "MB-INV", "MB-L2", "MB-L2AP"]


def build_stream(raw_stream) -> list[SparseVector]:
    vectors = []
    timestamp = 0.0
    for index, (raw, gap) in enumerate(raw_stream):
        timestamp += gap
        vectors.append(SparseVector(index, timestamp, raw))
    return vectors


class TestJoinProperties:
    @given(streams, thresholds, decays, st.sampled_from(ALGORITHMS))
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, raw_stream, threshold, decay, algorithm):
        vectors = build_stream(raw_stream)
        expected = {p.key for p in brute_force_time_dependent(vectors, threshold, decay)}
        join = create_join(algorithm, threshold, decay)
        got = {p.key for p in join.run(vectors)}
        assert got == expected

    @given(streams, thresholds, decays)
    @settings(max_examples=60, deadline=None)
    def test_str_reports_no_pair_beyond_horizon(self, raw_stream, threshold, decay):
        vectors = build_stream(raw_stream)
        tau = time_horizon(threshold, decay)
        join = create_join("STR-L2", threshold, decay)
        for pair in join.run(vectors):
            assert pair.time_delta <= tau + 1e-9

    @given(streams, thresholds, decays)
    @settings(max_examples=60, deadline=None)
    def test_reported_similarities_are_exact_and_above_threshold(self, raw_stream,
                                                                 threshold, decay):
        vectors = build_stream(raw_stream)
        by_id = {vector.vector_id: vector for vector in vectors}
        join = create_join("STR-L2AP", threshold, decay)
        for pair in join.run(vectors):
            x, y = by_id[pair.id_a], by_id[pair.id_b]
            truth = x.dot(y) * math.exp(-decay * abs(x.timestamp - y.timestamp))
            assert pair.similarity >= threshold - 1e-9
            assert math.isclose(pair.similarity, truth, rel_tol=1e-9, abs_tol=1e-12)

    @given(streams, thresholds, decays)
    @settings(max_examples=60, deadline=None)
    def test_mb_and_str_agree(self, raw_stream, threshold, decay):
        vectors = build_stream(raw_stream)
        str_keys = {p.key for p in create_join("STR-L2", threshold, decay).run(vectors)}
        mb_keys = {p.key for p in create_join("MB-L2", threshold, decay).run(vectors)}
        assert str_keys == mb_keys

    @given(streams, thresholds, decays)
    @settings(max_examples=40, deadline=None)
    def test_index_state_stays_within_horizon(self, raw_stream, threshold, decay):
        vectors = build_stream(raw_stream)
        join = create_join("STR-L2", threshold, decay)
        tau = join.horizon
        for vector in vectors:
            join.process(vector)
        # After processing the final vector, no residual entry may be older
        # than the horizon relative to that vector.
        last_time = vectors[-1].timestamp
        for entry in join.index._residual.entries():
            assert last_time - entry.timestamp <= tau + 1e-9
