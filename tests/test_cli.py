"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets.io import read_vectors


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["profiles"]).command == "profiles"
        args = parser.parse_args(["run", "--profile", "tweets", "--theta", "0.8"])
        assert args.command == "run"
        assert args.theta == 0.8

    def test_run_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_service_commands_parse(self):
        parser = build_parser()
        serve = parser.parse_args(["serve", "--port", "0",
                                   "--checkpoint-dir", "ckpts"])
        assert serve.command == "serve"
        assert serve.checkpoint_dir == "ckpts"
        ingest = parser.parse_args(["ingest", "--session", "s",
                                    "--profile", "tweets",
                                    "--backpressure", "drop"])
        assert ingest.command == "ingest"
        assert ingest.backpressure == "drop"
        results = parser.parse_args(["results", "--session", "s", "--follow"])
        assert results.follow
        drain = parser.parse_args(["drain", "--session", "s"])
        assert drain.session == "s"

    def test_approx_flags_parse_on_run_profile_and_ingest(self):
        parser = build_parser()
        for base in (["run", "--profile", "tweets"],
                     ["profile", "--profile", "tweets"],
                     ["ingest", "--session", "s", "--profile", "tweets"]):
            args = parser.parse_args(base + ["--approx", "minhash",
                                             "--approx-bands", "8",
                                             "--approx-rows", "4"])
            assert args.approx == "minhash"
            assert args.approx_bands == 8
            assert args.approx_rows == 4

    def test_client_commands_require_a_session(self):
        for command in ("ingest", "results", "drain"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command])


class TestCommands:
    def test_profiles(self, capsys):
        assert main(["profiles"]) == 0
        output = capsys.readouterr().out
        for name in ("webspam", "rcv1", "blogs", "tweets", "hashtags"):
            assert name in output

    def test_backends(self, capsys):
        from repro.backends import available_backends, default_backend

        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        for name in available_backends():
            assert name in output
        assert default_backend() in output

    def test_run_with_explicit_backend(self, capsys):
        assert main(["run", "--profile", "tweets", "--num-vectors", "60",
                     "--algorithm", "STR-L2", "--backend", "python"]) == 0
        output = capsys.readouterr().out
        assert "STR-L2[python]" in output

    def test_profile_prints_stage_breakdown(self, capsys):
        assert main(["profile", "--profile", "tweets", "--num-vectors", "50",
                     "--algorithm", "STR-L2AP", "--theta", "0.6",
                     "--decay", "0.05"]) == 0
        output = capsys.readouterr().out
        for stage in ("scan", "filter", "verify", "maintenance"):
            assert stage in output
        assert "Per-stage breakdown" in output
        assert "vectors/s" in output

    def test_profile_with_explicit_backend(self, capsys):
        assert main(["profile", "--profile", "tweets", "--num-vectors", "40",
                     "--algorithm", "STR-INV", "--backend", "python"]) == 0
        assert "python+profile" in capsys.readouterr().out

    def test_profile_rejects_minibatch_algorithms(self, capsys):
        assert main(["profile", "--profile", "tweets", "--num-vectors", "40",
                     "--algorithm", "MB-L2"]) == 2
        assert "STR framework" in capsys.readouterr().err

    def test_generate_and_stats_and_convert(self, tmp_path, capsys):
        text_path = tmp_path / "corpus.txt"
        assert main(["generate", "--profile", "tweets", "--num-vectors", "30",
                     "--seed", "3", "--output", str(text_path)]) == 0
        assert text_path.exists()
        assert len(list(read_vectors(text_path))) == 30

        assert main(["stats", "--input", str(text_path)]) == 0
        assert "Dataset statistics" in capsys.readouterr().out

        binary_path = tmp_path / "corpus.bin"
        assert main(["convert", str(text_path), str(binary_path)]) == 0
        assert len(list(read_vectors(binary_path))) == 30

    def test_stats_from_profile(self, capsys):
        assert main(["stats", "--profile", "tweets", "--num-vectors", "25"]) == 0
        assert "tweets" in capsys.readouterr().out

    def test_run_on_profile(self, capsys):
        assert main(["run", "--profile", "tweets", "--num-vectors", "60",
                     "--algorithm", "STR-L2", "--theta", "0.6", "--decay", "0.05",
                     "--show-pairs", "2"]) == 0
        output = capsys.readouterr().out
        assert "STR-L2" in output
        assert "pairs" in output

    def test_run_on_file(self, tmp_path, capsys):
        path = tmp_path / "corpus.txt"
        main(["generate", "--profile", "tweets", "--num-vectors", "30",
              "--output", str(path)])
        capsys.readouterr()
        assert main(["run", "--input", str(path), "--algorithm", "MB-INV",
                     "--theta", "0.7", "--decay", "0.1"]) == 0
        assert "MB-INV" in capsys.readouterr().out

    def test_run_rejects_workers_for_minibatch_algorithms(self, capsys):
        assert main(["run", "--profile", "tweets", "--num-vectors", "30",
                     "--algorithm", "MB-INV", "--workers", "2"]) == 2
        err = capsys.readouterr().err
        assert "STR framework only" in err
        assert "MB-INV" in err

    def test_run_rejects_workers_for_unknown_algorithms(self, capsys):
        assert main(["run", "--profile", "tweets", "--num-vectors", "30",
                     "--algorithm", "BOGUS", "--workers", "2"]) == 2
        assert "cannot parse algorithm" in capsys.readouterr().err

    def test_run_rejects_nonpositive_workers(self, capsys):
        assert main(["run", "--profile", "tweets", "--num-vectors", "30",
                     "--algorithm", "STR-L2", "--workers", "0"]) == 2
        assert ">= 1" in capsys.readouterr().err

    def test_ingest_rejects_workers_for_minibatch_algorithms(self, capsys):
        assert main(["ingest", "--session", "s", "--profile", "tweets",
                     "--num-vectors", "10", "--algorithm", "MB-L2",
                     "--workers", "2"]) == 2
        assert "STR framework only" in capsys.readouterr().err

    def test_run_with_approx_carries_the_spec_in_the_label(self, capsys):
        assert main(["run", "--profile", "tweets", "--num-vectors", "80",
                     "--algorithm", "STR-L2AP", "--theta", "0.6",
                     "--decay", "0.05", "--approx", "minhash",
                     "--approx-bands", "8"]) == 0
        assert "STR-L2AP~minhash:8x2" in capsys.readouterr().out

    def test_profile_with_approx_reports_sketch_rejections(self, capsys):
        assert main(["profile", "--profile", "tweets", "--num-vectors", "60",
                     "--algorithm", "STR-L2AP", "--theta", "0.6",
                     "--decay", "0.05", "--approx", "minhash"]) == 0
        assert "candidates_sketch_pruned" in capsys.readouterr().out

    def test_run_rejects_approx_for_inv_algorithms(self, capsys):
        assert main(["run", "--profile", "tweets", "--num-vectors", "10",
                     "--algorithm", "STR-INV", "--approx", "minhash"]) == 2
        err = capsys.readouterr().err
        assert "prefix-filter" in err
        assert "STR-INV" in err

    def test_run_rejects_approx_with_workers(self, capsys):
        assert main(["run", "--profile", "tweets", "--num-vectors", "10",
                     "--algorithm", "STR-L2AP", "--approx", "minhash",
                     "--workers", "2"]) == 2
        assert "sharded engine" in capsys.readouterr().err

    def test_run_rejects_geometry_flags_without_a_method(self, capsys):
        assert main(["run", "--profile", "tweets", "--num-vectors", "10",
                     "--approx-bands", "8"]) == 2
        assert "--approx" in capsys.readouterr().err

    def test_run_rejects_oversized_signatures(self, capsys):
        assert main(["run", "--profile", "tweets", "--num-vectors", "10",
                     "--approx", "minhash", "--approx-bands", "64",
                     "--approx-rows", "8"]) == 2
        assert "signature too long" in capsys.readouterr().err

    def test_run_rejects_unknown_approx_methods(self, capsys):
        assert main(["run", "--profile", "tweets", "--num-vectors", "10",
                     "--approx", "bogus"]) == 2
        assert "unknown approx method" in capsys.readouterr().err

    def test_malformed_approx_env_fails_cleanly(self, capsys, monkeypatch):
        monkeypatch.setenv("SSSJ_APPROX", "minhash:axb")
        assert main(["run", "--profile", "tweets", "--num-vectors", "10"]) == 2
        assert "SSSJ_APPROX" in capsys.readouterr().err

    def test_approx_env_enables_the_tier(self, capsys, monkeypatch):
        monkeypatch.setenv("SSSJ_APPROX", "minhash:8x2")
        assert main(["run", "--profile", "tweets", "--num-vectors", "60",
                     "--algorithm", "STR-L2AP", "--theta", "0.6",
                     "--decay", "0.05"]) == 0
        assert "~minhash:8x2" in capsys.readouterr().out

    def test_ingest_rejects_approx_for_inv_algorithms(self, capsys):
        assert main(["ingest", "--session", "s", "--profile", "tweets",
                     "--num-vectors", "10", "--algorithm", "MB-INV",
                     "--approx", "minhash"]) == 2
        assert "prefix-filter" in capsys.readouterr().err

    def test_serve_ingest_results_drain_round_trip(self, tmp_path, capsys):
        import threading

        from repro.service import ServiceClient, serve as service_serve

        server, _ = service_serve(port=0, checkpoint_dir=tmp_path)
        thread = threading.Thread(target=server.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        try:
            host, port = server.address
            assert main(["ingest", "--host", host, "--port", str(port),
                         "--session", "cli", "--profile", "tweets",
                         "--num-vectors", "60", "--theta", "0.6",
                         "--decay", "0.05"]) == 0
            assert "ingested 60 vectors" in capsys.readouterr().out
            assert main(["drain", "--host", host, "--port", str(port),
                         "--session", "cli"]) == 0
            out = capsys.readouterr().out
            assert "drained: 60 vectors processed" in out
            assert "latency" in out
            assert main(["results", "--host", host, "--port", str(port),
                         "--session", "cli"]) == 0
            assert "session drained" in capsys.readouterr().out
        finally:
            with ServiceClient(*server.address) as client:
                client.shutdown()
            thread.join(timeout=10)

    def test_results_against_a_missing_session_fails_cleanly(self, capsys):
        import threading

        from repro.service import ServiceClient, serve as service_serve

        server, _ = service_serve(port=0)
        thread = threading.Thread(target=server.serve_until_shutdown,
                                  daemon=True)
        thread.start()
        try:
            host, port = server.address
            assert main(["results", "--host", host, "--port", str(port),
                         "--session", "ghost"]) == 1
            assert "no session" in capsys.readouterr().err
        finally:
            with ServiceClient(*server.address) as client:
                client.shutdown()
            thread.join(timeout=10)

    def test_sweep(self, capsys):
        assert main(["sweep", "--profile", "tweets", "--num-vectors", "40",
                     "--algorithms", "STR-L2,MB-L2", "--thetas", "0.6,0.9",
                     "--decays", "0.05"]) == 0
        output = capsys.readouterr().out
        assert "STR-L2" in output
        assert "MB-L2" in output

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.3"]) == 0
        assert "table1" in capsys.readouterr().out

    @pytest.mark.slow
    def test_experiment_with_plot(self, capsys):
        assert main(["experiment", "figure8", "--scale", "0.1", "--plot"]) == 0
        output = capsys.readouterr().out
        assert "legend:" in output
        assert "figure8" in output

    def test_experiment_rejects_unknown_id(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure42"])
