"""Tests for the ASCII chart renderer used by the figure experiments."""

from __future__ import annotations

from repro.bench.plotting import ascii_chart, chart_from_series


class TestAsciiChart:
    SERIES = {
        "fast": [(0.5, 1.0), (0.7, 0.6), (0.9, 0.2)],
        "slow": [(0.5, 2.0), (0.7, 1.8), (0.9, 1.5)],
    }

    def test_contains_title_and_legend(self):
        chart = ascii_chart(self.SERIES, title="demo chart", x_label="theta",
                            y_label="seconds")
        assert "demo chart" in chart
        assert "legend:" in chart
        assert "fast" in chart and "slow" in chart
        assert "seconds" in chart

    def test_uses_distinct_markers(self):
        chart = ascii_chart(self.SERIES)
        assert "o" in chart
        assert "x" in chart

    def test_axis_labels_show_data_range(self):
        chart = ascii_chart(self.SERIES, x_label="theta")
        assert "0.5" in chart
        assert "0.9" in chart
        assert "2" in chart    # max y

    def test_respects_requested_size(self):
        chart = ascii_chart(self.SERIES, width=30, height=8)
        plot_lines = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_lines) == 8
        assert all(len(line.split("|", 1)[1]) == 30 for line in plot_lines)

    def test_log_x_axis(self):
        series = {"s": [(1e-4, 4.0), (1e-3, 3.0), (1e-2, 2.0), (1e-1, 1.0)]}
        chart = ascii_chart(series, log_x=True)
        assert "0.0001" in chart
        assert "0.1" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({"empty": []}, title="nothing")

    def test_single_point(self):
        chart = ascii_chart({"one": [(1.0, 1.0)]})
        assert "o" in chart

    def test_non_finite_points_are_ignored(self):
        chart = ascii_chart({"s": [(1.0, 1.0), (float("nan"), 2.0), (2.0, float("inf"))]})
        assert "o" in chart


class TestChartFromSeries:
    ROWS = [
        {"dataset": "rcv1", "theta": 0.5, "time_s": 1.0},
        {"dataset": "rcv1", "theta": 0.9, "time_s": 0.3},
        {"dataset": "tweets", "theta": 0.5, "time_s": 0.6},
        {"dataset": "tweets", "theta": 0.9, "time_s": 0.2},
    ]

    def test_groups_rows_into_series(self):
        chart = chart_from_series(self.ROWS, group="dataset", x="theta", y="time_s",
                                  title="time vs theta")
        assert "rcv1" in chart
        assert "tweets" in chart
        assert "time vs theta" in chart
