"""Tests for the re-indexing behaviour of the streaming L2AP index.

Re-indexing (Section 5.3) restores the prefix-filtering invariant whenever
the online maximum vector ``m`` grows.  These tests exercise the specific
scenario it exists for: an early vector leaves part of its mass in the
residual (because the maxima were small when it arrived), then a later
vector raises the maxima, and a query that only overlaps the re-indexed
dimensions must still find the pair.
"""

from __future__ import annotations

from repro.baselines.brute_force import brute_force_time_dependent
from repro.core.vector import SparseVector
from repro.indexes.l2ap import L2APStreamingIndex
from tests.conftest import random_vectors


def vec(vector_id: int, t: float, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, t, entries)


class TestReindexing:
    def test_reindexing_counter_increments_when_maxima_grow(self):
        index = L2APStreamingIndex(0.6, 0.01)
        # A first vector with small values on many dimensions: the AP bound
        # (driven by the still-small maxima) keeps a prefix un-indexed.
        index.process(vec(1, 0.0, {i: 0.3 + 0.01 * i for i in range(10)}))
        # A second vector with a much larger weight on a low dimension grows
        # the maxima and forces a rescan of the stored residuals.
        index.process(vec(2, 1.0, {0: 5.0, 50: 1.0}))
        assert index.stats.reindexings >= 1

    def test_no_reindexing_when_maxima_do_not_grow(self):
        index = L2APStreamingIndex(0.6, 0.01)
        index.process(vec(1, 0.0, {1: 1.0, 2: 1.0}))
        index.process(vec(2, 1.0, {1: 0.5, 2: 0.5}))  # identical direction, same maxima
        assert index.stats.reindexings == 0

    def test_reindexed_entries_move_from_residual_to_postings(self):
        index = L2APStreamingIndex(0.7, 0.001)
        index.process(vec(1, 0.0, {i: 0.4 for i in range(8)}))
        residual_before = index.residual_size
        size_before = index.size
        index.process(vec(2, 0.1, {0: 9.0, 1: 9.0, 100: 1.0}))
        if index.stats.reindexed_entries:
            assert index.size > size_before
            assert index.residual_size <= residual_before

    def test_query_overlapping_only_reindexed_dimensions_finds_pair(self):
        # Construct the adversarial case: y's residual contains dims {1, 2},
        # a later heavy vector grows m on those dims, and the query shares
        # *only* those dims with y.  Without re-indexing the pair would be
        # missed; with it, the pair must be reported.
        threshold, decay = 0.60, 0.001
        index = L2APStreamingIndex(threshold, decay)
        y = vec(1, 0.0, {1: 0.55, 2: 0.55, 3: 0.45, 4: 0.44})
        booster = vec(2, 0.5, {1: 3.0, 2: 3.0, 90: 1.0})
        query = vec(3, 1.0, {1: 0.7, 2: 0.7, 80: 0.14})
        stream = [y, booster, query]
        expected = {pair.key for pair in brute_force_time_dependent(stream, threshold, decay)}
        got = set()
        for vector in stream:
            got.update(pair.key for pair in index.process(vector))
        assert got == expected
        assert (1, 3) in got

    def test_correctness_on_adversarial_random_stream(self):
        # A stream whose value scale keeps growing forces frequent maxima
        # updates and therefore frequent re-indexing.
        base = random_vectors(60, seed=51)
        vectors = []
        for i, vector in enumerate(base):
            scaled = {dim: value * (1.0 + 0.1 * i) for dim, value in vector}
            vectors.append(vec(vector.vector_id, vector.timestamp, scaled))
        threshold, decay = 0.6, 0.02
        expected = {pair.key for pair in brute_force_time_dependent(vectors, threshold, decay)}
        index = L2APStreamingIndex(threshold, decay)
        got = set()
        for vector in vectors:
            got.update(pair.key for pair in index.process(vector))
        assert got == expected

    def test_reindexing_keeps_exact_similarities(self):
        vectors = random_vectors(50, seed=53)
        threshold, decay = 0.5, 0.05
        by_id = {vector.vector_id: vector for vector in vectors}
        index = L2APStreamingIndex(threshold, decay)
        import math

        for vector in vectors:
            for pair in index.process(vector):
                x, y = by_id[pair.id_a], by_id[pair.id_b]
                expected = x.dot(y) * math.exp(-decay * abs(x.timestamp - y.timestamp))
                assert abs(pair.similarity - expected) < 1e-9
