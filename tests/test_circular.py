"""Unit tests for the circular buffer backing the posting lists."""

from __future__ import annotations

import pytest

from repro.indexes.circular import CircularBuffer


class TestAppendAndAccess:
    def test_starts_empty(self):
        buffer = CircularBuffer()
        assert len(buffer) == 0
        assert not buffer

    def test_append_and_len(self):
        buffer = CircularBuffer()
        for i in range(5):
            buffer.append(i)
        assert len(buffer) == 5

    def test_getitem_from_head(self):
        buffer = CircularBuffer()
        for i in range(5):
            buffer.append(i)
        assert buffer[0] == 0
        assert buffer[4] == 4

    def test_negative_index(self):
        buffer = CircularBuffer()
        for i in range(5):
            buffer.append(i)
        assert buffer[-1] == 4

    def test_out_of_range_raises(self):
        buffer = CircularBuffer()
        buffer.append(1)
        with pytest.raises(IndexError):
            _ = buffer[5]

    def test_iteration_oldest_to_newest(self):
        buffer = CircularBuffer()
        for i in range(4):
            buffer.append(i)
        assert list(buffer) == [0, 1, 2, 3]

    def test_iter_newest_first(self):
        buffer = CircularBuffer()
        for i in range(4):
            buffer.append(i)
        assert list(buffer.iter_newest_first()) == [3, 2, 1, 0]


class TestResizing:
    def test_capacity_doubles_when_full(self):
        buffer = CircularBuffer(capacity=8)
        for i in range(9):
            buffer.append(i)
        assert buffer.capacity == 16
        assert list(buffer) == list(range(9))

    def test_capacity_shrinks_when_sparse(self):
        buffer = CircularBuffer()
        for i in range(64):
            buffer.append(i)
        grown = buffer.capacity
        buffer.drop_oldest(60)
        assert buffer.capacity < grown
        assert list(buffer) == [60, 61, 62, 63]

    def test_capacity_never_below_minimum(self):
        buffer = CircularBuffer()
        buffer.append(1)
        buffer.drop_oldest(1)
        assert buffer.capacity >= 8

    def test_wrap_around_preserves_order(self):
        buffer = CircularBuffer(capacity=8)
        for i in range(6):
            buffer.append(i)
        buffer.drop_oldest(4)
        for i in range(6, 12):
            buffer.append(i)
        assert list(buffer) == [4, 5, 6, 7, 8, 9, 10, 11]


class TestDropAndKeep:
    def test_drop_oldest(self):
        buffer = CircularBuffer()
        for i in range(5):
            buffer.append(i)
        assert buffer.drop_oldest(2) == 2
        assert list(buffer) == [2, 3, 4]

    def test_drop_more_than_size(self):
        buffer = CircularBuffer()
        buffer.append(1)
        assert buffer.drop_oldest(10) == 1
        assert len(buffer) == 0

    def test_drop_zero_or_negative_is_noop(self):
        buffer = CircularBuffer()
        buffer.append(1)
        assert buffer.drop_oldest(0) == 0
        assert buffer.drop_oldest(-3) == 0
        assert len(buffer) == 1

    def test_keep_newest(self):
        buffer = CircularBuffer()
        for i in range(6):
            buffer.append(i)
        dropped = buffer.keep_newest(2)
        assert dropped == 4
        assert list(buffer) == [4, 5]

    def test_keep_newest_larger_than_size_is_noop(self):
        buffer = CircularBuffer()
        buffer.append(1)
        assert buffer.keep_newest(5) == 0
        assert list(buffer) == [1]

    def test_replace_all(self):
        buffer = CircularBuffer()
        for i in range(20):
            buffer.append(i)
        buffer.replace_all([100, 101])
        assert list(buffer) == [100, 101]

    def test_replace_all_with_empty(self):
        buffer = CircularBuffer()
        buffer.append(1)
        buffer.replace_all([])
        assert len(buffer) == 0

    def test_clear(self):
        buffer = CircularBuffer()
        for i in range(50):
            buffer.append(i)
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.capacity == 8

    def test_to_list_is_a_copy(self):
        buffer = CircularBuffer()
        buffer.append(1)
        copy = buffer.to_list()
        copy.append(2)
        assert len(buffer) == 1
