"""Differential tests for the approximate prefilter tier (repro.approx).

Three properties make the tier safe to offer:

1. **Disabled means exact** — with ``approx=None`` (the default) the
   engine is bitwise-identical across backends: same pairs in the same
   order with the same similarities/dots/deltas, same operation counters,
   and the sketch counter pinned at zero.
2. **Enabled means one-sided** — with the prefilter on, every *emitted*
   pair is still a true pair (verification stays exact; the filter can
   only lose pairs, never invent them), the emitted set is a subset of
   the exact answer, and both backends take bit-identical keep/reject
   decisions (same pairs, same counters).  Measured recall on the shared
   corpus must clear the configured floor.
3. **Checkpoints round-trip** — an approximate join checkpoints its
   canonical spec, restore regenerates the signatures from the residual
   entries, and a resumed run is indistinguishable from an uninterrupted
   one.

The hypothesis suites drive all three over adversarial streams; the
deterministic tests pin the recall floor and the scope fences.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SparseVector, available_backends
from repro.approx import ApproxConfig, SignatureScheme, parse_approx
from repro.core.checkpoint import restore_join, snapshot_join
from repro.core.join import create_join
from repro.core.similarity import JoinParameters
from repro.exceptions import InvalidParameterError
from tests.conftest import random_vectors
from tests.groundtruth import counters_without_time, engine_pairs

THETA, DECAY = 0.6, 0.05

#: Acceptance floor for the default sketch on the shared tweets corpus.
RECALL_FLOOR = 0.95

BACKENDS = [name for name in ("python", "numpy")
            if name in available_backends()]

APPROX_SPECS = ("minhash", "minhash:8x2", "wminhash:8x2", "wminhash:24x3",
                "simhash:8x2")

sparse_streams = st.lists(
    st.dictionaries(st.integers(min_value=0, max_value=30),
                    st.floats(min_value=0.05, max_value=1.0),
                    min_size=1, max_size=7),
    min_size=2, max_size=30,
)


def make_stream(entries):
    return [SparseVector(index, float(index) * 0.5, coords)
            for index, coords in enumerate(entries)]


def fingerprint(pairs):
    """Everything a pair carries, in report order — the bitwise identity."""
    return [(p.key, p.similarity, p.dot, p.time_delta) for p in pairs]


def true_similarity(by_id, pair, decay):
    x, y = by_id[pair.id_a], by_id[pair.id_b]
    return x.dot(y) * math.exp(-decay * abs(x.timestamp - y.timestamp))


# -- 1. disabled means exact ---------------------------------------------------


class TestDisabledIsExact:
    @settings(max_examples=15, deadline=None)
    @given(entries=sparse_streams,
           threshold=st.floats(min_value=0.3, max_value=0.99),
           decay=st.floats(min_value=0.05, max_value=1.0))
    def test_backends_are_bitwise_identical_with_approx_off(
            self, entries, threshold, decay):
        vectors = make_stream(entries)
        for algorithm in ("STR-L2AP", "STR-L2", "MB-L2AP"):
            runs = {backend: engine_pairs(vectors, threshold, decay,
                                          algorithm=algorithm,
                                          backend=backend, approx=None)
                    for backend in BACKENDS}
            reference_pairs, reference_stats = runs[BACKENDS[0]]
            assert reference_stats.candidates_sketch_pruned == 0
            for backend in BACKENDS[1:]:
                pairs, stats = runs[backend]
                assert fingerprint(pairs) == fingerprint(reference_pairs), \
                    (algorithm, backend)
                assert (counters_without_time(stats.as_dict())
                        == counters_without_time(reference_stats.as_dict())), \
                    (algorithm, backend)

    def test_parameters_with_approx_none_build_an_exact_join(self):
        params = JoinParameters(threshold=THETA, decay=DECAY, approx=None)
        join = params.create_join("STR-L2AP")
        assert join.approx is None
        assert join.index.kernel._sketch_scheme is None


# -- 2. enabled means one-sided ------------------------------------------------


class TestEnabledIsOneSided:
    @settings(max_examples=15, deadline=None)
    @given(entries=sparse_streams,
           threshold=st.floats(min_value=0.3, max_value=0.99),
           decay=st.floats(min_value=0.05, max_value=1.0),
           approx=st.sampled_from(APPROX_SPECS))
    def test_emitted_pairs_are_true_and_backends_agree(
            self, entries, threshold, decay, approx):
        vectors = make_stream(entries)
        by_id = {vector.vector_id: vector for vector in vectors}
        exact, _ = engine_pairs(vectors, threshold, decay,
                                algorithm="STR-L2AP", backend=BACKENDS[0])
        exact_keys = {pair.key for pair in exact}
        runs = {backend: engine_pairs(vectors, threshold, decay,
                                      algorithm="STR-L2AP", backend=backend,
                                      approx=approx)
                for backend in BACKENDS}
        reference_pairs, reference_stats = runs[BACKENDS[0]]
        for backend, (pairs, stats) in runs.items():
            for pair in pairs:
                # One-sided: everything emitted survives exact verification.
                assert pair.key in exact_keys, (backend, pair.key)
                assert true_similarity(by_id, pair, decay) \
                    >= threshold - 1e-9, (backend, pair.key)
            # Sketch decisions are a pure function of (vector, config):
            # both backends lose exactly the same pairs and count exactly
            # the same rejections.
            assert fingerprint(pairs) == fingerprint(reference_pairs), backend
            assert (counters_without_time(stats.as_dict())
                    == counters_without_time(reference_stats.as_dict())), \
                backend

    def test_recall_clears_the_floor_on_the_shared_corpus(self, tweets_corpus,
                                                          tweets_truth):
        exact_keys = tweets_truth.keys(THETA, DECAY)
        assert exact_keys, "corpus must produce pairs for recall to mean anything"
        pairs, stats = engine_pairs(tweets_corpus, THETA, DECAY,
                                    algorithm="STR-L2AP", approx="minhash")
        got = {pair.key for pair in pairs}
        assert got <= exact_keys  # no false positives, ever
        recall = len(got & exact_keys) / len(exact_keys)
        assert recall >= RECALL_FLOOR
        assert stats.candidates_sketch_pruned > 0  # the tier actually ran

    def test_sketch_counter_surfaces_in_stats_dict(self):
        vectors = random_vectors(60, seed=7)
        _, stats = engine_pairs(vectors, THETA, DECAY, algorithm="STR-L2AP",
                                approx="minhash:4x4")
        payload = stats.as_dict()
        assert "candidates_sketch_pruned" in payload
        assert payload["candidates_sketch_pruned"] == \
            stats.candidates_sketch_pruned


# -- 3. checkpoints round-trip -------------------------------------------------


class TestCheckpointRoundTrip:
    @settings(max_examples=10, deadline=None)
    @given(entries=sparse_streams,
           split=st.floats(min_value=0.1, max_value=0.9),
           backend=st.sampled_from(BACKENDS))
    def test_restored_approx_join_resumes_deterministically(
            self, entries, split, backend):
        vectors = make_stream(entries)
        split_at = max(1, int(len(vectors) * split))
        uninterrupted = create_join("STR-L2AP", THETA, DECAY, backend=backend,
                                    approx="minhash:8x2")
        expected = uninterrupted.feed(vectors)

        join = create_join("STR-L2AP", THETA, DECAY, backend=backend,
                           approx="minhash:8x2")
        before = join.feed(vectors[:split_at])
        state = snapshot_join(join)
        assert state["approx"] == "minhash:8x2"
        restored = restore_join(state)
        assert restored.approx == "minhash:8x2"
        after = restored.feed(vectors[split_at:])
        assert fingerprint(before + after) == fingerprint(expected)
        assert (counters_without_time(restored.stats.as_dict())
                == counters_without_time(uninterrupted.stats.as_dict()))

    def test_restore_regenerates_signatures_for_every_resident_vector(self):
        vectors = random_vectors(50, seed=13)
        join = create_join("STR-L2AP", THETA, DECAY, backend="python",
                           approx="minhash:8x2")
        join.feed(vectors)
        restored = restore_join(snapshot_join(join))
        kernel = restored.index.kernel
        resident = {entry.vector_id
                    for entry in restored.index._residual.entries()}
        assert resident  # the horizon keeps a tail of the stream alive
        assert set(kernel._sketch_sigs) >= resident
        original = join.index.kernel._sketch_sigs
        for vector_id in resident:
            assert kernel._sketch_sigs[vector_id] == original[vector_id]

    def test_approx_session_survives_kill_and_resume(self, tmp_path):
        from repro.service import JoinSession, SessionConfig

        vectors = random_vectors(80, seed=19)
        expected, expected_stats = engine_pairs(vectors, THETA, DECAY,
                                                algorithm="STR-L2AP",
                                                approx="minhash:8x2")
        ckpt = tmp_path / "approx.ckpt"
        config = SessionConfig(name="approx", threshold=THETA, decay=DECAY,
                               algorithm="STR-L2AP", approx="minhash:8x2",
                               batch_max_items=8, batch_max_delay=0.0)
        session = JoinSession(config, checkpoint_path=ckpt)
        session.ingest(vectors[:45])
        session.checkpoint_now()
        session.ingest(vectors[45:60])  # lost with the crash
        session.kill()

        resumed = JoinSession.resume(ckpt)
        assert resumed.config.approx == "minhash:8x2"
        assert resumed.join.approx == "minhash:8x2"
        resumed.ingest(vectors[resumed.processed:])
        resumed.drain()
        assert resumed.stats()["approx"] == "minhash:8x2"
        assert (counters_without_time(resumed.join.stats.as_dict())
                == counters_without_time(expected_stats.as_dict()))
        resumed.close()


# -- configuration plumbing and scope fences -----------------------------------


class TestConfiguration:
    def test_parse_approx_normalises_and_round_trips(self):
        config = parse_approx("MinHash:8x2")
        assert config == ApproxConfig(method="minhash", bands=8, rows=2)
        assert parse_approx(config.spec()) == config
        assert parse_approx(None) is None
        assert parse_approx("") is None
        assert parse_approx("simhash", bands=4, rows=4) \
            == ApproxConfig(method="simhash", bands=4, rows=4)

    @pytest.mark.parametrize("bad", [
        "bogus", "minhash:2", "minhash:axb", "minhash:8x2:zz",
        "minhash:0x4", "minhash:64x8",  # 512 lanes > 256 cap
    ])
    def test_parse_approx_rejects_malformed_specs(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_approx(bad)

    def test_geometry_overrides_require_a_method(self):
        with pytest.raises(InvalidParameterError):
            parse_approx(None, bands=8)

    def test_join_parameters_canonicalise_the_spec(self):
        params = JoinParameters(threshold=0.7, decay=0.01, approx="minhash")
        assert params.approx == "minhash:16x2"
        join = params.create_join("STR-L2AP")
        assert join.approx == "minhash:16x2"

    def test_inv_schemes_reject_approx(self):
        for algorithm in ("STR-INV", "MB-INV"):
            with pytest.raises(InvalidParameterError):
                create_join(algorithm, THETA, DECAY, approx="minhash")

    def test_sharded_engine_rejects_approx(self):
        with pytest.raises(InvalidParameterError):
            create_join("STR-L2AP", THETA, DECAY, approx="minhash", workers=2)

    @pytest.mark.skipif("numpy" not in available_backends(),
                        reason="NumPy backend unavailable")
    def test_non_fused_numpy_kernel_rejects_approx(self):
        from repro.backends.numpy_backend import NumpyKernel

        kernel = NumpyKernel(fused=False)
        with pytest.raises(InvalidParameterError):
            kernel.configure_approx(ApproxConfig())


class TestSignatureScheme:
    @pytest.mark.parametrize("method", ["minhash", "wminhash", "simhash"])
    def test_vectorised_and_pure_python_paths_agree(self, method):
        pytest.importorskip("numpy")
        config = ApproxConfig(method=method, bands=8, rows=2)
        vectorised = SignatureScheme(config)
        assert vectorised._np is not None
        portable = SignatureScheme(config)
        portable._np = None  # force the pure-Python path
        for vector in random_vectors(25, seed=3):
            assert vectorised.signature(vector) == portable.signature(vector)

    def test_identical_dimension_sets_always_match_under_minhash(self):
        scheme = SignatureScheme(ApproxConfig(method="minhash"))
        x = SparseVector(0, 0.0, {3: 0.9, 7: 0.2})
        y = SparseVector(1, 1.0, {3: 0.1, 7: 0.8})  # same dims, other weights
        assert scheme.signature(x) == scheme.signature(y)
        assert scheme.matches(scheme.signature(x), scheme.signature(y))

    def test_wminhash_is_scale_invariant_but_weight_sensitive(self):
        # The consistent-sampling race keys are uniform / weight², so a
        # uniform rescale divides every key by the same constant and the
        # per-lane winners — hence the signature — cannot change ...
        scheme = SignatureScheme(ApproxConfig(method="wminhash"))
        x = SparseVector(0, 0.0, {3: 0.9, 7: 0.2})
        scaled = SparseVector(1, 1.0, {3: 0.45, 7: 0.1})
        assert scheme.signature(x) == scheme.signature(scaled)
        # ... while redistributing mass between the dims changes which
        # dimension wins some lanes — unlike minhash, which is blind to
        # the weights entirely.
        reweighted = SparseVector(2, 2.0, {3: 0.1, 7: 0.8})
        assert scheme.signature(x) != scheme.signature(reweighted)

    def test_band_keys_tile_the_signature(self):
        config = ApproxConfig(method="minhash", bands=4, rows=3)
        scheme = SignatureScheme(config)
        signature = scheme.signature(SparseVector(0, 0.0, {1: 1.0, 5: 0.5}))
        keys = scheme.band_keys(signature)
        assert len(keys) == 4 and all(len(key) == 3 for key in keys)
        assert tuple(value for key in keys for value in key) == signature
