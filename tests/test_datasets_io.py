"""Tests for the text/binary dataset formats and the converter."""

from __future__ import annotations

import pytest

from repro.datasets.generator import generate_profile_corpus
from repro.datasets.io import (
    convert,
    read_binary,
    read_text,
    read_vectors,
    write_binary,
    write_text,
    write_vectors,
)
from repro.exceptions import DatasetFormatError


@pytest.fixture()
def corpus():
    return generate_profile_corpus("tweets", num_vectors=40, seed=21)


def assert_same_vectors(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.vector_id == y.vector_id
        assert x.timestamp == pytest.approx(y.timestamp)
        assert x.dims == y.dims
        for value_x, value_y in zip(x.values, y.values):
            assert value_x == pytest.approx(value_y, rel=1e-12)


class TestTextFormat:
    def test_round_trip(self, tmp_path, corpus):
        path = tmp_path / "corpus.txt"
        assert write_text(path, corpus) == len(corpus)
        assert_same_vectors(list(read_text(path)), corpus)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text("# a comment\n\n1 0.5 3:0.6 7:0.8\n")
        vectors = list(read_text(path))
        assert len(vectors) == 1
        assert vectors[0].vector_id == 1
        assert vectors[0].dims == (3, 7)

    def test_normalization_can_be_disabled(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text("1 0.0 1:3.0 2:4.0\n")
        raw = list(read_text(path, normalize=False))[0]
        assert raw.norm == pytest.approx(5.0)
        normalized = list(read_text(path))[0]
        assert normalized.norm == pytest.approx(1.0)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 0.0\n")
        with pytest.raises(DatasetFormatError):
            list(read_text(path))

    def test_malformed_coordinate_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 0.0 spam\n")
        with pytest.raises(DatasetFormatError):
            list(read_text(path))


class TestBinaryFormat:
    def test_round_trip(self, tmp_path, corpus):
        path = tmp_path / "corpus.bin"
        assert write_binary(path, corpus) == len(corpus)
        assert_same_vectors(list(read_binary(path)), corpus)

    def test_truncated_header_raises(self, tmp_path):
        path = tmp_path / "corpus.bin"
        path.write_bytes(b"short")
        with pytest.raises(DatasetFormatError):
            list(read_binary(path))

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "corpus.bin"
        path.write_bytes(b"NOTSSSJ1" + b"\x00" * 8)
        with pytest.raises(DatasetFormatError):
            list(read_binary(path))

    def test_truncated_record_raises(self, tmp_path, corpus):
        path = tmp_path / "corpus.bin"
        write_binary(path, corpus)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 7])
        with pytest.raises(DatasetFormatError):
            list(read_binary(path))


class TestDispatchAndConvert:
    def test_format_detected_from_extension(self, tmp_path, corpus):
        text_path = tmp_path / "corpus.txt"
        binary_path = tmp_path / "corpus.bin"
        write_vectors(text_path, corpus)
        write_vectors(binary_path, corpus)
        assert_same_vectors(list(read_vectors(text_path)), corpus)
        assert_same_vectors(list(read_vectors(binary_path)), corpus)

    def test_explicit_format_overrides_extension(self, tmp_path, corpus):
        path = tmp_path / "corpus.dat"
        write_vectors(path, corpus, fmt="binary")
        assert_same_vectors(list(read_vectors(path, fmt="binary")), corpus)

    def test_unknown_format_name(self, tmp_path, corpus):
        with pytest.raises(DatasetFormatError):
            write_vectors(tmp_path / "x.dat", corpus, fmt="parquet")

    def test_convert_text_to_binary(self, tmp_path, corpus):
        text_path = tmp_path / "corpus.txt"
        binary_path = tmp_path / "corpus.bin"
        write_text(text_path, corpus)
        assert convert(text_path, binary_path) == len(corpus)
        assert_same_vectors(list(read_binary(binary_path)), corpus)

    def test_convert_binary_to_text(self, tmp_path, corpus):
        binary_path = tmp_path / "corpus.bin"
        text_path = tmp_path / "back.txt"
        write_binary(binary_path, corpus)
        assert convert(binary_path, text_path) == len(corpus)
        assert_same_vectors(list(read_text(text_path)), corpus)
