"""Tests for the static all-pairs similarity search driver."""

from __future__ import annotations

import pytest

from repro.baselines.brute_force import brute_force_all_pairs
from repro.core.batch import all_pairs, build_batch_index
from repro.core.results import JoinStatistics
from repro.exceptions import UnknownAlgorithmError
from repro.indexes.base import available_batch_indexes
from tests.conftest import random_vectors


class TestAllPairs:
    @pytest.mark.parametrize("index", ["INV", "AP", "L2AP", "L2"])
    @pytest.mark.parametrize("threshold", [0.5, 0.8])
    def test_matches_brute_force(self, index, threshold):
        dataset = random_vectors(70, seed=61)
        expected = {pair.key for pair in brute_force_all_pairs(dataset, threshold)}
        got = {pair.key for pair in all_pairs(dataset, threshold, index=index)}
        assert got == expected

    def test_lowercase_index_names_accepted(self):
        dataset = random_vectors(30, seed=62)
        assert ({p.key for p in all_pairs(dataset, 0.7, index="l2ap")}
                == {p.key for p in all_pairs(dataset, 0.7, index="L2AP")})

    def test_unknown_index_raises(self):
        with pytest.raises(UnknownAlgorithmError):
            all_pairs(random_vectors(5), 0.7, index="FANCY")

    def test_stats_are_populated(self):
        dataset = random_vectors(50, seed=63)
        stats = JoinStatistics()
        all_pairs(dataset, 0.6, index="L2AP", stats=stats)
        assert stats.vectors_processed == 50
        assert stats.entries_indexed > 0
        assert stats.pairs_output >= 0

    def test_similarity_values_are_dot_products(self):
        dataset = random_vectors(40, seed=64)
        by_id = {vector.vector_id: vector for vector in dataset}
        for pair in all_pairs(dataset, 0.6, index="L2"):
            assert pair.similarity == pytest.approx(
                by_id[pair.id_a].dot(by_id[pair.id_b])
            )

    def test_empty_dataset(self):
        assert all_pairs([], 0.7, index="L2") == []

    def test_registry_exposes_all_four_schemes(self):
        assert set(available_batch_indexes()) >= {"INV", "AP", "L2AP", "L2"}


class TestBuildBatchIndex:
    def test_ap_based_indexes_get_a_max_vector(self):
        dataset = random_vectors(20, seed=65)
        index = build_batch_index("L2AP", 0.7, dataset)
        assert index._max_query is not None

    def test_l2_index_does_not_need_a_max_vector(self):
        dataset = random_vectors(20, seed=66)
        index = build_batch_index("L2", 0.7, dataset)
        assert index._max_query is None
