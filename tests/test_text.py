"""Tests for the text tokenizer and incremental vectorizer."""

from __future__ import annotations

import pytest

from repro.core.join import create_join
from repro.datasets.text import DEFAULT_STOP_WORDS, TextVectorizer, Tokenizer
from repro.exceptions import InvalidParameterError


class TestTokenizer:
    def test_lowercases_and_splits(self):
        tokens = Tokenizer().tokenize("Breaking News: Example Headline!")
        assert tokens == ["breaking", "news", "example", "headline"]

    def test_removes_stop_words(self):
        tokens = Tokenizer().tokenize("the cat and the hat")
        assert "the" not in tokens
        assert "and" not in tokens
        assert "cat" in tokens

    def test_stop_words_can_be_disabled(self):
        tokens = Tokenizer(stop_words=set()).tokenize("the cat")
        assert tokens == ["the", "cat"]

    def test_min_token_length(self):
        tokens = Tokenizer(min_token_length=4).tokenize("big cats sleep")
        assert tokens == ["cats", "sleep"]

    def test_keeps_hashtags_and_mentions(self):
        tokens = Tokenizer().tokenize("#breaking @newsdesk reports")
        assert "#breaking" in tokens
        assert "@newsdesk" in tokens

    def test_bigrams(self):
        tokens = Tokenizer(ngrams=2).tokenize("stream similarity join")
        assert "stream_similarity" in tokens
        assert "similarity_join" in tokens
        assert "stream" in tokens

    def test_invalid_ngrams(self):
        with pytest.raises(InvalidParameterError):
            Tokenizer(ngrams=0)

    def test_callable_interface(self):
        tokenizer = Tokenizer()
        assert tokenizer("hello world") == tokenizer.tokenize("hello world")

    def test_default_stop_words_are_lowercase(self):
        assert all(word == word.lower() for word in DEFAULT_STOP_WORDS)


class TestTextVectorizer:
    def test_produces_unit_vectors(self):
        vectorizer = TextVectorizer()
        vector = vectorizer.transform(1, 0.0, "fast streaming similarity join")
        assert vector is not None
        assert vector.is_normalized()

    def test_empty_document_returns_none(self):
        vectorizer = TextVectorizer()
        assert vectorizer.transform(1, 0.0, "the and of") is None
        assert vectorizer.transform(2, 0.0, "") is None

    def test_vocabulary_grows(self):
        vectorizer = TextVectorizer(use_idf=False)
        vectorizer.transform(1, 0.0, "alpha beta")
        size_after_first = vectorizer.vocabulary_size
        vectorizer.transform(2, 1.0, "gamma delta")
        assert vectorizer.vocabulary_size == size_after_first + 2

    def test_same_token_maps_to_same_dimension(self):
        vectorizer = TextVectorizer(use_idf=False)
        first = vectorizer.transform(1, 0.0, "alpha beta")
        second = vectorizer.transform(2, 1.0, "alpha gamma")
        shared = set(first.dims) & set(second.dims)
        assert len(shared) == 1
        assert vectorizer.dimension_of("alpha") in shared

    def test_hashing_mode_bounds_dimensionality(self):
        vectorizer = TextVectorizer(hashing_dimensions=64, use_idf=False)
        for i in range(20):
            vectorizer.transform(i, float(i), f"token{i} word{i} thing{i}")
        assert vectorizer.vocabulary_size == 64

    def test_hashing_dimensions_validation(self):
        with pytest.raises(InvalidParameterError):
            TextVectorizer(hashing_dimensions=1)

    def test_identical_documents_have_similarity_one(self):
        vectorizer = TextVectorizer(use_idf=False)
        a = vectorizer.transform(1, 0.0, "stream similarity self join")
        b = vectorizer.transform(2, 1.0, "stream similarity self join")
        assert a.dot(b) == pytest.approx(1.0)

    def test_idf_downweights_common_terms(self):
        vectorizer = TextVectorizer(use_idf=True, sublinear_tf=False)
        # "common" appears in every document, "rare" only in the last.
        for i in range(10):
            vectorizer.transform(i, float(i), "common filler words here")
        vector = vectorizer.transform(10, 10.0, "common rare")
        common_dim = vectorizer.dimension_of("common")
        rare_dim = vectorizer.dimension_of("rare")
        assert vector.get(rare_dim) > vector.get(common_dim)

    def test_documents_seen_counter(self):
        vectorizer = TextVectorizer()
        vectorizer.transform(1, 0.0, "alpha beta")
        vectorizer.transform(2, 1.0, "gamma")
        assert vectorizer.documents_seen == 2

    def test_transform_stream(self):
        vectorizer = TextVectorizer()
        documents = [(1, 0.0, "alpha beta"), (2, 1.0, "the of"), (3, 2.0, "gamma")]
        vectors = list(vectorizer.transform_stream(documents))
        assert [vector.vector_id for vector in vectors] == [1, 3]

    def test_end_to_end_with_streaming_join(self):
        vectorizer = TextVectorizer(use_idf=False)
        documents = [
            (0, 0.0, "earthquake hits the coastal city overnight"),
            (1, 0.3, "earthquake hits coastal city overnight, officials say"),
            (2, 1.0, "local team wins the championship game"),
            (3, 1.4, "breaking: earthquake hits coastal city overnight"),
        ]
        vectors = list(vectorizer.transform_stream(documents))
        join = create_join("STR-L2", 0.6, 0.05)
        keys = {pair.key for pair in join.run(vectors)}
        assert (0, 1) in keys
        assert all(2 not in key for key in keys)
