"""Unit tests for the sparse vector model."""

from __future__ import annotations

import math

import pytest

from repro.core.vector import SparseVector, dot_product, normalize_entries
from repro.exceptions import InvalidVectorError


class TestConstruction:
    def test_entries_are_sorted_by_dimension(self):
        vector = SparseVector(1, 0.0, {5: 1.0, 2: 2.0, 9: 3.0})
        assert vector.dims == (2, 5, 9)

    def test_values_align_with_dims(self):
        vector = SparseVector(1, 0.0, {5: 1.0, 2: 2.0}, normalize=False)
        assert vector.get(2) == 2.0
        assert vector.get(5) == 1.0

    def test_accepts_iterable_of_pairs(self):
        vector = SparseVector(1, 0.0, [(3, 1.0), (1, 2.0)], normalize=False)
        assert vector.dims == (1, 3)

    def test_zero_values_are_dropped(self):
        vector = SparseVector(1, 0.0, {1: 1.0, 2: 0.0})
        assert 2 not in vector

    def test_normalized_by_default(self):
        vector = SparseVector(1, 0.0, {1: 3.0, 2: 4.0})
        assert vector.norm == pytest.approx(1.0)
        assert vector.get(1) == pytest.approx(0.6)
        assert vector.get(2) == pytest.approx(0.8)

    def test_unnormalized_when_requested(self):
        vector = SparseVector(1, 0.0, {1: 3.0, 2: 4.0}, normalize=False)
        assert vector.norm == pytest.approx(5.0)

    def test_empty_vector_rejected(self):
        with pytest.raises(InvalidVectorError):
            SparseVector(1, 0.0, {})

    def test_all_zero_vector_rejected(self):
        with pytest.raises(InvalidVectorError):
            SparseVector(1, 0.0, {1: 0.0})

    def test_negative_value_rejected(self):
        with pytest.raises(InvalidVectorError):
            SparseVector(1, 0.0, {1: -1.0})

    def test_negative_dimension_rejected(self):
        with pytest.raises(InvalidVectorError):
            SparseVector(1, 0.0, {-1: 1.0})

    def test_negative_timestamp_rejected(self):
        with pytest.raises(InvalidVectorError):
            SparseVector(1, -1.0, {1: 1.0})

    def test_non_finite_value_rejected(self):
        with pytest.raises(InvalidVectorError):
            SparseVector(1, 0.0, {1: float("nan")})

    def test_non_finite_timestamp_rejected(self):
        with pytest.raises(InvalidVectorError):
            SparseVector(1, float("inf"), {1: 1.0})


class TestAccessors:
    def test_len_is_number_of_nonzeros(self):
        assert len(SparseVector(1, 0.0, {1: 1.0, 7: 2.0, 9: 3.0})) == 3

    def test_iteration_yields_sorted_pairs(self):
        vector = SparseVector(1, 0.0, {7: 2.0, 1: 1.0}, normalize=False)
        assert list(vector) == [(1, 1.0), (7, 2.0)]

    def test_contains(self):
        vector = SparseVector(1, 0.0, {1: 1.0, 7: 2.0})
        assert 1 in vector
        assert 2 not in vector

    def test_get_missing_returns_default(self):
        vector = SparseVector(1, 0.0, {1: 1.0})
        assert vector.get(99) == 0.0
        assert vector.get(99, default=-1.0) == -1.0

    def test_max_value(self):
        vector = SparseVector(1, 0.0, {1: 1.0, 2: 3.0}, normalize=False)
        assert vector.max_value == 3.0

    def test_value_sum(self):
        vector = SparseVector(1, 0.0, {1: 1.0, 2: 3.0}, normalize=False)
        assert vector.value_sum == pytest.approx(4.0)

    def test_to_dict_round_trip(self):
        entries = {1: 1.0, 5: 2.0}
        vector = SparseVector(1, 0.0, entries, normalize=False)
        assert vector.to_dict() == entries

    def test_equality_and_hash(self):
        a = SparseVector(1, 0.0, {1: 1.0, 2: 2.0})
        b = SparseVector(1, 0.0, {2: 2.0, 1: 1.0})
        c = SparseVector(2, 0.0, {1: 1.0, 2: 2.0})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_equality_against_other_type(self):
        assert SparseVector(1, 0.0, {1: 1.0}) != "not a vector"

    def test_is_normalized(self):
        assert SparseVector(1, 0.0, {1: 2.0}).is_normalized()
        assert not SparseVector(1, 0.0, {1: 2.0}, normalize=False).is_normalized()


class TestPrefixStatistics:
    def test_prefix_norm_before_first_position_is_zero(self):
        vector = SparseVector(1, 0.0, {1: 3.0, 2: 4.0}, normalize=False)
        assert vector.prefix_norm_before(0) == 0.0

    def test_prefix_norm_before_end_equals_norm(self):
        vector = SparseVector(1, 0.0, {1: 3.0, 2: 4.0}, normalize=False)
        assert vector.prefix_norm_before(2) == pytest.approx(5.0)

    def test_prefix_norms_are_monotone(self):
        vector = SparseVector(1, 0.0, {i: float(i + 1) for i in range(8)}, normalize=False)
        norms = [vector.prefix_norm_before(k) for k in range(len(vector) + 1)]
        assert norms == sorted(norms)

    def test_prefix_norm_before_dim(self):
        vector = SparseVector(1, 0.0, {2: 3.0, 5: 4.0}, normalize=False)
        assert vector.prefix_norm_before_dim(2) == 0.0
        assert vector.prefix_norm_before_dim(5) == pytest.approx(3.0)
        assert vector.prefix_norm_before_dim(100) == pytest.approx(5.0)

    def test_prefix_and_suffix_partition_the_vector(self):
        vector = SparseVector(1, 0.0, {1: 1.0, 3: 2.0, 8: 3.0}, normalize=False)
        prefix = vector.prefix(2)
        suffix = vector.suffix(2)
        assert prefix == {1: 1.0, 3: 2.0}
        assert suffix == {8: 3.0}
        assert {**prefix, **suffix} == vector.to_dict()

    def test_prefix_beyond_length_is_whole_vector(self):
        vector = SparseVector(1, 0.0, {1: 1.0}, normalize=False)
        assert vector.prefix(10) == {1: 1.0}

    def test_suffix_of_negative_start_is_whole_vector(self):
        vector = SparseVector(1, 0.0, {1: 1.0}, normalize=False)
        assert vector.suffix(-3) == {1: 1.0}


class TestDotProduct:
    def test_dot_of_disjoint_vectors_is_zero(self):
        a = SparseVector(1, 0.0, {1: 1.0})
        b = SparseVector(2, 0.0, {2: 1.0})
        assert a.dot(b) == 0.0

    def test_dot_of_identical_normalized_vectors_is_one(self):
        a = SparseVector(1, 0.0, {1: 2.0, 5: 3.0})
        b = SparseVector(2, 1.0, {1: 2.0, 5: 3.0})
        assert a.dot(b) == pytest.approx(1.0)

    def test_dot_matches_manual_computation(self):
        a = SparseVector(1, 0.0, {1: 1.0, 2: 2.0, 3: 3.0}, normalize=False)
        b = SparseVector(2, 0.0, {2: 4.0, 3: 5.0, 9: 1.0}, normalize=False)
        assert a.dot(b) == pytest.approx(2 * 4 + 3 * 5)

    def test_dot_is_symmetric(self):
        a = SparseVector(1, 0.0, {1: 0.3, 4: 0.8, 9: 0.1})
        b = SparseVector(2, 0.0, {1: 0.5, 9: 0.9})
        assert a.dot(b) == pytest.approx(b.dot(a))

    def test_dot_with_mapping(self):
        a = SparseVector(1, 0.0, {1: 1.0, 2: 2.0}, normalize=False)
        assert a.dot({1: 2.0, 7: 5.0}) == pytest.approx(2.0)

    def test_module_level_dot_product(self):
        a = SparseVector(1, 0.0, {1: 1.0})
        b = SparseVector(2, 0.0, {1: 1.0})
        assert dot_product(a, b) == pytest.approx(1.0)

    def test_cauchy_schwarz_holds(self):
        a = SparseVector(1, 0.0, {1: 0.2, 2: 0.9, 7: 0.4}, normalize=False)
        b = SparseVector(2, 0.0, {2: 0.8, 7: 0.7, 9: 0.3}, normalize=False)
        assert a.dot(b) <= a.norm * b.norm + 1e-12


class TestNormalizeEntries:
    def test_normalizes_to_unit_norm(self):
        entries = normalize_entries({1: 3.0, 2: 4.0})
        norm = math.sqrt(sum(v * v for v in entries.values()))
        assert norm == pytest.approx(1.0)

    def test_drops_zero_values(self):
        assert 2 not in normalize_entries({1: 1.0, 2: 0.0})

    def test_rejects_all_zero(self):
        with pytest.raises(InvalidVectorError):
            normalize_entries({1: 0.0})
