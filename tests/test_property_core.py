"""Property-based tests for the core data model (hypothesis)."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import (
    decay_for_horizon,
    time_dependent_similarity,
    time_horizon,
)
from repro.core.vector import SparseVector

# -- strategies -------------------------------------------------------------------

values = st.floats(min_value=0.01, max_value=10.0, allow_nan=False, allow_infinity=False)
entries = st.dictionaries(st.integers(min_value=0, max_value=200), values,
                          min_size=1, max_size=15)
timestamps = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
thresholds = st.floats(min_value=0.05, max_value=1.0, exclude_max=False)
decays = st.floats(min_value=1e-5, max_value=1.0)


def vector(vector_id: int, timestamp: float, raw: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, timestamp, raw)


# -- vector invariants ---------------------------------------------------------------


class TestVectorProperties:
    @given(entries, timestamps)
    def test_normalized_vectors_have_unit_norm(self, raw, t):
        assert math.isclose(vector(1, t, raw).norm, 1.0, rel_tol=1e-9)

    @given(entries)
    def test_dims_strictly_increasing(self, raw):
        v = vector(1, 0.0, raw)
        assert all(a < b for a, b in zip(v.dims, v.dims[1:]))

    @given(entries, entries)
    def test_dot_is_symmetric(self, raw_a, raw_b):
        a, b = vector(1, 0.0, raw_a), vector(2, 0.0, raw_b)
        assert math.isclose(a.dot(b), b.dot(a), rel_tol=1e-9, abs_tol=1e-12)

    @given(entries, entries)
    def test_cauchy_schwarz(self, raw_a, raw_b):
        a, b = vector(1, 0.0, raw_a), vector(2, 0.0, raw_b)
        assert a.dot(b) <= a.norm * b.norm + 1e-9

    @given(entries, entries)
    def test_cosine_similarity_bounded_by_one(self, raw_a, raw_b):
        a, b = vector(1, 0.0, raw_a), vector(2, 0.0, raw_b)
        assert -1e-9 <= a.dot(b) <= 1.0 + 1e-9

    @given(entries)
    def test_self_similarity_is_one(self, raw):
        a = vector(1, 0.0, raw)
        b = vector(2, 5.0, raw)
        assert math.isclose(a.dot(b), 1.0, rel_tol=1e-9)

    @given(entries)
    def test_prefix_norms_monotone_and_bounded(self, raw):
        v = vector(1, 0.0, raw)
        norms = [v.prefix_norm_before(k) for k in range(len(v) + 1)]
        assert all(x <= y + 1e-12 for x, y in zip(norms, norms[1:]))
        assert norms[-1] <= v.norm + 1e-12

    @given(entries)
    def test_prefix_plus_suffix_reconstructs_vector(self, raw):
        v = vector(1, 0.0, raw)
        for split in range(len(v) + 1):
            merged = {**v.prefix(split), **v.suffix(split)}
            assert merged == v.to_dict()

    @given(entries, st.integers(min_value=0, max_value=300))
    def test_get_agrees_with_to_dict(self, raw, dim):
        v = vector(1, 0.0, raw)
        assert v.get(dim) == v.to_dict().get(dim, 0.0)


# -- similarity invariants ---------------------------------------------------------------


class TestSimilarityProperties:
    @given(entries, entries, timestamps, timestamps, decays)
    def test_time_dependent_similarity_never_exceeds_cosine(self, raw_a, raw_b, ta, tb, decay):
        a, b = vector(1, ta, raw_a), vector(2, tb, raw_b)
        assert time_dependent_similarity(a, b, decay) <= a.dot(b) + 1e-12

    @given(entries, entries, timestamps, timestamps, decays)
    def test_similarity_is_symmetric(self, raw_a, raw_b, ta, tb, decay):
        a, b = vector(1, ta, raw_a), vector(2, tb, raw_b)
        assert math.isclose(time_dependent_similarity(a, b, decay),
                            time_dependent_similarity(b, a, decay),
                            rel_tol=1e-9, abs_tol=1e-12)

    @given(thresholds, decays)
    def test_horizon_round_trip(self, threshold, decay):
        tau = time_horizon(threshold, decay)
        if tau > 0 and math.isfinite(tau):
            recovered = decay_for_horizon(threshold, tau)
            assert math.isclose(recovered, decay, rel_tol=1e-9)

    @given(entries, thresholds, decays, timestamps,
           st.floats(min_value=1.0001, max_value=100.0))
    @settings(max_examples=60)
    def test_no_pair_beyond_horizon_is_similar(self, raw, threshold, decay, t0, factor):
        tau = time_horizon(threshold, decay)
        if not math.isfinite(tau) or tau <= 0:
            return
        gap = min(tau * factor, 1e12)
        a = vector(1, t0, raw)
        b = vector(2, t0 + gap, raw)
        if gap <= tau:   # numerical clamp can collapse the gap; skip those
            return
        assert time_dependent_similarity(a, b, decay) < threshold + 1e-12

    @given(entries, entries, timestamps, decays, decays)
    def test_similarity_decreases_with_decay(self, raw_a, raw_b, gap, d1, d2):
        lo, hi = min(d1, d2), max(d1, d2)
        a = vector(1, 0.0, raw_a)
        b = vector(2, gap, raw_b)
        assert (time_dependent_similarity(a, b, hi)
                <= time_dependent_similarity(a, b, lo) + 1e-12)
