"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vector import SparseVector
from repro.datasets.generator import generate_profile_corpus
from tests.groundtruth import rcv1_truth, tweets_truth  # noqa: F401 - fixtures


def make_vector(vector_id: int, timestamp: float, entries: dict[int, float],
                *, normalize: bool = True) -> SparseVector:
    """Small helper used across the suite to keep test bodies short."""
    return SparseVector(vector_id, timestamp, entries, normalize=normalize)


def accelerated_backends() -> list:
    """The non-reference backends as pytest params, skip-marked when absent.

    Parity suites parametrized over this list pin the compiled (numba)
    tier against the reference on machines that have numba installed —
    the CI numba job — at zero cost elsewhere: the numba params simply
    skip.  The interpreted-mode loop-logic coverage that runs everywhere
    lives in ``tests/test_numba_backend.py``.
    """
    from repro.backends import available_backends

    return [
        pytest.param(name, marks=pytest.mark.skipif(
            name not in available_backends(),
            reason=f"{name} backend unavailable"))
        for name in ("numpy", "numba")
    ]


def random_vectors(count: int, *, dimensions: int = 40, nnz: int = 6,
                   seed: int = 0, time_step: float = 1.0,
                   duplicate_probability: float = 0.3) -> list[SparseVector]:
    """Generate a small random stream with some near-duplicates.

    This is intentionally lighter-weight than the dataset generator: tests
    that only need "a plausible stream" use this to stay fast.
    """
    rng = np.random.default_rng(seed)
    vectors: list[SparseVector] = []
    for index in range(count):
        if vectors and rng.random() < duplicate_probability:
            base = vectors[int(rng.integers(len(vectors)))]
            entries = dict(base)
            victim = int(rng.integers(dimensions))
            entries[victim] = entries.get(victim, 0.0) + float(rng.uniform(0.05, 0.3))
        else:
            dims = rng.choice(dimensions, size=min(nnz, dimensions), replace=False)
            entries = {int(d): float(rng.uniform(0.1, 1.0)) for d in dims}
        vectors.append(SparseVector(index, index * time_step, entries))
    return vectors


@pytest.fixture
def tiny_stream() -> list[SparseVector]:
    """Four hand-built vectors with one obvious similar pair."""
    return [
        make_vector(0, 0.0, {1: 1.0, 2: 1.0}),
        make_vector(1, 1.0, {1: 1.0, 2: 1.0}),
        make_vector(2, 2.0, {5: 1.0}),
        make_vector(3, 10.0, {1: 1.0, 2: 1.0}),
    ]


@pytest.fixture
def small_random_stream() -> list[SparseVector]:
    """A deterministic 60-vector stream with near-duplicates."""
    return random_vectors(60, seed=7)


@pytest.fixture(scope="session")
def tweets_corpus() -> list[SparseVector]:
    """A small tweets-profile corpus shared by the integration tests."""
    return generate_profile_corpus("tweets", num_vectors=250, seed=11)


@pytest.fixture(scope="session")
def rcv1_corpus() -> list[SparseVector]:
    """A small rcv1-profile corpus shared by the integration tests."""
    return generate_profile_corpus("rcv1", num_vectors=150, seed=11)
