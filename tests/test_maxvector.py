"""Unit tests for the maximum-weight vectors m, m̂ and m̂^λ."""

from __future__ import annotations

import math

import pytest

from repro.core.vector import SparseVector
from repro.indexes.maxvector import DecayedMaxVector, MaxVector


def vec(vector_id: int, t: float, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, t, entries, normalize=False)


class TestMaxVector:
    def test_starts_empty(self):
        m = MaxVector()
        assert len(m) == 0
        assert m.get(3) == 0.0

    def test_update_tracks_maxima(self):
        m = MaxVector()
        m.update(vec(1, 0.0, {1: 0.5, 2: 0.2}))
        m.update(vec(2, 1.0, {1: 0.3, 2: 0.9}))
        assert m.get(1) == 0.5
        assert m.get(2) == 0.9

    def test_update_returns_grown_dimensions(self):
        m = MaxVector()
        assert m.update(vec(1, 0.0, {1: 0.5, 2: 0.2})) == [1, 2]
        assert m.update(vec(2, 1.0, {1: 0.4, 2: 0.7})) == [2]
        assert m.update(vec(3, 2.0, {1: 0.1})) == []

    def test_from_vectors(self):
        m = MaxVector.from_vectors([
            vec(1, 0.0, {1: 0.4}), vec(2, 0.0, {1: 0.6, 5: 0.2}),
        ])
        assert m.get(1) == 0.6
        assert m.get(5) == 0.2

    def test_merge_is_pointwise_max(self):
        a = MaxVector.from_vectors([vec(1, 0.0, {1: 0.4, 2: 0.9})])
        b = MaxVector.from_vectors([vec(2, 0.0, {1: 0.7, 3: 0.1})])
        a.merge(b)
        assert a.get(1) == 0.7
        assert a.get(2) == 0.9
        assert a.get(3) == 0.1

    def test_copy_is_independent(self):
        a = MaxVector.from_vectors([vec(1, 0.0, {1: 0.4})])
        b = a.copy()
        b.update(vec(2, 0.0, {1: 0.9}))
        assert a.get(1) == 0.4

    def test_dot_upper_bounds_any_indexed_vector(self):
        x = vec(10, 0.0, {1: 0.3, 2: 0.7})
        indexed = [vec(1, 0.0, {1: 0.5, 2: 0.1}), vec(2, 0.0, {2: 0.6})]
        m = MaxVector.from_vectors(indexed)
        for y in indexed:
            assert m.dot(x) >= x.dot(y) - 1e-12

    def test_as_dict(self):
        m = MaxVector.from_vectors([vec(1, 0.0, {3: 0.4})])
        assert m.as_dict() == {3: 0.4}


class TestDecayedMaxVector:
    def test_value_at_decays_over_time(self):
        m = DecayedMaxVector(decay=0.1)
        m.update(vec(1, 0.0, {1: 1.0}))
        assert m.value_at(1, 0.0) == pytest.approx(1.0)
        assert m.value_at(1, 10.0) == pytest.approx(math.exp(-1.0))

    def test_missing_dimension_is_zero(self):
        assert DecayedMaxVector(0.1).value_at(5, 10.0) == 0.0

    def test_len(self):
        m = DecayedMaxVector(0.1)
        m.update(vec(1, 0.0, {1: 1.0, 2: 1.0}))
        assert len(m) == 2

    def test_newer_smaller_value_can_dominate(self):
        m = DecayedMaxVector(decay=0.5)
        m.update(vec(1, 0.0, {1: 1.0}))
        m.update(vec(2, 10.0, {1: 0.5}))
        # At t=10, the old value has decayed to e^-5 ≈ 0.0067 < 0.5.
        assert m.value_at(1, 10.0) == pytest.approx(0.5)

    def test_older_larger_value_dominates_forever(self):
        m = DecayedMaxVector(decay=0.01)
        m.update(vec(1, 0.0, {1: 1.0}))
        m.update(vec(2, 1.0, {1: 0.95}))
        # The ratio of decayed values is constant, so the older vector keeps
        # dominating at any later instant.
        for now in (1.0, 5.0, 50.0):
            expected = max(1.0 * math.exp(-0.01 * now), 0.95 * math.exp(-0.01 * (now - 1.0)))
            assert m.value_at(1, now) == pytest.approx(expected)

    def test_is_upper_bound_on_decayed_values(self):
        decay = 0.2
        m = DecayedMaxVector(decay)
        vectors = [vec(i, float(i), {1: 0.1 + 0.2 * (i % 4)}) for i in range(10)]
        for vector in vectors:
            m.update(vector)
        now = 12.0
        best = max(v.get(1) * math.exp(-decay * (now - v.timestamp)) for v in vectors)
        assert m.value_at(1, now) >= best - 1e-12

    def test_dot_matches_per_dimension_values(self):
        decay = 0.1
        m = DecayedMaxVector(decay)
        m.update(vec(1, 0.0, {1: 0.8, 2: 0.3}))
        query = vec(9, 5.0, {1: 0.5, 2: 0.5})
        expected = 0.5 * m.value_at(1, 5.0) + 0.5 * m.value_at(2, 5.0)
        assert m.dot(query) == pytest.approx(expected)

    def test_value_before_timestamp_is_undecayed(self):
        m = DecayedMaxVector(0.5)
        m.update(vec(1, 10.0, {1: 0.7}))
        assert m.value_at(1, 5.0) == pytest.approx(0.7)

    def test_clear(self):
        m = DecayedMaxVector(0.5)
        m.update(vec(1, 0.0, {1: 0.7}))
        m.clear()
        assert len(m) == 0
