"""The compiled (numba) tier: loop-logic parity, fallback and warm-up.

The compiled backend's four JIT kernels are plain Python functions when
numba is absent (the ``@jit`` decorator degrades to the identity), and
``NumbaKernel(use_kernels=True)`` forces the kernel-function code path
regardless — so the *loop logic* numba compiles is pinned against the
reference backend on every machine, including ones without numba.  What
cannot be verified here (the machine-code speedup itself) is measured by
the ``l2ap_compiled_str`` benchmark gate on the CI numba job.
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SparseVector, available_backends, create_join, default_backend
from repro.backends import (
    backend_availability,
    get_backend,
    known_backends,
    probe_backends,
    warmup_backend,
)
from repro.core.results import JoinStatistics

pytestmark = pytest.mark.skipif("numpy" not in available_backends(),
                                reason="NumPy backend unavailable")

if "numpy" in available_backends():
    from repro.backends.numba_backend import NumbaKernel

    class InterpretedNumbaKernel(NumbaKernel):
        """Test-only registration: the kernel-function path, always forced.

        Registering this under its own name lets string-based entry points
        (the sharded engine's worker factory, ``create_join``) build fresh
        interpreted instances per index, respecting the one-kernel-per-index
        contract that sharing a single instance would break.
        """

        name = "numba-interpreted"

        def __init__(self, *, fused=True, arena_allocator=None,
                     use_kernels=None):
            super().__init__(fused=fused, arena_allocator=arena_allocator,
                             use_kernels=True)

    numba_missing = not NumbaKernel.available()
else:  # pragma: no cover - the module-level skip hides everything below
    numba_missing = True


@pytest.fixture()
def interpreted_backend():
    """Temporarily register the forced-interpreted kernel as a backend."""
    from repro.backends import _BACKENDS, register_backend

    register_backend(InterpretedNumbaKernel)
    try:
        yield InterpretedNumbaKernel.name
    finally:
        _BACKENDS.pop(InterpretedNumbaKernel.name, None)


PARITY_COUNTERS = ("candidates_generated", "full_similarities",
                   "entries_traversed", "entries_pruned", "entries_indexed",
                   "residual_entries", "reindexings", "reindexed_entries",
                   "candidates_sketch_pruned", "pairs_output")


def run_pairs(algorithm, vectors, threshold, decay, backend, approx=None):
    stats = JoinStatistics()
    join = create_join(algorithm, threshold, decay, stats=stats,
                       backend=backend, approx=approx)
    pairs = {pair.key: pair for pair in join.run(vectors)}
    return pairs, stats


def assert_interpreted_parity(algorithm, vectors, threshold, decay,
                              approx=None):
    """Kernel-function path (interpreted) against the reference backend."""
    reference, reference_stats = run_pairs(algorithm, vectors, threshold,
                                           decay, "python", approx)
    interpreted, interpreted_stats = run_pairs(
        algorithm, vectors, threshold, decay,
        InterpretedNumbaKernel(), approx)
    assert set(interpreted) == set(reference)
    for key, pair in reference.items():
        other = interpreted[key]
        assert other.similarity == pair.similarity, key
        assert other.dot == pair.dot, key
        assert other.time_delta == pair.time_delta, key
    for counter in PARITY_COUNTERS:
        assert (getattr(interpreted_stats, counter)
                == getattr(reference_stats, counter)), counter


sparse_streams = st.lists(
    st.dictionaries(st.integers(min_value=0, max_value=25),
                    st.floats(min_value=0.05, max_value=1.0),
                    min_size=1, max_size=6),
    min_size=2, max_size=30,
)


class TestInterpretedParity:
    """The compiled tier's loop logic, bitwise against the reference."""

    @pytest.mark.parametrize("algorithm",
                             ["STR-INV", "STR-L2", "STR-L2AP", "STR-AP"])
    def test_streaming_profiles(self, tweets_corpus, algorithm):
        assert_interpreted_parity(algorithm, tweets_corpus, 0.6, 0.05)

    def test_minibatch_via_registered_backend(self, rcv1_corpus,
                                              interpreted_backend):
        # MB builds a throw-away index per window, so parity must hold
        # through the string-registered backend (fresh kernel per index).
        for algorithm in ("MB-L2AP", "MB-INV"):
            reference, reference_stats = run_pairs(
                algorithm, rcv1_corpus, 0.7, 0.02, "python")
            interpreted, interpreted_stats = run_pairs(
                algorithm, rcv1_corpus, 0.7, 0.02, interpreted_backend)
            assert set(interpreted) == set(reference)
            for key, pair in reference.items():
                assert interpreted[key].similarity == pair.similarity, key
            for counter in PARITY_COUNTERS:
                assert (getattr(interpreted_stats, counter)
                        == getattr(reference_stats, counter)), counter

    @settings(max_examples=20, deadline=None)
    @given(entries=sparse_streams,
           threshold=st.floats(min_value=0.3, max_value=0.99),
           decay=st.floats(min_value=0.05, max_value=2.0))
    def test_expiring_streams(self, entries, threshold, decay):
        # Fast decay → constant expiry: the compiled leading run must
        # coexist with the lazy tail segments the NumPy path keeps.
        vectors = [SparseVector(index, float(index), coords)
                   for index, coords in enumerate(entries)]
        for algorithm in ("STR-L2AP", "STR-L2", "STR-INV"):
            assert_interpreted_parity(algorithm, vectors, threshold, decay)

    @settings(max_examples=10, deadline=None)
    @given(entries=sparse_streams)
    def test_theta_one(self, entries):
        vectors = [SparseVector(index, float(index // 3), coords)
                   for index, coords in enumerate(entries)]
        for algorithm in ("STR-L2AP", "STR-L2", "STR-INV"):
            assert_interpreted_parity(algorithm, vectors, 1.0, 0.5)

    def test_reindexing_with_expiry(self):
        # Growing maxima force STR-L2AP re-indexing while a short horizon
        # expires postings — the regime mixing lazy and physical removal.
        vectors = [
            SparseVector(index, float(index),
                         {dim: 1.0 + 0.06 * index
                          for dim in range(index % 5, index % 5 + 4)})
            for index in range(150)
        ]
        assert_interpreted_parity("STR-L2AP", vectors, 0.6, 0.08)

    def test_approx_regime_sketch_filter(self, tweets_corpus):
        # The compiled sketch application must drop exactly the postings
        # the NumPy mask/cumsum pipeline drops (same pairs, same
        # candidates_sketch_pruned count).
        assert_interpreted_parity("STR-L2AP", tweets_corpus, 0.6, 0.05,
                                  approx="wminhash:8x2")

    def test_sharded_serial_parity(self, interpreted_backend):
        # The coordinator applies shard partials through the compiled
        # apply_scan_partials path; serial execution keeps it in-process.
        from repro.shard import create_sharded_join

        vectors = [SparseVector(index, float(index),
                                {dim: 0.5 + 0.1 * (index % 4)
                                 for dim in range(index % 6, index % 6 + 4)})
                   for index in range(80)]
        reference, reference_stats = run_pairs("STR-L2AP", vectors, 0.5,
                                               0.05, "python")
        stats = JoinStatistics()
        with create_sharded_join("STR-L2AP", 0.5, 0.05, workers=3,
                                 stats=stats, backend=interpreted_backend,
                                 executor="serial") as join:
            sharded = {pair.key: pair for pair in join.run(vectors)}
        assert set(sharded) == set(reference)
        for key, pair in reference.items():
            assert sharded[key].similarity == pair.similarity, key
        for counter in ("candidates_generated", "full_similarities",
                        "entries_traversed", "entries_pruned", "pairs_output"):
            assert (getattr(stats, counter)
                    == getattr(reference_stats, counter)), counter


class TestFallbackSelection:
    """Graceful degradation when the compiled tier is requested but absent."""

    def test_numba_is_always_known(self):
        assert "numba" in known_backends()

    def test_availability_probe_reports_numba(self):
        rows = {row["name"]: row for row in probe_backends()}
        assert "numba" in rows
        row = rows["numba"]
        assert row["available"] == (not numba_missing)
        assert row["description"]
        if numba_missing:
            assert "numba" in row["reason"]

    def test_backend_availability(self):
        available, reason = backend_availability("numba")
        assert available == (not numba_missing)
        if numba_missing:
            assert reason

    @pytest.mark.skipif(not numba_missing, reason="numba is installed")
    def test_get_backend_falls_back_with_warning(self):
        from repro.backends import _FALLBACK_WARNED

        _FALLBACK_WARNED.discard("numba")  # the warning is once-per-process
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cls = get_backend("numba")
        assert cls.name == "numpy"
        fallback = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert fallback and "falling back to 'numpy'" in str(fallback[0].message)
        # Second resolution stays silent.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            get_backend("numba")
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]

    @pytest.mark.skipif(numba_missing, reason="numba not installed")
    def test_get_backend_returns_numba_when_available(self):
        assert get_backend("numba") is NumbaKernel

    def test_create_join_accepts_numba_spec_everywhere(self):
        # Library code (sessions, checkpoints, workers) may carry "numba"
        # from a machine that has it; construction must succeed here too.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            join = create_join("STR-L2", 0.7, 0.1, backend="numba")
        assert join.backend_name in ("numba", "numpy")

    def test_auto_never_picks_numba(self):
        override = os.environ.get("SSSJ_BACKEND", "").strip().lower()
        if not override or override == "auto":
            assert default_backend() == "numpy"

    def test_env_override_degrades_in_subprocess(self):
        code = (
            "import warnings; warnings.simplefilter('ignore'); "
            "import repro; print(repro.default_backend())"
        )
        env = dict(os.environ, SSSJ_BACKEND="numba",
                   PYTHONPATH="src" + os.pathsep + os.environ.get("PYTHONPATH", ""))
        result = subprocess.run([sys.executable, "-c", code], env=env,
                                capture_output=True, text=True,
                                cwd=os.path.dirname(os.path.dirname(__file__)))
        assert result.returncode == 0, result.stderr
        expected = "numpy" if numba_missing else "numba"
        assert result.stdout.strip() == expected

    def test_worker_factory_accepts_numba(self):
        from repro.shard.worker import make_worker_kernel

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            kernel = make_worker_kernel("numba")
        assert kernel.name in ("numba", "numpy")


class TestWarmupContract:
    """One-time JIT cost is explicit, idempotent and outside stage timings."""

    def test_kernel_warmup_is_idempotent(self):
        kernel = NumbaKernel()
        assert kernel.warmup_seconds is None
        first = kernel.warmup()
        assert isinstance(first, float) and first >= 0.0
        assert kernel.warmup() == first
        assert kernel.warmup_seconds == first

    def test_base_backends_warm_for_free(self):
        assert get_backend("python")().warmup() == 0.0
        assert get_backend("numpy")().warmup() == 0.0
        assert warmup_backend("numpy") == 0.0

    def test_profiling_wrapper_warms_inner_kernel(self):
        from repro.backends.profiling import ProfilingKernel

        wrapped = ProfilingKernel(NumbaKernel())
        assert isinstance(wrapped.warmup_seconds, float)
        assert wrapped.warmup_seconds >= 0.0

    def test_run_algorithm_records_warmup(self, tiny_stream):
        from repro.bench.runner import run_algorithm

        metrics = run_algorithm("STR-L2", tiny_stream, 0.6, 0.05,
                                backend="numpy")
        assert metrics.warmup_seconds == 0.0
        assert metrics.elapsed_seconds > 0.0

    def test_interpreted_kernels_exercise_cleanly(self):
        # The warm-up driver itself must run under plain Python too (it is
        # what the CI numba job compiles; a drift here would surface as a
        # TypingError at warm-up, not in production scans).
        from repro.backends.kernels.scan import exercise_kernels

        exercise_kernels()


class TestCompiledCLI:
    def test_backends_probe_lists_numba(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numba" in out
        if numba_missing:
            assert "numba is not installed" in out

    @pytest.mark.skipif(not numba_missing, reason="numba is installed")
    def test_explicit_numba_fails_fast(self, capsys):
        from repro.cli import main

        code = main(["run", "--profile", "tweets", "--num-vectors", "10",
                     "--backend", "numba"])
        assert code == 2
        err = capsys.readouterr().err
        assert "pip install numba" in err

    @pytest.mark.skipif(numba_missing, reason="numba not installed")
    def test_explicit_numba_runs(self, capsys):
        from repro.cli import main

        assert main(["run", "--profile", "tweets", "--num-vectors", "40",
                     "--backend", "numba", "--theta", "0.6"]) == 0
        assert "STR-L2" in capsys.readouterr().out
