"""Tests for the MiniBatch (MB) framework."""

from __future__ import annotations

import pytest

from repro.baselines.brute_force import brute_force_time_dependent
from repro.core.frameworks.minibatch import MiniBatchFramework
from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError
from tests.conftest import random_vectors


def vec(vector_id: int, t: float, entries: dict[int, float]) -> SparseVector:
    return SparseVector(vector_id, t, entries)


class TestWindowing:
    def test_requires_positive_decay(self):
        with pytest.raises(InvalidParameterError):
            MiniBatchFramework(0.7, 0.0, index="L2")

    def test_vectors_buffer_in_current_window(self):
        mb = MiniBatchFramework(0.7, 0.001, index="L2")  # huge horizon
        mb.process(vec(1, 0.0, {1: 1.0}))
        mb.process(vec(2, 1.0, {1: 1.0}))
        assert len(mb.current_window) == 2
        assert mb.previous_window == []

    def test_window_rotates_after_horizon(self):
        mb = MiniBatchFramework(0.7, 0.1, index="L2")   # tau ~ 3.57
        mb.process(vec(1, 0.0, {1: 1.0}))
        mb.process(vec(2, 10.0, {2: 1.0}))
        assert len(mb.previous_window) <= 1
        assert [v.vector_id for v in mb.current_window] == [2]

    def test_pairs_within_a_window_are_reported_after_it_closes(self):
        mb = MiniBatchFramework(0.7, 0.1, index="L2")   # tau ~ 3.57
        assert mb.process(vec(1, 0.0, {1: 1.0})) == []
        assert mb.process(vec(2, 1.0, {1: 1.0})) == []   # similar, same window
        # Nothing reported yet: MB defers to the window boundary.
        later = mb.process(vec(3, 10.0, {9: 1.0}))
        flushed = mb.flush()
        keys = {pair.key for pair in later} | {pair.key for pair in flushed}
        assert (1, 2) in keys

    def test_cross_window_pairs_are_reported(self):
        mb = MiniBatchFramework(0.7, 0.1, index="L2")   # tau ~ 3.57
        mb.process(vec(0, 0.0, {9: 1.0}))               # opens the first window
        mb.process(vec(1, 3.0, {1: 1.0}))               # late in the first window
        mb.process(vec(2, 4.0, {1: 1.0}))               # early in the second window
        pairs = mb.flush()
        assert {pair.key for pair in pairs} == {(1, 2)}

    def test_flush_on_empty_stream(self):
        mb = MiniBatchFramework(0.7, 0.1, index="L2")
        assert mb.flush() == []

    def test_gap_spanning_multiple_windows(self):
        mb = MiniBatchFramework(0.7, 0.5, index="L2")   # tau ~ 0.71
        mb.process(vec(1, 0.0, {1: 1.0}))
        # A vector arriving many horizons later must close several windows
        # without error and without reporting the stale pair.
        pairs = mb.process(vec(2, 50.0, {1: 1.0}))
        pairs += mb.flush()
        assert {pair.key for pair in pairs} == set()

    def test_index_rebuild_counter(self):
        mb = MiniBatchFramework(0.7, 0.5, index="L2")
        for i in range(10):
            mb.process(vec(i, float(i), {1: 1.0, i + 2: 0.5}))
        mb.flush()
        assert mb.stats.index_rebuilds >= 2


class TestReportingSemantics:
    def test_reported_similarity_is_time_decayed(self):
        import math

        mb = MiniBatchFramework(0.5, 0.1, index="INV")
        mb.process(vec(1, 0.0, {1: 1.0}))
        mb.process(vec(2, 1.0, {1: 1.0}))
        pairs = mb.flush()
        assert pairs[0].similarity == pytest.approx(math.exp(-0.1))
        assert pairs[0].dot == pytest.approx(1.0)

    def test_report_time_is_never_before_arrival(self):
        mb = MiniBatchFramework(0.5, 0.1, index="L2")
        vectors = random_vectors(40, seed=71)
        all_pairs = list(mb.run(vectors))
        by_id = {vector.vector_id: vector for vector in vectors}
        for pair in all_pairs:
            latest_arrival = max(by_id[pair.id_a].timestamp, by_id[pair.id_b].timestamp)
            assert pair.reported_at >= latest_arrival - 1e-9


class TestCorrectness:
    @pytest.mark.parametrize("index", ["INV", "L2AP", "L2"])
    @pytest.mark.parametrize("threshold,decay", [(0.5, 0.05), (0.8, 0.01)])
    def test_matches_brute_force(self, index, threshold, decay):
        vectors = random_vectors(90, seed=73)
        expected = {p.key for p in brute_force_time_dependent(vectors, threshold, decay)}
        mb = MiniBatchFramework(threshold, decay, index=index)
        got = {p.key for p in mb.run(vectors)}
        assert got == expected

    def test_algorithm_name(self):
        assert MiniBatchFramework(0.5, 0.1, index="l2").algorithm == "MB-L2"
