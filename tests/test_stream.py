"""Unit tests for the stream abstractions."""

from __future__ import annotations

import pytest

from repro.core.stream import (
    FileStream,
    GeneratorStream,
    ListStream,
    enforce_order,
    merge_streams,
)
from repro.core.vector import SparseVector
from repro.datasets.io import write_text
from repro.exceptions import StreamOrderError


def vec(vector_id: int, t: float) -> SparseVector:
    return SparseVector(vector_id, t, {vector_id % 5: 1.0, 10 + vector_id % 3: 0.5})


class TestEnforceOrder:
    def test_passes_ordered_stream(self):
        vectors = [vec(i, float(i)) for i in range(5)]
        assert list(enforce_order(vectors)) == vectors

    def test_allows_equal_timestamps(self):
        vectors = [vec(0, 1.0), vec(1, 1.0)]
        assert len(list(enforce_order(vectors))) == 2

    def test_raises_on_decreasing_timestamps(self):
        vectors = [vec(0, 5.0), vec(1, 1.0)]
        with pytest.raises(StreamOrderError):
            list(enforce_order(vectors))


class TestListStream:
    def test_sorts_by_timestamp(self):
        stream = ListStream([vec(0, 3.0), vec(1, 1.0), vec(2, 2.0)])
        assert [v.timestamp for v in stream] == [1.0, 2.0, 3.0]

    def test_presorted_keeps_given_order(self):
        vectors = [vec(0, 1.0), vec(1, 2.0)]
        stream = ListStream(vectors, presorted=True)
        assert stream.vectors == vectors

    def test_len_and_getitem(self):
        stream = ListStream([vec(0, 1.0), vec(1, 2.0)])
        assert len(stream) == 2
        assert stream[0].vector_id == 0

    def test_is_replayable(self):
        stream = ListStream([vec(0, 1.0), vec(1, 2.0)])
        assert len(list(stream)) == len(list(stream)) == 2


class TestGeneratorStream:
    def test_replays_by_calling_factory_again(self):
        calls = []

        def factory():
            calls.append(1)
            return [vec(0, 0.0), vec(1, 1.0)]

        stream = GeneratorStream(factory)
        assert len(list(stream)) == 2
        assert len(list(stream)) == 2
        assert len(calls) == 2

    def test_order_enforced(self):
        stream = GeneratorStream(lambda: [vec(0, 2.0), vec(1, 1.0)])
        with pytest.raises(StreamOrderError):
            list(stream)

    def test_order_check_can_be_disabled(self):
        stream = GeneratorStream(lambda: [vec(0, 2.0), vec(1, 1.0)], check_order=False)
        assert len(list(stream)) == 2


class TestFileStream:
    def test_reads_text_file_lazily(self, tmp_path):
        path = tmp_path / "stream.txt"
        write_text(path, [vec(0, 0.0), vec(1, 1.0), vec(2, 2.0)])
        stream = FileStream(str(path))
        assert [v.vector_id for v in stream] == [0, 1, 2]
        # replayable
        assert [v.vector_id for v in stream] == [0, 1, 2]


class TestMergeStreams:
    def test_merges_in_timestamp_order(self):
        a = [vec(0, 0.0), vec(2, 2.0), vec(4, 4.0)]
        b = [vec(1, 1.0), vec(3, 3.0)]
        merged = merge_streams(a, b)
        assert [v.vector_id for v in merged] == [0, 1, 2, 3, 4]

    def test_ties_broken_by_stream_order(self):
        a = [vec(10, 1.0)]
        b = [vec(20, 1.0)]
        merged = merge_streams(a, b)
        assert [v.vector_id for v in merged] == [10, 20]

    def test_equal_timestamps_within_one_stream_keep_arrival_order(self):
        # Stability: equal-timestamp vectors of one stream must not be
        # reordered (the old (timestamp, stream, id) key sorted them by id).
        a = [vec(9, 1.0), vec(3, 1.0), vec(7, 1.0)]
        merged = merge_streams(a, [vec(5, 2.0)])
        assert [v.vector_id for v in merged] == [9, 3, 7, 5]

    def test_equal_timestamp_and_id_across_streams_does_not_compare_vectors(self):
        # The old key fell back to comparing SparseVector objects when both
        # the timestamp and the id tied, raising TypeError.
        a = [vec(1, 1.0)]
        b = [vec(1, 1.0)]
        merged = merge_streams(a, b)
        assert [v.vector_id for v in merged] == [1, 1]

    def test_interleaved_ties_prefer_earlier_stream_at_each_step(self):
        a = [vec(0, 1.0), vec(2, 3.0)]
        b = [vec(1, 1.0), vec(3, 3.0)]
        merged = merge_streams(a, b)
        assert [v.vector_id for v in merged] == [0, 1, 2, 3]

    def test_merge_is_replayable_with_list_inputs(self):
        a = [vec(0, 0.0)]
        b = [vec(1, 1.0)]
        merged = merge_streams(a, b)
        assert len(list(merged)) == 2
        assert len(list(merged)) == 2
