"""Arena-level tests for the shared posting store.

``tests/test_array_posting.py`` covers the per-list behaviour of
:class:`~repro.backends.arena.ArenaPostingList` (the PostingList
interface, capacity hysteresis, lazy expiry).  The tests here pin down
the *arena*: chunk layout invariants, whole-arena compaction and its
budget amortisation, safety of gathers taken before growth/compaction
("grow while scanning"), and the per-dimension extents after a
reindexing-plus-expiry workload.
"""

from __future__ import annotations

import pytest

from repro.backends import available_backends

pytestmark = pytest.mark.skipif("numpy" not in available_backends(),
                                reason="NumPy backend unavailable")

if "numpy" in available_backends():
    import numpy as np

    from repro.backends.arena import _MIN_CAPACITY
    from repro.backends.numpy_backend import NumpyKernel
from repro.indexes.posting import PostingEntry


def entry(vector_id: int, timestamp: float, value: float = 0.5) -> PostingEntry:
    return PostingEntry(vector_id=vector_id, value=value, prefix_norm=0.1,
                        timestamp=timestamp)


def assert_arena_invariants(arena) -> None:
    """Structural invariants of the chunk layout and the accounting."""
    lists = [ref() for ref in arena._lists]
    lists = [pl for pl in lists if pl is not None]
    regions = []
    live = 0
    caps = 0
    heads = 0
    for plist in lists:
        if plist._cap == 0:
            assert plist._size == 0 and plist._head == 0
            continue
        assert plist._head + plist._size <= plist._cap
        start, cap = plist._start, plist._cap
        assert 0 <= start and start + cap <= arena.tail <= arena.capacity
        regions.append((start, start + cap))
        live += plist._size
        caps += cap
        heads += plist._head
    # Chunks never overlap.
    regions.sort()
    for (_, previous_end), (next_start, _) in zip(regions, regions[1:]):
        assert previous_end <= next_start
    # Accounting: live postings, and dead = holes + dropped head cells.
    assert arena.live_entries == live
    assert arena.dead_entries == (arena.tail - caps) + heads
    # The compaction trigger is amortised: dead never exceeds live for long;
    # after any maybe_compact() call the bound holds.
    arena.maybe_compact()
    assert arena.dead_entries <= max(arena.live_entries, 0)


class TestArenaCompaction:
    def test_compaction_reclaims_abandoned_chunks(self):
        kernel = NumpyKernel()
        arena = kernel._arena
        lists = [kernel.new_posting_list() for _ in range(8)]
        # Interleaved appends force every list through several relocations,
        # abandoning chunks behind them.
        for round_index in range(200):
            for offset, plist in enumerate(lists):
                plist.append(entry(offset, float(round_index)))
        assert arena.live_entries == 8 * 200
        assert_arena_invariants(arena)
        before = arena.compactions
        # Dropping most of every list makes the dead space dominant; the
        # next drop triggers a whole-arena compaction.
        for plist in lists:
            plist.keep_newest(3)
        assert arena.compactions > before
        assert arena.dead_entries <= arena.live_entries
        for plist in lists:
            assert len(plist) == 3
            assert plist.capacity <= _MIN_CAPACITY
        assert_arena_invariants(arena)

    def test_compaction_drops_lazily_expired_postings_for_free(self):
        kernel = NumpyKernel()
        plist = kernel.new_posting_list()
        for index in range(64):
            plist.append(entry(index, float(index)))
        slots, _, _, ts = plist.arrays()
        keep = ts >= 32.0
        dirty = int((~keep).sum())
        plist.note_lazy_expiry(32.0, dirty, 32.0, 63.0)
        assert len(plist) == 32
        kernel._arena.compact()
        # The compaction dropped the dirty postings without re-reporting.
        assert plist.dirty == 0
        assert plist.physical_size == 32
        assert [posting.timestamp for posting in plist] == [float(t) for t in range(32, 64)]
        assert_arena_invariants(kernel._arena)

    def test_budget_pays_for_early_compaction(self):
        kernel = NumpyKernel()
        arena = kernel._arena
        plist = kernel.new_posting_list()
        for index in range(100):
            plist.append(entry(index, float(index)))
        arena.compact()  # settle the relocation debris from the appends
        assert arena.dead_entries == 0
        drop_compactions = arena.compactions
        # Light fragmentation (under a quarter of the live volume) is not
        # worth a rewrite, whatever the budget.
        plist.drop_oldest(10)
        assert arena.compactions == drop_compactions  # not mandatory yet
        assert arena.compact_if_affordable(budget=10_000) == 0
        # Meaningful fragmentation: paid for when the budget covers it.
        plist.drop_oldest(20)
        assert 0 < arena.dead_entries <= arena.live_entries
        consumed = arena.compact_if_affordable(budget=10)
        assert consumed == 0  # budget too small, nothing happened
        assert arena.dead_entries > 0
        consumed = arena.compact_if_affordable(budget=10_000)
        assert consumed == 70  # the live postings that had to be rewritten
        assert arena.dead_entries == 0
        assert_arena_invariants(arena)

    def test_mandatory_compaction_costs_no_budget(self):
        kernel = NumpyKernel()
        arena = kernel._arena
        plist = kernel.new_posting_list()
        for index in range(64):
            plist.append(entry(index, float(index)))
        # Whole list lazily expired: the postings stay physically present
        # (and counted as live) until a compaction drops them for free.
        plist.note_lazy_expiry(100.0, 64, float("inf"), float("-inf"))
        assert len(plist) == 0
        assert arena.live_entries == 64
        consumed = arena.compact_if_affordable(budget=10 ** 6)
        assert consumed <= 64  # at most the rewritten live postings
        assert arena.live_entries == 0  # dirty postings dropped with the move
        assert arena.dead_entries == 0
        assert plist.physical_size == 0
        assert_arena_invariants(arena)

    def test_dropped_lists_are_reclaimed_at_compaction(self):
        kernel = NumpyKernel()
        arena = kernel._arena
        keep = kernel.new_posting_list()
        keep.append(entry(1, 1.0))
        doomed = kernel.new_posting_list()
        for index in range(50):
            doomed.append(entry(index, float(index)))
        live_before = arena.live_entries
        del doomed  # the index dropped its handle (e.g. InvertedIndex.clear)
        arena.compact()
        # The orphaned chunk is gone; only the surviving list was rewritten.
        assert arena.live_entries == 1
        assert live_before == 51
        assert [posting.vector_id for posting in keep] == [1]
        assert_arena_invariants(arena)


class TestGrowWhileScanning:
    def test_gathers_survive_growth_and_compaction(self):
        """Fancy-index gathers copy, so arena rewrites cannot corrupt a scan."""
        kernel = NumpyKernel()
        arena = kernel._arena
        plist = kernel.new_posting_list()
        for index in range(32):
            plist.append(entry(index, float(index), value=0.25))
        lo, hi = plist.region
        gathered = arena.values[np.arange(lo, hi)]
        views = plist.arrays()
        view_copy = [buffer.copy() for buffer in views]
        # Grow the arena well past a reallocation and force a compaction.
        other = kernel.new_posting_list()
        for index in range(5000):
            other.append(entry(1000 + index, float(index)))
        other.keep_newest(1)  # dead ≫ live → whole-arena compaction
        assert arena.compactions >= 1
        # The gather took copies: unchanged.
        assert gathered.tolist() == [0.25] * 32
        # The old views still read the *old* buffers consistently (growth
        # and compaction allocate fresh arrays rather than rewriting).
        for view, copy in zip(views, view_copy):
            assert view.tolist() == copy.tolist()
        # And the list itself is intact through the move.
        assert [posting.vector_id for posting in plist] == list(range(32))
        assert_arena_invariants(arena)

    def test_bulk_append_positions_survive_relocations(self):
        """index_vector_postings reserves, then scatters: one list's
        relocation or an arena growth must not invalidate the other
        reservations of the same bulk append."""
        from repro.core.vector import SparseVector
        from repro.indexes.posting import InvertedIndex

        kernel = NumpyKernel()
        index = InvertedIndex(kernel.new_posting_list)
        # Pre-fill lists to different occupancies so some relocate during
        # the bulk appends below while others do not.
        for vector_id in range(40):
            vector = SparseVector(vector_id, float(vector_id),
                                  {dim: 1.0 for dim in range(vector_id % 7, vector_id % 7 + 9)})
            kernel.index_vector_postings(index, vector)
        for dim in index.dimensions():
            plist = index.get(dim)
            ids = [posting.vector_id for posting in plist]
            timestamps = [posting.timestamp for posting in plist]
            assert timestamps == sorted(timestamps)
            assert len(ids) == len(plist)
        assert_arena_invariants(kernel._arena)


class TestDeferredExpiryAcrossCompaction:
    def test_stale_mask_rebuilt_after_mid_scan_arena_compaction(self):
        """Regression: a fused scan's deferred lazy-expiry bookkeeping
        must survive an earlier list's compress triggering a whole-arena
        compaction (which drops later lists' old dirty postings and
        shrinks their regions, invalidating the masks captured at gather
        time)."""
        from repro.core.vector import SparseVector
        from repro.indexes.posting import InvertedIndex

        kernel = NumpyKernel()
        index = InvertedIndex(kernel.new_posting_list)
        # Dim 5 (scanned first): large and mostly expiring — its compress
        # triggers the arena compaction.  Dim 1 (scanned second): carries
        # pre-existing dirty postings from an earlier query.
        for vector_id in range(400):
            kernel.index_vector_postings(
                index, SparseVector(vector_id, float(vector_id), {5: 1.0}))
        for vector_id in range(400, 500):
            kernel.index_vector_postings(
                index, SparseVector(vector_id, float(vector_id),
                                    {1: 1.0, 5: 1.0}))
        size_filter = kernel.new_size_filter()

        def scan(query, cutoff):
            accumulator = kernel.new_accumulator()
            kernel._maintenance_budget = 0  # no budget-paid early cleanup
            return kernel.scan_query_stream(
                query, index, now=query.timestamp, cutoff=cutoff, decay=0.05,
                rs1=float("inf"), decayed_maxima=None, sz1=0.0,
                threshold=1e9, use_ap=False, use_l2=True, time_ordered=False,
                size_filter=size_filter, acc=accumulator)

        scan(SparseVector(1000, 520.0, {1: 1.0}), cutoff=430.0)
        assert index.get(1).dirty > 0
        compactions = kernel._arena.compactions
        traversed, removed = scan(SparseVector(1001, 540.0, {1: 1.0, 5: 1.0}),
                                  cutoff=480.0)
        assert kernel._arena.compactions > compactions  # the hazard fired
        assert traversed > 0 and removed > 0
        assert index.get(1).dirty == 0  # compressed with the rebuilt mask
        assert_arena_invariants(kernel._arena)


class TestExtentsAfterReindexAndExpiry:
    def test_extents_consistent_after_reindex_plus_expiry_stream(self):
        """Growing maxima force re-indexing (unordered appends) while a
        short horizon expires postings; afterwards every dimension's
        extent must describe exactly the postings iteration yields."""
        from repro.core.join import create_join
        from repro.core.vector import SparseVector

        kernel = NumpyKernel()
        join = create_join("STR-L2AP", 0.6, 0.08, backend=kernel)
        vectors = [
            SparseVector(index, float(index),
                         {dim: 1.0 + 0.06 * index
                          for dim in range(index % 5, index % 5 + 4)})
            for index in range(150)
        ]
        for vector in vectors:
            join.process(vector)
        arena = kernel._arena
        index = join.index._index
        total = 0
        for dim in index.dimensions():
            plist = index.get(dim)
            postings = plist.to_list()
            assert len(postings) == len(plist)
            # Live postings all respect the list's expiry high-water mark.
            for posting in postings:
                assert posting.timestamp >= plist.expired_cutoff or not plist.dirty
            if postings:
                timestamps = [posting.timestamp for posting in postings]
                assert plist.min_live_timestamp <= min(timestamps)
                assert plist.max_live_timestamp >= max(timestamps)
            total += len(postings)
        assert total == len(index)
        assert_arena_invariants(arena)
