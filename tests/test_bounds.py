"""Unit tests for the filtering bounds (index-construction split, CV bounds)."""

from __future__ import annotations

import math

import pytest

from repro.core.vector import SparseVector
from repro.indexes.bounds import (
    compute_indexing_split,
    size_filter_threshold,
    verification_bounds,
)
from repro.indexes.maxvector import MaxVector
from repro.indexes.residual import ResidualEntry


def vec(vector_id: int, entries: dict[int, float], *, t: float = 0.0,
        normalize: bool = True) -> SparseVector:
    return SparseVector(vector_id, t, entries, normalize=normalize)


class TestIndexingSplit:
    def test_l2_only_boundary_matches_norm_condition(self):
        # Uniform vector of 4 coordinates, each 0.5 after normalisation.
        vector = vec(1, {1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0})
        split = compute_indexing_split(vector, 0.7, max_vector=None,
                                       use_ap=False, use_l2=True)
        # Prefix norms after k coords: 0.5, 0.707, 0.866, 1.0 — the ℓ₂ bound
        # reaches 0.7 after the second coordinate (position index 1).
        assert split.boundary == 1
        assert split.pscore == pytest.approx(0.5)

    def test_low_threshold_indexes_from_the_start(self):
        vector = vec(1, {1: 1.0, 2: 1.0})
        split = compute_indexing_split(vector, 0.5, max_vector=None,
                                       use_ap=False, use_l2=True)
        assert split.boundary == 0
        assert split.pscore == 0.0

    def test_threshold_never_reached_means_nothing_indexed(self):
        # An un-normalised short vector whose total norm stays below θ.
        vector = SparseVector(1, 0.0, {1: 0.3}, normalize=False)
        split = compute_indexing_split(vector, 0.9, max_vector=None,
                                       use_ap=False, use_l2=True)
        assert split.boundary == len(vector)

    def test_ap_bound_uses_max_vector(self):
        vector = vec(1, {1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0})
        tiny_max = MaxVector()     # all maxima are 0 -> b1 stays 0
        split = compute_indexing_split(vector, 0.7, max_vector=tiny_max,
                                       use_ap=True, use_l2=False)
        assert split.boundary == len(vector)

        big_max = MaxVector.from_vectors([vec(2, {1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0})])
        split = compute_indexing_split(vector, 0.7, max_vector=big_max,
                                       use_ap=True, use_l2=False)
        assert split.boundary < len(vector)

    def test_l2ap_uses_the_tighter_of_both_bounds(self):
        vector = vec(1, {1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0})
        max_vector = MaxVector.from_vectors([vector])
        combined = compute_indexing_split(vector, 0.7, max_vector=max_vector,
                                          use_ap=True, use_l2=True)
        l2_only = compute_indexing_split(vector, 0.7, max_vector=None,
                                         use_ap=False, use_l2=True)
        ap_only = compute_indexing_split(vector, 0.7, max_vector=max_vector,
                                         use_ap=True, use_l2=False)
        assert combined.boundary >= max(l2_only.boundary, ap_only.boundary)

    def test_limit_restricts_the_scan(self):
        vector = vec(1, {1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0})
        split = compute_indexing_split(vector, 0.99, max_vector=None,
                                       use_ap=False, use_l2=True, limit=2)
        assert split.boundary == 2

    def test_requires_at_least_one_bound_family(self):
        vector = vec(1, {1: 1.0})
        with pytest.raises(ValueError):
            compute_indexing_split(vector, 0.5, max_vector=None,
                                   use_ap=False, use_l2=False)

    def test_ap_requires_max_vector(self):
        vector = vec(1, {1: 1.0})
        with pytest.raises(ValueError):
            compute_indexing_split(vector, 0.5, max_vector=None,
                                   use_ap=True, use_l2=False)

    def test_pscore_upper_bounds_residual_dot(self):
        # The stored pscore must bound dot(residual prefix, any unit vector).
        vector = vec(1, {1: 0.7, 2: 0.1, 3: 0.3, 4: 0.5, 9: 0.4})
        split = compute_indexing_split(vector, 0.6, max_vector=None,
                                       use_ap=False, use_l2=True)
        residual = {vector.dims[k]: vector.values[k] for k in range(split.boundary)}
        residual_norm = math.sqrt(sum(v * v for v in residual.values()))
        # With only the ℓ₂ bound enabled, the stored pscore is exactly the
        # residual prefix norm, which by Cauchy-Schwarz bounds dot(residual, y)
        # for any unit-normalised y.
        assert split.pscore == pytest.approx(residual_norm)


class TestSizeFilter:
    def test_formula(self):
        assert size_filter_threshold(0.8, 0.4) == pytest.approx(2.0)

    def test_zero_max_value_gives_infinite_threshold(self):
        assert size_filter_threshold(0.8, 0.0) == math.inf


class TestVerificationBounds:
    def make_candidate(self) -> ResidualEntry:
        vector = vec(2, {1: 0.1, 2: 0.2, 5: 0.6, 9: 0.7}, normalize=False)
        return ResidualEntry(vector=vector, boundary=2, pscore=0.25)

    def test_bounds_upper_bound_true_similarity(self):
        candidate = self.make_candidate()
        query = vec(1, {1: 0.5, 2: 0.5, 5: 0.5, 9: 0.5}, normalize=False)
        accumulated = sum(query.get(d) * candidate.vector.get(d)
                          for d in candidate.vector.dims[candidate.boundary:])
        true_dot = query.dot(candidate.vector)
        ps1, ds1, sz2 = verification_bounds(accumulated, query, candidate)
        # ds1 and sz2 bound the residual part of the dot product.
        assert ds1 >= true_dot - 1e-12
        assert sz2 >= true_dot - 1e-12
        # ps1 uses the stored pscore, which bounds the residual dot for unit
        # queries; here we only check it is at least the accumulated part.
        assert ps1 >= accumulated

    def test_bounds_with_empty_residual_collapse_to_accumulated(self):
        vector = vec(2, {5: 1.0})
        candidate = ResidualEntry(vector=vector, boundary=0, pscore=0.0)
        query = vec(1, {5: 1.0})
        ps1, ds1, sz2 = verification_bounds(0.9, query, candidate)
        assert ps1 == pytest.approx(0.9)
        assert ds1 == pytest.approx(0.9)
        assert sz2 == pytest.approx(0.9)
