"""Tests for the high-level public API (create_join, streaming_self_join)."""

from __future__ import annotations

import pytest

from repro import (
    JoinStatistics,
    ListCollector,
    MiniBatchSimilarityJoin,
    StreamingSimilarityJoin,
    create_join,
    parse_algorithm,
    streaming_self_join,
)
from repro.core.frameworks.minibatch import MiniBatchFramework
from repro.core.frameworks.streaming import StreamingFramework
from repro.exceptions import UnknownAlgorithmError
from tests.conftest import random_vectors


class TestParseAlgorithm:
    @pytest.mark.parametrize("text,expected", [
        ("STR-L2", ("STR", "L2")),
        ("mb-inv", ("MB", "INV")),
        ("str_l2ap", ("STR", "L2AP")),
    ])
    def test_valid_names(self, text, expected):
        assert parse_algorithm(text) == expected

    @pytest.mark.parametrize("text", ["L2", "STRL2", "XXX-L2", ""])
    def test_invalid_names(self, text):
        with pytest.raises(UnknownAlgorithmError):
            parse_algorithm(text)


class TestCreateJoin:
    def test_str_framework(self):
        join = create_join("STR-L2", 0.7, 0.1)
        assert isinstance(join, StreamingFramework)
        assert join.algorithm == "STR-L2"

    def test_mb_framework(self):
        join = create_join("MB-INV", 0.7, 0.1)
        assert isinstance(join, MiniBatchFramework)
        assert join.algorithm == "MB-INV"

    def test_unknown_index_propagates(self):
        with pytest.raises(UnknownAlgorithmError):
            create_join("STR-NOPE", 0.7, 0.1)

    def test_shared_stats_object(self):
        stats = JoinStatistics()
        join = create_join("STR-L2", 0.7, 0.1, stats=stats)
        join.run_to_list(random_vectors(20, seed=91))
        assert stats.vectors_processed == 20


class TestStreamingSelfJoin:
    def test_yields_pairs_lazily(self):
        vectors = random_vectors(40, seed=93)
        pairs = list(streaming_self_join(vectors, 0.6, 0.05))
        assert all(pair.similarity >= 0.6 for pair in pairs)

    def test_algorithm_selection(self):
        vectors = random_vectors(40, seed=93)
        default = {p.key for p in streaming_self_join(vectors, 0.6, 0.05)}
        via_mb = {p.key for p in streaming_self_join(vectors, 0.6, 0.05, algorithm="MB-L2")}
        assert default == via_mb

    def test_collector_integration(self):
        vectors = random_vectors(40, seed=95)
        collector = ListCollector()
        for pair in streaming_self_join(vectors, 0.6, 0.05):
            collector(pair)
        assert collector.keys() == {p.key for p in streaming_self_join(vectors, 0.6, 0.05)}


class TestPublicClasses:
    def test_streaming_similarity_join_defaults_to_l2(self):
        join = StreamingSimilarityJoin(threshold=0.7, decay=0.1)
        assert join.algorithm == "STR-L2"

    def test_minibatch_similarity_join(self):
        join = MiniBatchSimilarityJoin(threshold=0.7, decay=0.1, index="INV")
        assert join.algorithm == "MB-INV"

    def test_docstring_example(self):
        from repro import SparseVector

        join = StreamingSimilarityJoin(threshold=0.7, decay=0.1)
        a = SparseVector(1, 0.0, {0: 1.0, 1: 1.0})
        b = SparseVector(2, 1.0, {0: 1.0, 1: 1.0})
        assert [pair.key for pair in join.run([a, b])] == [(1, 2)]
