"""Tests for the high-level public API (create_join, streaming_self_join)."""

from __future__ import annotations

import pytest

from repro import (
    JoinStatistics,
    ListCollector,
    MiniBatchSimilarityJoin,
    StreamingSimilarityJoin,
    create_join,
    parse_algorithm,
    streaming_self_join,
)
from repro.core.frameworks.minibatch import MiniBatchFramework
from repro.core.frameworks.streaming import StreamingFramework
from repro.exceptions import UnknownAlgorithmError
from tests.conftest import random_vectors


class TestParseAlgorithm:
    @pytest.mark.parametrize("text,expected", [
        ("STR-L2", ("STR", "L2")),
        ("mb-inv", ("MB", "INV")),
        ("str_l2ap", ("STR", "L2AP")),
    ])
    def test_valid_names(self, text, expected):
        assert parse_algorithm(text) == expected

    @pytest.mark.parametrize("text", ["L2", "STRL2", "XXX-L2", ""])
    def test_invalid_names(self, text):
        with pytest.raises(UnknownAlgorithmError):
            parse_algorithm(text)


class TestCreateJoin:
    def test_str_framework(self):
        join = create_join("STR-L2", 0.7, 0.1)
        assert isinstance(join, StreamingFramework)
        assert join.algorithm == "STR-L2"

    def test_mb_framework(self):
        join = create_join("MB-INV", 0.7, 0.1)
        assert isinstance(join, MiniBatchFramework)
        assert join.algorithm == "MB-INV"

    def test_unknown_index_propagates(self):
        with pytest.raises(UnknownAlgorithmError):
            create_join("STR-NOPE", 0.7, 0.1)

    def test_shared_stats_object(self):
        stats = JoinStatistics()
        join = create_join("STR-L2", 0.7, 0.1, stats=stats)
        join.run_to_list(random_vectors(20, seed=91))
        assert stats.vectors_processed == 20

    def test_workers_delegates_to_the_sharded_engine(self):
        from repro.shard import ShardedStreamingJoin

        join = create_join("STR-L2", 0.7, 0.1, workers=2,
                           shard_executor="serial")
        try:
            assert isinstance(join, ShardedStreamingJoin)
            assert join.workers == 2
        finally:
            join.close()

    def test_workers_rejects_minibatch_algorithms(self):
        with pytest.raises(UnknownAlgorithmError):
            create_join("MB-L2", 0.7, 0.1, workers=2)


class TestIncrementalFeed:
    @pytest.mark.parametrize("algorithm", ["STR-L2", "MB-L2"])
    @pytest.mark.parametrize("chunk_size", [1, 7, 100])
    def test_chunked_feed_equals_one_shot_run(self, algorithm, chunk_size):
        """feed()'s contract: concatenating chunks ≡ feeding the stream."""
        vectors = random_vectors(50, seed=95)
        expected = create_join(algorithm, 0.6, 0.05).run_to_list(vectors)
        join = create_join(algorithm, 0.6, 0.05)
        got = []
        for start in range(0, len(vectors), chunk_size):
            got.extend(join.feed(vectors[start:start + chunk_size]))
        got.extend(join.flush())
        assert got == expected

    def test_feed_does_not_flush(self):
        join = create_join("MB-L2", 0.6, 0.05)
        join.feed(random_vectors(10, seed=97))
        # The MB window is still open: flush() reports the buffered pairs.
        assert join.flush() or join.stats.vectors_processed == 10


class TestStreamingSelfJoin:
    def test_yields_pairs_lazily(self):
        vectors = random_vectors(40, seed=93)
        pairs = list(streaming_self_join(vectors, 0.6, 0.05))
        assert all(pair.similarity >= 0.6 for pair in pairs)

    def test_algorithm_selection(self):
        vectors = random_vectors(40, seed=93)
        default = {p.key for p in streaming_self_join(vectors, 0.6, 0.05)}
        via_mb = {p.key for p in streaming_self_join(vectors, 0.6, 0.05, algorithm="MB-L2")}
        assert default == via_mb

    def test_collector_integration(self):
        vectors = random_vectors(40, seed=95)
        collector = ListCollector()
        for pair in streaming_self_join(vectors, 0.6, 0.05):
            collector(pair)
        assert collector.keys() == {p.key for p in streaming_self_join(vectors, 0.6, 0.05)}


class TestPublicClasses:
    def test_streaming_similarity_join_defaults_to_l2(self):
        join = StreamingSimilarityJoin(threshold=0.7, decay=0.1)
        assert join.algorithm == "STR-L2"

    def test_minibatch_similarity_join(self):
        join = MiniBatchSimilarityJoin(threshold=0.7, decay=0.1, index="INV")
        assert join.algorithm == "MB-INV"

    def test_docstring_example(self):
        from repro import SparseVector

        join = StreamingSimilarityJoin(threshold=0.7, decay=0.1)
        a = SparseVector(1, 0.0, {0: 1.0, 1: 1.0})
        b = SparseVector(2, 1.0, {0: 1.0, 1: 1.0})
        assert [pair.key for pair in join.run([a, b])] == [(1, 2)]
