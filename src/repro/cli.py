"""Command-line interface.

Installed as the ``sssj`` console script (and reachable as
``python -m repro``).  Sub-commands:

``profiles``
    List the built-in synthetic dataset profiles.
``backends``
    List every known compute backend, whether it can run on this machine
    (and why not when it cannot), and the current default.
``generate``
    Generate a synthetic corpus and write it to a dataset file.
``convert``
    Convert a dataset between the text and binary formats.
``stats``
    Print Table-1 style statistics for a dataset file or profile.
``run``
    Run one algorithm configuration over a dataset and print its metrics.
    ``--workers N`` (or the ``SSSJ_WORKERS`` environment variable) runs
    the sharded parallel engine instead of the single-process one.
``shards``
    Print the :class:`~repro.shard.plan.ShardPlan` balance report for a
    dataset — per-shard dimension and posting-mass shares plus the
    max/mean skew — so a partitioning can be sanity-checked before a run.
``profile``
    Run a corpus through a chosen backend and print the per-stage
    (scan / filter / verify / maintenance) time breakdown.
``sweep``
    Run a (θ, λ) grid for one or more algorithms and print the result table.
``experiment``
    Reproduce one of the paper's tables/figures by identifier.
``serve``
    Run the long-running join service (:mod:`repro.service`): named
    sessions over a line-delimited-JSON socket protocol, with periodic
    atomic checkpoints and crash recovery when ``--checkpoint-dir`` is
    given.
``ingest``
    Feed a dataset (file or profile) into a served session, opening it
    on first use; ``--resume`` skips the vectors a recovered session
    already processed.
``results``
    Page through (or ``--follow``) the pairs a session has reported;
    ``--stats`` prints the live counters + latency percentiles instead.
``drain``
    Flush a session (process queue, flush the join, final checkpoint)
    and print its final statistics.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.backends import (
    backend_availability,
    default_backend,
    known_backends,
    probe_backends,
)
from repro.bench.config import LAMBDA_GRID, THETA_GRID, ExperimentScale, default_scale
from repro.bench.experiments import ALL_EXPERIMENTS, run_experiment
from repro.bench.runner import run_algorithm, sweep
from repro.bench.tables import render_table
from repro.datasets.generator import generate_profile_corpus
from repro.datasets.io import convert, read_vectors, write_vectors
from repro.datasets.profiles import PROFILES, available_profiles, get_profile
from repro.datasets.stats import dataset_statistics

__all__ = ["main", "build_parser"]


def _add_approx_args(sub: argparse.ArgumentParser) -> None:
    """The approximate-tier flags shared by ``run``, ``profile``, ``ingest``."""
    sub.add_argument("--approx", default=None, metavar="SPEC",
                     help="enable the approximate prefilter tier: 'minhash', "
                          "'wminhash' or 'simhash', optionally with geometry as "
                          "'method:BANDSxROWS[:SEED]' (default: exact join, "
                          "or the SSSJ_APPROX environment variable)")
    sub.add_argument("--approx-bands", type=int, default=None, metavar="B",
                     help="override the number of LSH bands (with --approx)")
    sub.add_argument("--approx-rows", type=int, default=None, metavar="R",
                     help="override the signature rows per band (with --approx)")


def _add_fault_args(sub: argparse.ArgumentParser) -> None:
    """The fault-injection flags shared by ``run`` and ``serve``."""
    sub.add_argument("--fault-plan", default=None, metavar="SPEC",
                     help="inject faults for chaos testing: a ';'-separated "
                          "list of events like 'kill-worker:shard=1,after=40' "
                          "or 'sever-client:after=2' (default: "
                          "$SSSJ_FAULT_PLAN, else no faults)")
    sub.add_argument("--fault-log", default=None, metavar="PATH",
                     help="write the injected/observed fault events as JSON "
                          "lines to PATH (with --fault-plan)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``sssj`` command."""
    parser = argparse.ArgumentParser(
        prog="sssj",
        description="Streaming similarity self-join (reproduction of "
                    "De Francisci Morales & Gionis, VLDB 2016).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("profiles", help="list built-in dataset profiles")

    subparsers.add_parser("backends", help="list available compute backends")

    generate = subparsers.add_parser("generate", help="generate a synthetic corpus")
    generate.add_argument("--profile", required=True, choices=available_profiles())
    generate.add_argument("--num-vectors", type=int, default=None)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--output", required=True,
                          help="output path (.txt for text, .bin for binary)")

    converter = subparsers.add_parser("convert", help="convert between text and binary formats")
    converter.add_argument("source")
    converter.add_argument("destination")

    stats = subparsers.add_parser("stats", help="print Table-1 style dataset statistics")
    group = stats.add_mutually_exclusive_group(required=True)
    group.add_argument("--input", help="dataset file to analyse")
    group.add_argument("--profile", choices=available_profiles())
    stats.add_argument("--num-vectors", type=int, default=None)
    stats.add_argument("--seed", type=int, default=42)

    run = subparsers.add_parser("run", help="run one algorithm configuration")
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", help="dataset file to join")
    source.add_argument("--profile", choices=available_profiles())
    run.add_argument("--num-vectors", type=int, default=None)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--algorithm", default="STR-L2",
                     help="framework-index pair, e.g. STR-L2, MB-INV (default STR-L2)")
    run.add_argument("--theta", type=float, default=0.7, help="similarity threshold")
    run.add_argument("--decay", type=float, default=0.01, help="time-decay rate λ")
    run.add_argument("--backend", default=None,
                     choices=["auto", *known_backends()],
                     help="compute backend for the hot loops (default: auto)")
    run.add_argument("--workers", type=int, default=None,
                     help="run the sharded parallel engine with N shard "
                          "workers (STR only; default: single-process, or "
                          "the SSSJ_WORKERS environment variable)")
    _add_approx_args(run)
    _add_fault_args(run)
    run.add_argument("--shard-executor", default="process",
                     choices=["process", "serial"],
                     help="sharded execution mode: one process per shard, "
                          "or serial in-process shards (default: process)")
    run.add_argument("--show-pairs", type=int, default=0,
                     help="print up to N reported pairs")

    profile_cmd = subparsers.add_parser(
        "profile", help="per-stage time breakdown of one algorithm run")
    profile_source = profile_cmd.add_mutually_exclusive_group(required=True)
    profile_source.add_argument("--input", help="dataset file to join")
    profile_source.add_argument("--profile", choices=available_profiles())
    profile_cmd.add_argument("--num-vectors", type=int, default=None)
    profile_cmd.add_argument("--seed", type=int, default=42)
    profile_cmd.add_argument("--algorithm", default="STR-L2AP",
                             help="framework-index pair (default STR-L2AP)")
    profile_cmd.add_argument("--theta", type=float, default=0.6,
                             help="similarity threshold")
    profile_cmd.add_argument("--decay", type=float, default=0.01,
                             help="time-decay rate λ")
    profile_cmd.add_argument("--backend", default=None,
                             choices=["auto", *known_backends()],
                             help="compute backend to profile (default: auto)")
    _add_approx_args(profile_cmd)

    shards = subparsers.add_parser(
        "shards", help="print the shard plan balance report for a dataset")
    shard_source = shards.add_mutually_exclusive_group(required=True)
    shard_source.add_argument("--input", help="dataset file to analyse")
    shard_source.add_argument("--profile", choices=available_profiles())
    shards.add_argument("--num-vectors", type=int, default=None)
    shards.add_argument("--seed", type=int, default=42)
    shards.add_argument("--workers", type=int, default=4,
                        help="number of shards to plan for (default 4)")

    sweep_cmd = subparsers.add_parser("sweep", help="run a (θ, λ) grid and print a table")
    sweep_cmd.add_argument("--profile", required=True, choices=available_profiles())
    sweep_cmd.add_argument("--num-vectors", type=int, default=None)
    sweep_cmd.add_argument("--seed", type=int, default=42)
    sweep_cmd.add_argument("--algorithms", default="STR-L2",
                           help="comma-separated list, e.g. STR-L2,MB-L2")
    sweep_cmd.add_argument("--thetas", default=",".join(str(t) for t in THETA_GRID))
    sweep_cmd.add_argument("--decays", default=",".join(str(d) for d in LAMBDA_GRID))
    sweep_cmd.add_argument("--backend", default=None,
                           choices=["auto", *known_backends()],
                           help="compute backend for the hot loops (default: auto)")

    experiment = subparsers.add_parser(
        "experiment", help="reproduce one of the paper's tables/figures")
    experiment.add_argument("experiment_id", choices=sorted(ALL_EXPERIMENTS))
    experiment.add_argument("--scale", type=float, default=1.0,
                            help="multiply the default per-dataset vector counts")
    experiment.add_argument("--seed", type=int, default=42)
    experiment.add_argument("--plot", action="store_true",
                            help="also render the figure as an ASCII chart")

    serve = subparsers.add_parser(
        "serve", help="run the long-running join service")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=7788,
                       help="TCP port to listen on (0 picks a free one; "
                            "default 7788)")
    serve.add_argument("--checkpoint-dir", default=None,
                       help="directory for per-session checkpoints; enables "
                            "crash recovery on restart")
    serve.add_argument("--checkpoint-every", type=int, default=500,
                       metavar="N",
                       help="default checkpoint cadence in processed vectors "
                            "(default 500)")
    serve.add_argument("--checkpoint-seconds", type=float, default=None,
                       metavar="S",
                       help="also checkpoint every S seconds of wall clock")
    serve.add_argument("--read-timeout", type=float, default=30.0, metavar="S",
                       help="per-connection socket read deadline in seconds; "
                            "idle or wedged clients are disconnected instead "
                            "of pinning a handler thread (default 30, "
                            "0 disables)")
    serve.add_argument("--pool-workers", type=int, default=None, metavar="M",
                       help="enable the multi-tenant scheduler: run all "
                            "sessions over M pool workers behind a selector "
                            "(single I/O loop) server, with per-tenant "
                            "quotas, fair scheduling and checkpoint-evict "
                            "(default: one thread per session)")
    serve.add_argument("--dispatch-workers", type=int, default=8, metavar="N",
                       help="request dispatch threads of the selector server "
                            "(default 8; only with --pool-workers)")
    serve.add_argument("--evict-after", type=float, default=None, metavar="S",
                       help="checkpoint-and-evict sessions idle for S "
                            "seconds; they restore lazily on the next "
                            "request (only with --pool-workers and "
                            "--checkpoint-dir)")
    serve.add_argument("--quota-sessions", type=int, default=None, metavar="N",
                       help="per-tenant cap on open sessions "
                            "(only with --pool-workers)")
    serve.add_argument("--quota-queued", type=int, default=None, metavar="N",
                       help="per-tenant cap on queued-but-unprocessed "
                            "vectors (only with --pool-workers)")
    serve.add_argument("--quota-rate", type=float, default=None, metavar="R",
                       help="per-tenant sustained ingest rate in vectors/s "
                            "(token bucket; only with --pool-workers)")
    serve.add_argument("--adaptive-batch", action="store_true",
                       help="size each session's micro-batches from its live "
                            "latency and queue depth (only with "
                            "--pool-workers)")
    serve.add_argument("--adaptive-min", type=int, default=16, metavar="N",
                       help="adaptive batching floor (default 16)")
    serve.add_argument("--adaptive-max", type=int, default=1024, metavar="N",
                       help="adaptive batching ceiling (default 1024)")
    serve.add_argument("--adaptive-target-p99-ms", type=float, default=250.0,
                       metavar="MS",
                       help="p99 per-item latency the adaptive batcher "
                            "steers toward (default 250)")
    serve.add_argument("--metrics-port", type=int, default=None, metavar="P",
                       help="serve Prometheus text on this HTTP port "
                            "(0 picks a free port; default: off)")
    serve.add_argument("--metrics-host", default="127.0.0.1",
                       help="interface for --metrics-port (default loopback)")
    serve.add_argument("--trace-sample", type=float, default=None,
                       metavar="F",
                       help="emit this fraction of batch-granularity spans "
                            "(0..1, deterministic per seed; default: off)")
    serve.add_argument("--trace-seed", type=int, default=0, metavar="N",
                       help="seed of the deterministic span sampler "
                            "(default 0)")
    serve.add_argument("--span-log", default=None, metavar="PATH",
                       help="append sampled spans to this NDJSON file")
    serve.add_argument("--slow-batch-ms", type=float, default=None,
                       metavar="MS",
                       help="log every span slower than this to stderr "
                            "(measured even when unsampled)")
    _add_fault_args(serve)

    top = subparsers.add_parser(
        "top", help="live per-session/tenant telemetry of a served join")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7788)
    top.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="seconds between stats polls (default 2)")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="exit after N frames (default: until Ctrl-C)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the screen")

    def add_client_args(sub):
        sub.add_argument("--host", default="127.0.0.1")
        sub.add_argument("--port", type=int, default=7788)
        sub.add_argument("--session", required=True,
                         help="session name on the server")

    ingest = subparsers.add_parser(
        "ingest", help="feed a dataset into a served join session")
    add_client_args(ingest)
    ingest_source = ingest.add_mutually_exclusive_group(required=True)
    ingest_source.add_argument("--input", help="dataset file to ingest")
    ingest_source.add_argument("--profile", choices=available_profiles())
    ingest.add_argument("--num-vectors", type=int, default=None)
    ingest.add_argument("--seed", type=int, default=42)
    ingest.add_argument("--algorithm", default="STR-L2",
                        help="algorithm when the session is opened by this "
                             "call (default STR-L2)")
    ingest.add_argument("--theta", type=float, default=0.7)
    ingest.add_argument("--decay", type=float, default=0.01)
    ingest.add_argument("--backend", default=None,
                        choices=["auto", *known_backends()])
    ingest.add_argument("--workers", type=int, default=None,
                        help="run the session on the sharded engine with N "
                             "workers (STR only)")
    ingest.add_argument("--shard-executor", default="process",
                        choices=["process", "serial"],
                        help="with --workers: one process per shard, or "
                             "serial in-process shards (default: process)")
    _add_approx_args(ingest)
    ingest.add_argument("--queue-max", type=int, default=4096)
    ingest.add_argument("--batch-max", type=int, default=128,
                        help="micro-batch flush size (items)")
    ingest.add_argument("--batch-delay-ms", type=float, default=50.0,
                        help="micro-batch flush delay (milliseconds)")
    ingest.add_argument("--backpressure", default="block",
                        choices=["block", "drop", "error"])
    ingest.add_argument("--sink-jsonl", default=None, metavar="PATH",
                        help="also append reported pairs to a JSONL file "
                             "on the server")
    ingest.add_argument("--from", dest="start_at", type=int, default=0,
                        metavar="N", help="skip the first N vectors")
    ingest.add_argument("--resume", action="store_true",
                        help="skip the vectors the session already processed "
                             "(use after a server restart)")
    ingest.add_argument("--chunk-size", type=int, default=500,
                        help="vectors per ingest request (default 500)")
    ingest.add_argument("--tenant", default="default",
                        help="tenant the session belongs to (quota and "
                             "fair-share unit of the multi-tenant server; "
                             "default 'default')")

    results = subparsers.add_parser(
        "results", help="read the pairs a served session has reported")
    add_client_args(results)
    results.add_argument("--cursor", type=int, default=0,
                         help="resume from this result cursor")
    results.add_argument("--limit", type=int, default=None,
                         help="maximum pairs to fetch")
    results.add_argument("--follow", action="store_true",
                         help="keep polling until the session drains")
    results.add_argument("--stats", action="store_true",
                         help="print live counters + latency percentiles "
                              "instead of pairs")

    drain = subparsers.add_parser(
        "drain", help="flush a served session and print final statistics")
    add_client_args(drain)

    sessions = subparsers.add_parser(
        "sessions", help="list the sessions of a running server")
    sessions.add_argument("--host", default="127.0.0.1")
    sessions.add_argument("--port", type=int, default=7788)
    sessions.add_argument("--tenant", default=None,
                          help="only show this tenant's sessions")
    sessions.add_argument("--evict", metavar="SESSION", default=None,
                          help="checkpoint-and-evict this idle session "
                               "before listing (multi-tenant server only)")

    return parser


#: How to turn each figure experiment's rows into a chart (group, x, y, log-x).
_CHART_SPECS: dict[str, tuple[str, str, str, bool]] = {
    "figure2": ("dataset", "tau", "ratio", True),
    "figure3": ("algorithm", "theta", "time_s", False),
    "figure4": ("algorithm", "theta", "time_s", False),
    "figure5": ("indexing", "theta", "time_s", False),
    "figure6": ("indexing", "theta", "entries", False),
    "figure7": ("dataset", "lambda", "time_s", True),
    "figure8": ("dataset", "theta", "time_s", False),
}


def _load_vectors(args: argparse.Namespace):
    if getattr(args, "input", None):
        return list(read_vectors(args.input)), args.input
    vectors = generate_profile_corpus(
        args.profile, num_vectors=args.num_vectors, seed=args.seed
    )
    return vectors, args.profile


def _cmd_profiles(_args: argparse.Namespace) -> int:
    rows = []
    for name in available_profiles():
        profile = PROFILES[name]
        rows.append({
            "profile": name,
            "vectors": profile.num_vectors,
            "vocabulary": profile.vocabulary_size,
            "avg_nnz": profile.avg_nnz,
            "arrivals": profile.arrival_process,
            "description": profile.description,
        })
    print(render_table(rows, title="Built-in dataset profiles"))
    return 0


def _cmd_backends(_args: argparse.Namespace) -> int:
    default = default_backend()
    rows = []
    for info in probe_backends():
        rows.append({
            "backend": info["name"],
            "available": "yes" if info["available"] else "NO",
            "default": "yes" if info["name"] == default else "",
            "description": info["description"],
            "reason": info["reason"] or "",
        })
    print(render_table(rows, title="Compute backends (select with --backend "
                                   "or the SSSJ_BACKEND environment variable)"))
    return 0


def _require_backend(backend: str | None) -> str | None:
    """Why an explicitly requested backend cannot run here, or ``None``.

    Library entry points degrade gracefully (:func:`repro.backends.get_backend`
    falls back with a warning so sessions and restored checkpoints keep
    working), but an explicit ``--backend`` on the command line should fail
    fast instead of silently measuring a different backend.
    """
    if backend is None:
        return None
    available, reason = backend_availability(backend)
    if available:
        return None
    hint = ""
    if backend.lower() == "numba":
        hint = " — pip install numba to enable the compiled tier"
    return f"--backend {backend}: {reason}{hint}"


def _cmd_generate(args: argparse.Namespace) -> int:
    vectors = generate_profile_corpus(args.profile, num_vectors=args.num_vectors,
                                      seed=args.seed)
    count = write_vectors(args.output, vectors)
    print(f"wrote {count} vectors of profile '{args.profile}' to {args.output}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    count = convert(args.source, args.destination)
    print(f"converted {count} vectors from {args.source} to {args.destination}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    vectors, name = _load_vectors(args)
    timestamp_type = "file"
    if getattr(args, "profile", None):
        timestamp_type = get_profile(args.profile).arrival_process
    stats = dataset_statistics(vectors, name=str(name), timestamp_type=timestamp_type)
    print(render_table([stats.as_row()], title="Dataset statistics"))
    return 0


def _workers_from_env() -> int | None:
    """Parse ``SSSJ_WORKERS`` (0/empty → single-process), or fail cleanly.

    Parsed only where the value matters (the ``run`` command), so a
    malformed variable cannot take down unrelated subcommands.
    """
    raw = os.environ.get("SSSJ_WORKERS", "").strip()
    if not raw:
        return None
    try:
        workers = int(raw)
    except ValueError:
        raise SystemExit(
            f"SSSJ_WORKERS={raw!r} is not an integer") from None
    if workers < 0:
        raise SystemExit(f"SSSJ_WORKERS must be >= 0, got {workers}")
    return workers or None


def _validate_workers(algorithm: str, workers: int | None) -> str | None:
    """Why ``--workers`` cannot apply, or ``None`` when it can.

    The sharded engine parallelises the STR framework only; validated
    here — before any dataset is loaded — so the user gets a clear error
    immediately instead of a help-text footnote and a late crash.
    """
    if workers is None:
        return None
    if workers < 1:
        return f"--workers must be >= 1, got {workers}"
    from repro.core.join import parse_algorithm
    from repro.exceptions import UnknownAlgorithmError

    try:
        framework, _ = parse_algorithm(algorithm)
    except UnknownAlgorithmError as error:
        return str(error)
    if framework != "STR":
        return (f"--workers runs the sharded engine, which supports the STR "
                f"framework only (got {algorithm!r}); drop --workers or use "
                f"e.g. STR-{algorithm.split('-', 1)[-1].upper()}")
    return None


def _resolve_approx(args: argparse.Namespace) -> tuple[str | None, str | None]:
    """Resolve the approx spec from the flags or ``SSSJ_APPROX``.

    Returns ``(canonical_spec_or_None, error_or_None)``.  Like
    :func:`_workers_from_env`, the environment variable is only consulted
    by the subcommands that carry the flags, so a malformed value cannot
    take down unrelated subcommands.
    """
    from repro.approx import APPROX_ENV_VAR, parse_approx
    from repro.exceptions import InvalidParameterError

    value = args.approx
    source = "--approx"
    if value is None:
        value = os.environ.get(APPROX_ENV_VAR, "").strip() or None
        source = APPROX_ENV_VAR
    try:
        config = parse_approx(value, bands=args.approx_bands,
                              rows=args.approx_rows)
    except InvalidParameterError as error:
        if source == APPROX_ENV_VAR and value is not None:
            return None, f"{APPROX_ENV_VAR}={value!r}: {error}"
        return None, str(error)
    return (config.spec() if config is not None else None), None


def _validate_approx(algorithm: str, approx: str | None,
                     workers: int | None) -> str | None:
    """Why the approximate tier cannot apply, or ``None`` when it can.

    Mirrors :func:`_validate_workers`: scheme and engine conflicts are
    rejected here, before any dataset is loaded or session opened.
    """
    if approx is None:
        return None
    if workers is not None:
        return ("the approximate tier is not supported by the sharded "
                "engine; drop either --approx or --workers")
    from repro.core.join import parse_algorithm
    from repro.exceptions import UnknownAlgorithmError

    try:
        _, index = parse_algorithm(algorithm)
    except UnknownAlgorithmError as error:
        return str(error)
    if index == "INV":
        return ("--approx requires a prefix-filter scheme (AP, L2, L2AP); "
                f"the INV schemes have no prefilter stage (got {algorithm!r})")
    return None


def _resolve_fault_plan(args: argparse.Namespace):
    """Resolve the fault plan from ``--fault-plan`` or ``SSSJ_FAULT_PLAN``.

    Returns ``(FaultPlan_or_None, error_or_None)``.  Mirrors
    :func:`_resolve_approx`: malformed specs fail fast (exit 2 in the
    callers) before any dataset is loaded or worker spawned, and the
    environment variable is only consulted by subcommands carrying the
    flag.
    """
    from repro.exceptions import InvalidParameterError
    from repro.faults import FAULT_PLAN_ENV_VAR, parse_fault_plan

    value = args.fault_plan
    source = "--fault-plan"
    if value is None:
        value = os.environ.get(FAULT_PLAN_ENV_VAR, "").strip() or None
        source = FAULT_PLAN_ENV_VAR
    try:
        plan = parse_fault_plan(value)
    except InvalidParameterError as error:
        if source == FAULT_PLAN_ENV_VAR and value is not None:
            return None, f"{FAULT_PLAN_ENV_VAR}={value!r}: {error}"
        return None, str(error)
    if plan is None and args.fault_log is not None:
        return None, "--fault-log requires --fault-plan (or $SSSJ_FAULT_PLAN)"
    return plan, None


def _validate_fault_plan(plan, workers: int | None) -> str | None:
    """Why a ``sssj run`` fault plan cannot apply, or ``None`` when it can.

    ``sssj serve`` accepts every event kind (worker faults arm when a
    session opens with workers; sink/sever faults arm at the service
    layer), so only the batch command needs this gate.
    """
    if plan is None:
        return None
    if plan.service_events:
        kinds = ", ".join(sorted({e.kind for e in plan.service_events}))
        return (f"fault kind(s) {kinds} target the service layer; use them "
                "with 'sssj serve', not 'sssj run'")
    if workers is None:
        return ("worker fault injection requires the sharded engine; "
                "add --workers N")
    return None


def _cmd_run(args: argparse.Namespace) -> int:
    workers = args.workers if args.workers is not None else _workers_from_env()
    error = _require_backend(args.backend)
    if error is None:
        error = _validate_workers(args.algorithm, workers)
    if error is None:
        approx, error = _resolve_approx(args)
    if error is None:
        error = _validate_approx(args.algorithm, approx, workers)
    if error is None:
        fault_plan, error = _resolve_fault_plan(args)
    if error is None:
        error = _validate_fault_plan(fault_plan, workers)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    injector = None
    if fault_plan is not None:
        from repro.faults import FaultInjector

        injector = FaultInjector(fault_plan)
    vectors, name = _load_vectors(args)
    metrics = run_algorithm(args.algorithm, vectors, args.theta, args.decay,
                            dataset=str(name), backend=args.backend,
                            workers=workers,
                            shard_executor=args.shard_executor,
                            approx=approx, fault_plan=injector)
    if injector is not None:
        fired = ", ".join(sorted({e["kind"] for e in injector.log})) or "none"
        print(f"fault plan {fault_plan.spec()!r}: events fired/observed: "
              f"{fired}")
        if args.fault_log:
            injector.write_log(args.fault_log)
            print(f"fault event log written to {args.fault_log}")
    print(render_table([metrics.as_row()], title=f"Run: {args.algorithm} on {name}"))
    if args.show_pairs > 0:
        from repro.core.join import create_join

        join = create_join(args.algorithm, args.theta, args.decay,
                           backend=args.backend, approx=approx)
        shown = 0
        for pair in join.run(vectors):
            print(f"  pair {pair.id_a} ~ {pair.id_b}  sim={pair.similarity:.4f} "
                  f"Δt={pair.time_delta:.3f}")
            shown += 1
            if shown >= args.show_pairs:
                break
    return 0


def _profile_rows(kernel, total_elapsed: float) -> list[dict]:
    """Stage rows for ``sssj profile``, read back from the metrics registry.

    The profiling kernel exports its accumulators onto the shared
    :mod:`repro.obs` registry; reading the table from there (one scrape,
    same ``sssj_stage_seconds_total`` series Prometheus sees) keeps the
    CLI view and the metrics endpoint telling one story.  Falls back to
    the kernel's own accumulators when observability is disabled.
    """
    from repro import obs
    from repro.backends.profiling import STAGES

    if not obs.enabled():
        return kernel.report_rows(total_elapsed)
    registry = obs.get_registry()
    registry.run_collectors()
    rows = []
    attributed = 0.0
    for stage in STAGES:
        seconds = registry.get_value("sssj_stage_seconds_total",
                                     stage=stage, backend=kernel.name) or 0.0
        calls = registry.get_value("sssj_stage_calls_total",
                                   stage=stage, backend=kernel.name) or 0
        attributed += seconds
        rows.append({
            "stage": stage,
            "seconds": round(seconds, 4),
            "share": (f"{seconds / total_elapsed:.1%}"
                      if total_elapsed else "-"),
            "calls": int(calls),
        })
    other = max(total_elapsed - attributed, 0.0)
    rows.append({
        "stage": "other (driver)",
        "seconds": round(other, 4),
        "share": f"{other / total_elapsed:.1%}" if total_elapsed else "-",
        "calls": "",
    })
    return rows


def _cmd_profile(args: argparse.Namespace) -> int:
    import time

    from repro.backends import get_backend
    from repro.backends.profiling import ProfilingKernel
    from repro.core.join import create_join

    if not args.algorithm.upper().startswith("STR-"):
        # MB rebuilds a throw-away batch index per window; sharing one
        # profiled kernel instance across those indexes would violate the
        # per-index kernel contract (and leak interned state).
        print("sssj profile supports the STR framework "
              f"(got {args.algorithm!r}); use e.g. STR-L2AP", file=sys.stderr)
        return 2
    error = _require_backend(args.backend)
    if error is None:
        approx, error = _resolve_approx(args)
    if error is None:
        error = _validate_approx(args.algorithm, approx, None)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    from repro.bench.metrics import LatencyStats

    vectors, name = _load_vectors(args)
    kernel = ProfilingKernel(get_backend(args.backend)())
    join = create_join(args.algorithm, args.theta, args.decay, backend=kernel,
                       approx=approx)
    latency = LatencyStats()
    start = time.perf_counter()
    pairs = 0
    for vector in vectors:
        item_start = time.perf_counter()
        pairs += len(join.process(vector))
        latency.record(time.perf_counter() - item_start)
    pairs += len(join.flush())
    elapsed = time.perf_counter() - start
    print(render_table(
        _profile_rows(kernel, elapsed),
        title=(f"Per-stage breakdown: {args.algorithm} on {name} "
               f"({kernel.name}, θ={args.theta}, λ={args.decay})"),
    ))
    if kernel.warmup_seconds:
        print(f"one-time JIT warm-up: {kernel.warmup_seconds:.2f}s "
              "(paid before the run; not part of the breakdown)")
    stats = join.stats
    print(render_table(
        [{
            "entries_indexed": stats.entries_indexed,
            "entries_traversed": stats.entries_traversed,
            "entries_pruned": stats.entries_pruned,
            "candidates_generated": stats.candidates_generated,
            "candidates_sketch_pruned": stats.candidates_sketch_pruned,
            "full_similarities": stats.full_similarities,
            "pairs_output": stats.pairs_output,
        }],
        title="Operation counters (pruning effectiveness: "
              "entries_pruned / entries_traversed)",
    ))
    print(render_table(
        [latency.summary()],
        title="Per-item latency percentiles (same row as the service "
              "'stats' endpoint)",
    ))
    throughput = len(vectors) / elapsed if elapsed else 0.0
    print(f"total {elapsed:.2f}s for {len(vectors)} vectors "
          f"({throughput:,.0f} vectors/s), {pairs} pairs")
    return 0


def _cmd_shards(args: argparse.Namespace) -> int:
    from repro.shard import plan_report

    vectors, name = _load_vectors(args)
    balance = plan_report(vectors, args.workers)
    print(render_table(
        balance.rows(),
        title=(f"Shard plan for {name}: {balance.total_postings} postings "
               f"over {balance.total_dimensions} dimensions, "
               f"{args.workers} shards"),
    ))
    print(f"posting-mass balance: max share {balance.max_share:.1%} "
          f"(perfect {1 / args.workers:.1%}), "
          f"max/mean skew {balance.skew:.3f} (perfect 1.000)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    error = _require_backend(args.backend)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    algorithms = [token.strip() for token in args.algorithms.split(",") if token.strip()]
    thetas = tuple(float(token) for token in args.thetas.split(",") if token)
    decays = tuple(float(token) for token in args.decays.split(",") if token)
    scale = default_scale()
    if args.num_vectors is not None:
        counts = dict(scale.vector_counts)
        counts[args.profile] = args.num_vectors
        scale = ExperimentScale(vector_counts=counts, thetas=thetas, decays=decays,
                                seed=args.seed)
    else:
        scale = ExperimentScale(vector_counts=dict(scale.vector_counts), thetas=thetas,
                                decays=decays, seed=args.seed)
    results = sweep(algorithms, [args.profile], scale, backend=args.backend)
    print(render_table([metrics.as_row() for metrics in results],
                       title=f"Sweep on {args.profile}"))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    base = default_scale()
    counts = {name: max(50, int(count * args.scale))
              for name, count in base.vector_counts.items()}
    scale = ExperimentScale(vector_counts=counts, seed=args.seed)
    result = run_experiment(args.experiment_id, scale)
    print(result.render())
    if args.plot and args.experiment_id in _CHART_SPECS:
        from repro.bench.plotting import chart_from_series

        group, x, y, log_x = _CHART_SPECS[args.experiment_id]
        print()
        print(chart_from_series(result.rows, group=group, x=x, y=y, log_x=log_x,
                                title=f"{args.experiment_id}: {y} vs {x} (by {group})"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    fault_plan, error = _resolve_fault_plan(args)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    scheduler_options = None
    if args.pool_workers is not None:
        if args.pool_workers <= 0:
            print("--pool-workers must be positive", file=sys.stderr)
            return 2
        if args.evict_after is not None and not args.checkpoint_dir:
            print("--evict-after needs --checkpoint-dir (eviction is "
                  "checkpoint-backed)", file=sys.stderr)
            return 2
        from repro.service import TenantQuota

        scheduler_options = {
            "default_quota": TenantQuota(
                max_sessions=args.quota_sessions,
                max_queued=args.quota_queued,
                rate=args.quota_rate),
            "evict_after": args.evict_after,
            "adaptive_batch": args.adaptive_batch,
            "adaptive_min_items": args.adaptive_min,
            "adaptive_max_items": args.adaptive_max,
            "adaptive_target_p99_ms": args.adaptive_target_p99_ms,
        }
    server, recovered = serve(
        host=args.host, port=args.port,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every_items=args.checkpoint_every,
        checkpoint_every_seconds=args.checkpoint_seconds,
        read_timeout=args.read_timeout if args.read_timeout > 0 else None,
        fault_plan=fault_plan,
        pool_workers=args.pool_workers,
        scheduler_options=scheduler_options,
        dispatch_workers=args.dispatch_workers,
        metrics_port=args.metrics_port,
        metrics_host=args.metrics_host,
        trace_sample=args.trace_sample,
        span_log=args.span_log,
        slow_batch_ms=args.slow_batch_ms,
        trace_seed=args.trace_seed,
    )
    host, port = server.address
    metrics_server = getattr(server, "obs_metrics_server", None)
    if metrics_server is not None:
        m_host, m_port = metrics_server.address
        print(f"metrics endpoint on http://{m_host}:{m_port}/metrics",
              flush=True)
    if args.pool_workers is not None:
        knobs = f"pool={args.pool_workers}"
        if args.evict_after is not None:
            knobs += f" evict_after={args.evict_after:g}s"
        if args.adaptive_batch:
            knobs += " adaptive_batch"
        print(f"multi-tenant scheduler enabled ({knobs})", flush=True)
    if recovered:
        print(f"recovered sessions from {args.checkpoint_dir}: "
              + ", ".join(recovered), flush=True)
    if fault_plan is not None:
        print(f"fault plan armed: {fault_plan.spec()}", flush=True)
    # The scripts that babysit the server (CI smoke, examples) parse this
    # line for the resolved port, so keep its shape stable.
    print(f"sssj service listening on {host}:{port}", flush=True)
    server.serve_until_shutdown()
    injector = server.service.fault_injector
    if injector is not None and args.fault_log:
        injector.write_log(args.fault_log)
        print(f"fault event log written to {args.fault_log}", flush=True)
    print("sssj service stopped", flush=True)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top
    from repro.service import ServiceClientError

    if args.interval <= 0:
        print("--interval must be positive", file=sys.stderr)
        return 2
    if args.iterations is not None and args.iterations <= 0:
        print("--iterations must be positive", file=sys.stderr)
        return 2
    try:
        return run_top(args.host, args.port, interval=args.interval,
                       iterations=args.iterations,
                       clear=False if args.no_clear else None)
    except ServiceClientError as error:
        print(f"top failed: {error}", file=sys.stderr)
        return 1


def _client_for(args: argparse.Namespace):
    from repro.service import ServiceClient

    return ServiceClient(args.host, args.port)


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.service import ServiceClientError

    error = _require_backend(args.backend)
    if error is None:
        error = _validate_workers(args.algorithm, args.workers)
    if error is None:
        approx, error = _resolve_approx(args)
    if error is None:
        error = _validate_approx(args.algorithm, approx, args.workers)
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    vectors, name = _load_vectors(args)
    open_options = {
        "algorithm": args.algorithm,
        "backend": args.backend,
        "workers": args.workers,
        "shard_executor": args.shard_executor,
        "approx": approx,
        "queue_max": args.queue_max,
        "batch_max_items": args.batch_max,
        "batch_max_delay_ms": args.batch_delay_ms,
        "backpressure": args.backpressure,
        "tenant": args.tenant,
        # Dataset readers/generators already unit-normalise; skipping the
        # server-side re-normalisation keeps the streamed values bitwise
        # identical to what `sssj run` would process.
        "normalize": False,
    }
    if args.sink_jsonl:
        open_options["sinks"] = [{"kind": "jsonl", "path": args.sink_jsonl}]
    try:
        with _client_for(args) as client:
            opened = client.open_session(args.session, theta=args.theta,
                                         decay=args.decay, **open_options)
            start_at = args.start_at
            if args.resume:
                start_at = max(start_at, int(opened.get("processed", 0)))
            if opened.get("resumed"):
                print(f"session {args.session!r} resumed from checkpoint "
                      f"({opened.get('processed', 0)} vectors already "
                      f"processed)")
            totals = client.ingest(args.session, vectors[start_at:],
                                   chunk_size=args.chunk_size)
    except ServiceClientError as error:
        print(f"ingest failed: {error}", file=sys.stderr)
        return 1
    print(f"ingested {totals['accepted']} vectors of {name} into session "
          f"{args.session!r} (skipped {start_at}, dropped {totals['dropped']})")
    return 0


def _print_session_stats(response: dict) -> None:
    for name, stats in response.get("sessions", {}).items():
        counters = stats.pop("counters", {})
        latency = stats.pop("latency", {})
        sinks = stats.pop("sinks", [])
        print(render_table([stats], title=f"Session {name!r}"))
        print(render_table([latency],
                           title="Per-item ingest latency percentiles (ms)"))
        print(render_table([counters], title="Operation counters"))
        if sinks:
            print(render_table(sinks, title="Sinks"))


def _cmd_results(args: argparse.Namespace) -> int:
    from repro.service import ServiceClientError

    try:
        with _client_for(args) as client:
            if args.stats:
                _print_session_stats(client.stats(args.session))
                return 0
            shown = 0
            if args.follow:
                for pair in client.iter_results(args.session,
                                                cursor=args.cursor,
                                                timeout=None):
                    print(f"pair {pair.id_a} ~ {pair.id_b}  "
                          f"sim={pair.similarity:.4f} Δt={pair.time_delta:.3f}")
                    shown += 1
                    if args.limit is not None and shown >= args.limit:
                        break
            else:
                response = client.results(args.session, cursor=args.cursor,
                                          limit=args.limit)
                for pair in response["pairs"]:
                    print(f"pair {pair.id_a} ~ {pair.id_b}  "
                          f"sim={pair.similarity:.4f} Δt={pair.time_delta:.3f}")
                    shown += 1
                print(f"-- {shown} pairs, next cursor {response['cursor']}, "
                      f"session {response['status']}")
    except ServiceClientError as error:
        print(f"results failed: {error}", file=sys.stderr)
        return 1
    return 0


def _cmd_sessions(args: argparse.Namespace) -> int:
    from repro.service import ServiceClientError

    try:
        with _client_for(args) as client:
            if args.evict:
                evicted = client.evict(args.evict)
                if evicted.get("already_evicted"):
                    print(f"session {args.evict!r} was already evicted")
                else:
                    print(f"session {args.evict!r} evicted "
                          f"(checkpoint {evicted.get('checkpoint')})")
            response = client.sessions(args.tenant)
    except ServiceClientError as error:
        print(f"sessions failed: {error}", file=sys.stderr)
        return 1
    rows = response.get("sessions", [])
    if not rows:
        scope = f" for tenant {args.tenant!r}" if args.tenant else ""
        print(f"no sessions{scope}")
        return 0
    print(render_table(rows, title=f"{len(rows)} session(s)"))
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    from repro.service import ServiceClientError

    try:
        with _client_for(args) as client:
            summary = client.drain(args.session)
            print(f"session {args.session!r} drained: "
                  f"{summary.get('processed', 0)} vectors processed, "
                  f"{summary.get('pairs_emitted', 0)} pairs emitted"
                  + (f", checkpoint {summary['checkpoint']}"
                     if summary.get("checkpoint") else ""))
            _print_session_stats(client.stats(args.session))
    except ServiceClientError as error:
        print(f"drain failed: {error}", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "profiles": _cmd_profiles,
    "backends": _cmd_backends,
    "generate": _cmd_generate,
    "convert": _cmd_convert,
    "stats": _cmd_stats,
    "run": _cmd_run,
    "profile": _cmd_profile,
    "shards": _cmd_shards,
    "sweep": _cmd_sweep,
    "experiment": _cmd_experiment,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "ingest": _cmd_ingest,
    "results": _cmd_results,
    "sessions": _cmd_sessions,
    "drain": _cmd_drain,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``sssj`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
