"""Result model and per-run statistics.

Similar pairs discovered by any of the algorithms are reported as
:class:`SimilarPair` objects.  The algorithms also keep detailed operation
counters in a :class:`JoinStatistics` instance; those counters are the
machine-independent metrics the paper uses to explain its running-time
results (index entries traversed, candidates generated, full similarities
computed, re-indexings, ...).

Collectors decouple *how* pairs are consumed from the join algorithms:

* :class:`ListCollector` accumulates every pair in memory,
* :class:`CountingCollector` only counts them (useful for benchmarks),
* :class:`CallbackCollector` forwards each pair to a user callback,
* :class:`TopKCollector` keeps only the ``k`` most similar pairs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "SimilarPair",
    "JoinStatistics",
    "ShardCounters",
    "merge_shard_counters",
    "PairCollector",
    "ListCollector",
    "CountingCollector",
    "CallbackCollector",
    "TopKCollector",
]


@dataclass(frozen=True, order=True)
class SimilarPair:
    """A reported pair of similar vectors.

    Attributes
    ----------
    id_a, id_b:
        Identifiers of the two vectors; ``id_a`` is always the smaller id so
        that pairs compare and deduplicate consistently.
    similarity:
        The time-dependent similarity ``sim_Δt`` of the pair.
    time_delta:
        Absolute difference of the arrival times.
    dot:
        The raw content similarity (cosine) before time decay.
    reported_at:
        Stream time at which the pair was emitted; for the STR framework
        this equals the later arrival time, for MB it can be up to ``τ``
        later (the reporting delay the paper discusses).
    """

    id_a: int
    id_b: int
    similarity: float = field(compare=False)
    time_delta: float = field(compare=False, default=0.0)
    dot: float = field(compare=False, default=0.0)
    reported_at: float = field(compare=False, default=0.0)

    @staticmethod
    def make(id_x: int, id_y: int, similarity: float, *, time_delta: float = 0.0,
             dot: float = 0.0, reported_at: float = 0.0) -> "SimilarPair":
        """Create a pair with canonically ordered ids."""
        id_a, id_b = (id_x, id_y) if id_x <= id_y else (id_y, id_x)
        return SimilarPair(id_a=id_a, id_b=id_b, similarity=similarity,
                           time_delta=time_delta, dot=dot, reported_at=reported_at)

    @property
    def key(self) -> tuple[int, int]:
        """Canonical ``(smaller id, larger id)`` key of the pair."""
        return (self.id_a, self.id_b)



@dataclass
class JoinStatistics:
    """Operation counters accumulated during one join run.

    These mirror the quantities reported in the paper's evaluation:
    ``entries_traversed`` (Figures 2 and 6), ``candidates_generated`` and
    ``full_similarities`` (mentioned in Q2), plus maintenance counters for
    the streaming indexes.
    """

    vectors_processed: int = 0
    pairs_output: int = 0
    entries_traversed: int = 0
    candidates_generated: int = 0
    candidates_sketch_pruned: int = 0
    full_similarities: int = 0
    entries_indexed: int = 0
    entries_pruned: int = 0
    residual_entries: int = 0
    reindexings: int = 0
    reindexed_entries: int = 0
    index_rebuilds: int = 0
    max_index_size: int = 0
    max_residual_size: int = 0
    elapsed_seconds: float = 0.0

    def merge(self, other: "JoinStatistics") -> None:
        """Accumulate another statistics object into this one."""
        self.vectors_processed += other.vectors_processed
        self.pairs_output += other.pairs_output
        self.entries_traversed += other.entries_traversed
        self.candidates_generated += other.candidates_generated
        self.candidates_sketch_pruned += other.candidates_sketch_pruned
        self.full_similarities += other.full_similarities
        self.entries_indexed += other.entries_indexed
        self.entries_pruned += other.entries_pruned
        self.residual_entries += other.residual_entries
        self.reindexings += other.reindexings
        self.reindexed_entries += other.reindexed_entries
        self.index_rebuilds += other.index_rebuilds
        self.max_index_size = max(self.max_index_size, other.max_index_size)
        self.max_residual_size = max(self.max_residual_size, other.max_residual_size)
        self.elapsed_seconds += other.elapsed_seconds

    def as_dict(self) -> dict[str, float]:
        """Plain-dictionary view used by the benchmark harness and the CLI."""
        return {
            "vectors_processed": self.vectors_processed,
            "pairs_output": self.pairs_output,
            "entries_traversed": self.entries_traversed,
            "candidates_generated": self.candidates_generated,
            "candidates_sketch_pruned": self.candidates_sketch_pruned,
            "full_similarities": self.full_similarities,
            "entries_indexed": self.entries_indexed,
            "entries_pruned": self.entries_pruned,
            "residual_entries": self.residual_entries,
            "reindexings": self.reindexings,
            "reindexed_entries": self.reindexed_entries,
            "index_rebuilds": self.index_rebuilds,
            "max_index_size": self.max_index_size,
            "max_residual_size": self.max_residual_size,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @property
    def operations(self) -> int:
        """Aggregate operation count used for budget enforcement (Table 2)."""
        return (self.entries_traversed + self.full_similarities
                + self.entries_indexed + self.reindexed_entries)


@dataclass
class ShardCounters:
    """Per-shard operation counters of the sharded join (:mod:`repro.shard`).

    The coordinator folds the per-query partial counts straight into the
    global :class:`JoinStatistics` (so sharded runs report identical
    counters to single-process runs); these per-shard totals exist for
    *observability* — the ``sssj shards`` balance report, the benchmark
    artifact's per-shard breakdown and the load-skew assertions in the
    tests read them.
    """

    shard: int = 0
    dimensions: int = 0
    entries_indexed: int = 0
    entries_traversed: int = 0
    entries_removed: int = 0
    scans: int = 0
    arena_compactions: int = 0

    def merge(self, other: "ShardCounters") -> None:
        """Accumulate another shard's counters into this one (totals row)."""
        self.dimensions += other.dimensions
        self.entries_indexed += other.entries_indexed
        self.entries_traversed += other.entries_traversed
        self.entries_removed += other.entries_removed
        self.scans += other.scans
        self.arena_compactions += other.arena_compactions

    def as_dict(self) -> dict[str, int]:
        return {
            "shard": self.shard,
            "dimensions": self.dimensions,
            "entries_indexed": self.entries_indexed,
            "entries_traversed": self.entries_traversed,
            "entries_removed": self.entries_removed,
            "scans": self.scans,
            "arena_compactions": self.arena_compactions,
        }


def merge_shard_counters(counters: "list[ShardCounters]") -> ShardCounters:
    """Totals row over every shard's counters (``shard`` is set to -1)."""
    total = ShardCounters(shard=-1)
    for shard_counters in counters:
        total.merge(shard_counters)
    return total


class PairCollector:
    """Base class for pair sinks; subclasses override :meth:`collect`."""

    def collect(self, pair: SimilarPair) -> None:
        raise NotImplementedError

    def __call__(self, pair: SimilarPair) -> None:
        self.collect(pair)


class ListCollector(PairCollector):
    """Accumulates every reported pair in a list."""

    def __init__(self) -> None:
        self.pairs: list[SimilarPair] = []

    def collect(self, pair: SimilarPair) -> None:
        self.pairs.append(pair)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[SimilarPair]:
        return iter(self.pairs)

    def keys(self) -> set[tuple[int, int]]:
        """Set of canonical pair keys, convenient for equivalence tests."""
        return {pair.key for pair in self.pairs}


class CountingCollector(PairCollector):
    """Counts reported pairs without storing them."""

    def __init__(self) -> None:
        self.count = 0

    def collect(self, pair: SimilarPair) -> None:
        self.count += 1


class CallbackCollector(PairCollector):
    """Forwards every pair to a user-provided callable."""

    def __init__(self, callback: Callable[[SimilarPair], None]) -> None:
        self._callback = callback

    def collect(self, pair: SimilarPair) -> None:
        self._callback(pair)


class TopKCollector(PairCollector):
    """Keeps only the ``k`` pairs with the highest similarity."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._heap: list[tuple[float, int, SimilarPair]] = []
        self._counter = 0

    def collect(self, pair: SimilarPair) -> None:
        self._counter += 1
        item = (pair.similarity, self._counter, pair)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, item)
        elif item[0] > self._heap[0][0]:
            heapq.heapreplace(self._heap, item)

    @property
    def pairs(self) -> list[SimilarPair]:
        """The retained pairs, most similar first."""
        return [entry[2] for entry in sorted(self._heap, reverse=True)]
