"""Common interface of the two algorithmic frameworks (MB and STR).

Both frameworks consume a stream of timestamped vectors and report the
pairs whose time-dependent similarity reaches the threshold.  They differ
in *when* pairs are reported (STR reports a pair as soon as its second
member arrives, MB defers to window boundaries) and in how they adapt the
underlying indexing scheme, but they share the same driver interface:

``process(vector)``
    feed one vector, get back the pairs that became reportable,
``flush()``
    signal end-of-stream and get back any still-buffered pairs (MB only),
``run(stream)``
    convenience generator over a whole stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator

from repro.core.results import JoinStatistics, SimilarPair
from repro.core.similarity import time_horizon, validate_decay, validate_threshold
from repro.core.vector import SparseVector

__all__ = ["JoinFramework"]


class JoinFramework(ABC):
    """Base class of the MiniBatch (MB) and Streaming (STR) frameworks.

    ``backend`` selects the compute backend the underlying index(es) run
    their hot loops on — a name from
    :func:`repro.backends.available_backends` or ``None``/``"auto"`` for
    the fastest available one.
    """

    #: Framework name used in algorithm strings ("MB", "STR").
    name: str = "abstract"

    def __init__(self, threshold: float, decay: float, *,
                 index: str = "L2", stats: JoinStatistics | None = None,
                 backend: str | None = None,
                 approx: str | None = None) -> None:
        self.threshold = validate_threshold(threshold)
        self.decay = validate_decay(decay)
        self.index_name = index.upper()
        self.backend = backend
        self.stats = stats if stats is not None else JoinStatistics()
        # Canonical approx spec string (or None when the join is exact):
        # a stable form that checkpoints embed and restore_join replays.
        if approx is not None:
            from repro.approx import parse_approx

            config = parse_approx(approx)
            self.approx = config.spec() if config is not None else None
        else:
            self.approx = None

    @property
    def horizon(self) -> float:
        """The time horizon ``τ`` implied by the parameters."""
        return time_horizon(self.threshold, self.decay)

    @property
    def algorithm(self) -> str:
        """Human-readable algorithm name, e.g. ``"STR-L2"``."""
        return f"{self.name}-{self.index_name}"

    @abstractmethod
    def process(self, vector: SparseVector) -> list[SimilarPair]:
        """Feed one vector; return the pairs that became reportable."""

    def flush(self) -> list[SimilarPair]:
        """Signal end-of-stream; return any pairs still buffered."""
        return []

    def feed(self, vectors: Iterable[SparseVector]) -> list[SimilarPair]:
        """Process a finite chunk of the stream; return the reported pairs.

        Unlike :meth:`run`, ``feed`` does not flush: the join stays open
        for more chunks, which is what incremental callers (micro-batching
        services, tests that checkpoint mid-stream) need.  Feeding the
        concatenation of chunks is equivalent to feeding the whole stream.
        """
        pairs: list[SimilarPair] = []
        for vector in vectors:
            pairs.extend(self.process(vector))
        return pairs

    def run(self, stream: Iterable[SparseVector]) -> Iterator[SimilarPair]:
        """Process a whole stream, yielding pairs in reporting order."""
        for vector in stream:
            yield from self.process(vector)
        yield from self.flush()

    def run_to_list(self, stream: Iterable[SparseVector]) -> list[SimilarPair]:
        """Run over the stream and collect every reported pair."""
        return list(self.run(stream))
