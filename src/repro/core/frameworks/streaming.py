"""The Streaming framework (STR-IDX, Algorithm 5).

STR drives a streaming index directly: for every vector read from the
stream it performs candidate generation and verification against the
current index state and then folds the vector in, with time filtering
applied *inside* the index (Section 5).  Pairs are therefore reported as
soon as their second member arrives, with no delay.
"""

from __future__ import annotations

from repro.core.frameworks.base import JoinFramework
from repro.core.results import JoinStatistics, SimilarPair
from repro.core.vector import SparseVector
from repro.indexes.base import StreamingIndex, create_streaming_index

__all__ = ["StreamingFramework"]


class StreamingFramework(JoinFramework):
    """STR-IDX: one streaming index processes the stream vector by vector."""

    name = "STR"

    def __init__(self, threshold: float, decay: float, *,
                 index: str = "L2", stats: JoinStatistics | None = None,
                 backend: str | None = None,
                 approx: str | None = None) -> None:
        super().__init__(threshold, decay, index=index, stats=stats,
                         backend=backend, approx=approx)
        self._index: StreamingIndex = create_streaming_index(
            self.index_name, self.threshold, self.decay, stats=self.stats,
            backend=backend, approx=self.approx,
        )

    @property
    def index(self) -> StreamingIndex:
        """The underlying streaming index (exposed for inspection and tests)."""
        return self._index

    @property
    def backend_name(self) -> str:
        """Resolved name of the compute backend in use."""
        return self._index.backend_name

    @property
    def index_size(self) -> int:
        """Number of postings currently held by the index."""
        return self._index.size

    def process(self, vector: SparseVector) -> list[SimilarPair]:
        return self._index.process(vector)
