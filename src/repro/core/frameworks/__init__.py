"""Algorithmic frameworks adapting batch indexes to the streaming setting."""

from repro.core.frameworks.base import JoinFramework
from repro.core.frameworks.minibatch import MiniBatchFramework
from repro.core.frameworks.streaming import StreamingFramework

__all__ = ["JoinFramework", "MiniBatchFramework", "StreamingFramework"]
