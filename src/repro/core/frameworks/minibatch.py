"""The MiniBatch framework (MB-IDX, Algorithm 1 + Section 6.1).

MB adapts a *batch* indexing scheme to the stream by slicing time into
windows of length ``τ`` (the time horizon).  Following the refinement of
Section 6.1, two windows are kept at any time:

* the *current* window ``W_k`` accumulates arriving vectors (and their
  maximum vector ``m_k``),
* the *previous* window ``W_{k-1}`` is the one most recently closed.

When the current window ends, the framework

1. combines the maximum vectors of both windows (the AP-based indexes need
   ``m`` to cover the data that will query the index),
2. builds a fresh batch index over ``W_{k-1}``, which also reports the
   similar pairs *within* that window,
3. queries the new index with every vector of ``W_k``, reporting the pairs
   that *span* the two windows, and
4. rotates the windows (``W_{k-1}`` is dropped, ``W_k`` becomes previous).

Every reported pair is re-checked against the time-dependent similarity
(the ``ApplyDecay`` step of Algorithm 1), so MB produces exactly the same
pair set as STR — only later: pairs are reported at window boundaries,
which is the reporting delay the paper highlights as MB's drawback.  MB
also tests pairs up to ``2τ`` apart that time filtering alone would prune,
which is the extra work visible in Figure 2.
"""

from __future__ import annotations

import math

from repro.core.frameworks.base import JoinFramework
from repro.core.results import JoinStatistics, SimilarPair
from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError
from repro.indexes.base import BatchIndex, create_batch_index
from repro.indexes.maxvector import MaxVector

__all__ = ["MiniBatchFramework"]

_NEEDS_MAX_VECTOR = {"AP", "L2AP"}


class MiniBatchFramework(JoinFramework):
    """MB-IDX: pipeline of per-window batch indexes with time filtering."""

    name = "MB"

    def __init__(self, threshold: float, decay: float, *,
                 index: str = "L2", stats: JoinStatistics | None = None,
                 backend: str | None = None,
                 approx: str | None = None) -> None:
        super().__init__(threshold, decay, index=index, stats=stats,
                         backend=backend, approx=approx)
        if self.approx is not None and self.index_name == "INV":
            # Fail at construction, not at the first window close.
            raise InvalidParameterError(
                "the INV schemes accumulate exact dot products during the "
                "scan and have no prefilter stage; approx mode requires a "
                "prefix-filter scheme (AP, L2, L2AP)")
        if decay <= 0:
            raise InvalidParameterError(
                "the MiniBatch framework requires a strictly positive decay rate: "
                "with decay == 0 the window length τ is unbounded"
            )
        self._window_start: float | None = None
        self._current: list[SparseVector] = []
        self._current_max = MaxVector()
        self._previous: list[SparseVector] = []
        self._previous_max = MaxVector()

    # -- window management -------------------------------------------------------

    @property
    def current_window(self) -> list[SparseVector]:
        """Vectors buffered in the current (open) window."""
        return list(self._current)

    @property
    def previous_window(self) -> list[SparseVector]:
        """Vectors of the most recently closed window."""
        return list(self._previous)

    def process(self, vector: SparseVector) -> list[SimilarPair]:
        pairs: list[SimilarPair] = []
        if self._window_start is None:
            self._window_start = vector.timestamp
        horizon = self.horizon
        if horizon > 0:
            # Close as many windows as needed so the vector falls in the
            # current one.
            while vector.timestamp >= self._window_start + horizon:
                if not self._previous and not self._current:
                    # Both windows are empty: fast-forward over the gap in
                    # one step (closing empty windows is a no-op), keeping
                    # the boundaries aligned to multiples of the horizon.
                    skipped = max(1, math.floor(
                        (vector.timestamp - self._window_start) / horizon))
                    self._window_start += skipped * horizon
                    if vector.timestamp < self._window_start + horizon:
                        break
                    continue
                pairs.extend(self._close_window())
                self._window_start += horizon
        elif vector.timestamp > self._window_start:
            # θ = 1 makes the horizon zero: a window can only hold items
            # that arrive simultaneously.  Close the open window and
            # re-anchor instead of advancing by zero forever.
            pairs.extend(self._close_window())
            self._window_start = vector.timestamp
        self._current.append(vector)
        self._current_max.update(vector)
        self.stats.vectors_processed += 1
        return pairs

    def flush(self) -> list[SimilarPair]:
        """Close the two outstanding windows at end-of-stream."""
        pairs = self._close_window()
        pairs.extend(self._close_window())
        return pairs

    def _close_window(self) -> list[SimilarPair]:
        """End the current window: index the previous one and query it (§6.1)."""
        pairs: list[SimilarPair] = []
        if self._previous:
            index = self._build_index(self._previous)
            pairs.extend(self._report_window_pairs(index, self._previous))
            pairs.extend(self._report_cross_pairs(index, self._current))
        elif self._current and not self._previous:
            # Nothing to index yet; the current window will be indexed (and its
            # internal pairs reported) when the *next* window closes.
            pass
        # Rotate the windows.
        self._previous = self._current
        self._previous_max = self._current_max
        self._current = []
        self._current_max = MaxVector()
        self.stats.pairs_output += len(pairs)
        return pairs

    # -- index construction and querying -------------------------------------------

    def _build_index(self, window: list[SparseVector]) -> BatchIndex:
        """Build a fresh batch index over ``window`` (IndConstr-IDX)."""
        self.stats.index_rebuilds += 1
        if self.index_name in _NEEDS_MAX_VECTOR:
            # The m vector must cover both the indexed window and the window
            # that will query it (Section 6.1).
            combined = self._previous_max.copy()
            combined.merge(self._current_max)
            index = create_batch_index(self.index_name, self.threshold,
                                       stats=self.stats, max_vector=combined,
                                       backend=self.backend,
                                       approx=self.approx)
        else:
            index = create_batch_index(self.index_name, self.threshold,
                                       stats=self.stats, backend=self.backend,
                                       approx=self.approx)
        return index

    def _report_window_pairs(self, index: BatchIndex,
                             window: list[SparseVector]) -> list[SimilarPair]:
        """Index ``window`` and report its internal similar pairs (decay applied)."""
        pairs: list[SimilarPair] = []
        report_time = self._window_end()
        for x, y, dot in index.index_dataset(window):
            pair = self._apply_decay(x, y, dot, report_time)
            if pair is not None:
                pairs.append(pair)
        return pairs

    def _report_cross_pairs(self, index: BatchIndex,
                            queries: list[SparseVector]) -> list[SimilarPair]:
        """Query the previous-window index with the current window's vectors."""
        pairs: list[SimilarPair] = []
        report_time = self._window_end()
        for x in queries:
            for y, dot in index.query(x):
                pair = self._apply_decay(x, y, dot, report_time)
                if pair is not None:
                    pairs.append(pair)
        return pairs

    def _apply_decay(self, x: SparseVector, y: SparseVector, dot: float,
                     report_time: float) -> SimilarPair | None:
        """The ApplyDecay step of Algorithm 1: keep only ``sim_Δt ≥ θ`` pairs."""
        delta = abs(x.timestamp - y.timestamp)
        similarity = dot * math.exp(-self.decay * delta)
        if similarity < self.threshold:
            return None
        return SimilarPair.make(
            x.vector_id, y.vector_id, similarity,
            time_delta=delta, dot=dot, reported_at=report_time,
        )

    def _window_end(self) -> float:
        if self._window_start is None:
            return 0.0
        return self._window_start + self.horizon
