"""Core data model, similarity definitions and join frameworks."""

from repro.core.batch import all_pairs
from repro.core.checkpoint import (
    CheckpointError,
    PeriodicCheckpointer,
    atomic_write_json,
    load_checkpoint,
    restore_join,
    save_checkpoint,
    snapshot_join,
)
from repro.core.frameworks import JoinFramework, MiniBatchFramework, StreamingFramework
from repro.core.join import (
    MiniBatchSimilarityJoin,
    StreamingSimilarityJoin,
    create_join,
    parse_algorithm,
    streaming_self_join,
)
from repro.core.results import (
    CallbackCollector,
    CountingCollector,
    JoinStatistics,
    ListCollector,
    SimilarPair,
    TopKCollector,
)
from repro.core.similarity import (
    JoinParameters,
    cosine_similarity,
    decay_factor,
    decay_for_horizon,
    time_dependent_similarity,
    time_horizon,
)
from repro.core.stream import (
    FileStream,
    GeneratorStream,
    ListStream,
    VectorStream,
    merge_streams,
)
from repro.core.vector import SparseVector, dot_product, normalize_entries

__all__ = [
    "SparseVector",
    "dot_product",
    "normalize_entries",
    "JoinParameters",
    "cosine_similarity",
    "decay_factor",
    "decay_for_horizon",
    "time_dependent_similarity",
    "time_horizon",
    "VectorStream",
    "ListStream",
    "GeneratorStream",
    "FileStream",
    "merge_streams",
    "SimilarPair",
    "JoinStatistics",
    "ListCollector",
    "CountingCollector",
    "CallbackCollector",
    "TopKCollector",
    "JoinFramework",
    "MiniBatchFramework",
    "StreamingFramework",
    "StreamingSimilarityJoin",
    "MiniBatchSimilarityJoin",
    "create_join",
    "parse_algorithm",
    "streaming_self_join",
    "all_pairs",
    "CheckpointError",
    "snapshot_join",
    "restore_join",
    "save_checkpoint",
    "load_checkpoint",
    "atomic_write_json",
    "PeriodicCheckpointer",
]
