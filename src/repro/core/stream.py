"""Stream abstractions for timestamped sparse vectors.

The paper's input is an unbounded stream ``S = ⟨(x_i, t(x_i)), ...⟩`` of
timestamped vectors arriving in non-decreasing time order.  This module
provides:

* :class:`VectorStream` — the minimal protocol every stream source follows
  (an iterable of :class:`~repro.core.vector.SparseVector`),
* :class:`ListStream` — an in-memory stream over a sequence of vectors,
* :class:`GeneratorStream` — wraps any iterator/generator of vectors,
* :class:`FileStream` — lazily reads the on-disk text/binary formats from
  :mod:`repro.datasets.io`,
* :func:`merge_streams` — a timestamp-ordered merge of several streams,
* :func:`enforce_order` — a guard that raises
  :class:`~repro.exceptions.StreamOrderError` on out-of-order items.

All streaming algorithms consume any iterable of vectors; these classes
exist mostly to attach metadata (name, length hints) and order checking.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator, Sequence
from typing import Callable

from repro.core.vector import SparseVector
from repro.exceptions import StreamOrderError

__all__ = [
    "VectorStream",
    "ListStream",
    "GeneratorStream",
    "FileStream",
    "merge_streams",
    "enforce_order",
]


def enforce_order(vectors: Iterable[SparseVector]) -> Iterator[SparseVector]:
    """Yield vectors, raising :class:`StreamOrderError` if timestamps decrease."""
    last = -float("inf")
    for vector in vectors:
        if vector.timestamp < last:
            raise StreamOrderError(
                f"vector {vector.vector_id} arrived at t={vector.timestamp} "
                f"after an item at t={last}"
            )
        last = vector.timestamp
        yield vector


class VectorStream:
    """Base class for vector stream sources.

    Subclasses implement :meth:`_iterate`; iteration always goes through
    the timestamp-order guard.
    """

    def __init__(self, name: str = "stream", *, check_order: bool = True) -> None:
        self.name = name
        self._check_order = check_order

    def _iterate(self) -> Iterator[SparseVector]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[SparseVector]:
        iterator = self._iterate()
        if self._check_order:
            return enforce_order(iterator)
        return iterator

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


class ListStream(VectorStream):
    """A stream backed by an in-memory sequence of vectors.

    The sequence is sorted by timestamp on construction unless
    ``presorted=True`` is given.
    """

    def __init__(self, vectors: Sequence[SparseVector], *, name: str = "list",
                 presorted: bool = False, check_order: bool = True) -> None:
        super().__init__(name, check_order=check_order)
        if presorted:
            self._vectors = list(vectors)
        else:
            self._vectors = sorted(vectors, key=lambda v: v.timestamp)

    def __len__(self) -> int:
        return len(self._vectors)

    def __getitem__(self, index: int) -> SparseVector:
        return self._vectors[index]

    @property
    def vectors(self) -> list[SparseVector]:
        """The underlying vectors in timestamp order."""
        return list(self._vectors)

    def _iterate(self) -> Iterator[SparseVector]:
        return iter(self._vectors)


class GeneratorStream(VectorStream):
    """A stream backed by a factory producing an iterator of vectors.

    The factory is invoked once per iteration so that the stream can be
    replayed (useful in benchmarks that repeat a run several times).
    """

    def __init__(self, factory: Callable[[], Iterable[SparseVector]], *,
                 name: str = "generator", check_order: bool = True) -> None:
        super().__init__(name, check_order=check_order)
        self._factory = factory

    def _iterate(self) -> Iterator[SparseVector]:
        return iter(self._factory())


class FileStream(VectorStream):
    """A stream lazily read from a dataset file.

    The path may point either to the text format or to the binary format
    produced by :mod:`repro.datasets.io`; the format is selected by file
    extension (``.txt`` / ``.bin``) or can be forced with ``fmt``.
    """

    def __init__(self, path: str, *, fmt: str | None = None, name: str | None = None,
                 check_order: bool = True) -> None:
        super().__init__(name or str(path), check_order=check_order)
        self.path = str(path)
        self.fmt = fmt

    def _iterate(self) -> Iterator[SparseVector]:
        # Imported lazily to avoid a circular import at package load time.
        from repro.datasets import io as dataset_io

        return dataset_io.read_vectors(self.path, fmt=self.fmt)


def merge_streams(*streams: Iterable[SparseVector],
                  name: str = "merged") -> GeneratorStream:
    """Merge several timestamp-ordered streams into one ordered stream.

    The merge is **stable**: vectors with equal timestamps are emitted in
    the order of the streams that supplied them (first stream wins), and
    two equal-timestamp vectors from the *same* stream keep their original
    relative order.  This determinism is what the sharded coordinator's
    fan-in (:mod:`repro.shard`) relies on — any consumer replaying a merged
    stream sees exactly the same vector sequence on every run.

    .. note::
       Earlier versions keyed the merge on ``(timestamp, stream, vector_id)``,
       which *reordered* equal-timestamp vectors of one stream by id (and
       fell back to comparing :class:`SparseVector` objects — a ``TypeError``
       — when even the ids tied).  Keying on the timestamp alone and relying
       on :func:`heapq.merge`'s stability fixes both.
    """

    def factory() -> Iterator[SparseVector]:
        # heapq.merge is stable: for equal keys it prefers earlier iterables
        # and preserves each iterable's own order.
        return iter(heapq.merge(*streams, key=lambda vector: vector.timestamp))

    return GeneratorStream(factory, name=name)
