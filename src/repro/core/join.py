"""High-level public API for the streaming similarity self-join.

Most users interact with the library through this module:

* :class:`StreamingSimilarityJoin` — the STR framework with a streaming
  index (``STR-L2`` by default, the configuration the paper recommends),
* :class:`MiniBatchSimilarityJoin` — the MB framework over a batch index,
* :func:`streaming_self_join` — one-shot convenience function,
* :func:`create_join` — build either framework from an algorithm string
  such as ``"STR-L2"`` or ``"MB-INV"``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.frameworks.base import JoinFramework
from repro.core.frameworks.minibatch import MiniBatchFramework
from repro.core.frameworks.streaming import StreamingFramework
from repro.core.results import JoinStatistics, SimilarPair
from repro.core.vector import SparseVector
from repro.exceptions import UnknownAlgorithmError

__all__ = [
    "StreamingSimilarityJoin",
    "MiniBatchSimilarityJoin",
    "create_join",
    "streaming_self_join",
    "parse_algorithm",
]

_FRAMEWORKS: dict[str, type[JoinFramework]] = {
    "STR": StreamingFramework,
    "MB": MiniBatchFramework,
}


class StreamingSimilarityJoin(StreamingFramework):
    """The recommended configuration: the STR framework (default index L2).

    Example
    -------
    >>> from repro import SparseVector, StreamingSimilarityJoin
    >>> join = StreamingSimilarityJoin(threshold=0.7, decay=0.1)
    >>> a = SparseVector(1, 0.0, {0: 1.0, 1: 1.0})
    >>> b = SparseVector(2, 1.0, {0: 1.0, 1: 1.0})
    >>> [pair.key for pair in join.run([a, b])]
    [(1, 2)]
    """


class MiniBatchSimilarityJoin(MiniBatchFramework):
    """The MiniBatch framework exposed under a user-facing name."""


def parse_algorithm(algorithm: str) -> tuple[str, str]:
    """Split an algorithm string like ``"STR-L2"`` into (framework, index)."""
    parts = algorithm.upper().replace("_", "-").split("-", maxsplit=1)
    if len(parts) != 2 or parts[0] not in _FRAMEWORKS:
        raise UnknownAlgorithmError(
            f"cannot parse algorithm {algorithm!r}; expected '<framework>-<index>' "
            f"with framework in {sorted(_FRAMEWORKS)} (e.g. 'STR-L2', 'MB-INV')"
        )
    return parts[0], parts[1]


def create_join(algorithm: str, threshold: float, decay: float, *,
                stats: JoinStatistics | None = None,
                backend: str | None = None,
                workers: int | None = None,
                shard_executor: str = "process",
                approx: str | None = None,
                fault_plan=None) -> JoinFramework:
    """Instantiate a join framework from an algorithm string.

    ``algorithm`` combines a framework and an index name, separated by a
    dash: ``"STR-L2"``, ``"STR-L2AP"``, ``"STR-INV"``, ``"MB-L2"``,
    ``"MB-L2AP"``, ``"MB-INV"``, ...

    ``backend`` selects the compute backend for the hot loops (``"python"``,
    ``"numpy"``, ``"numba"``; ``None``/``"auto"`` picks the fastest
    available one — see :mod:`repro.backends`).

    ``workers`` switches construction to the sharded parallel engine
    (:mod:`repro.shard`) with that many shard workers — STR only, and the
    returned join owns worker processes, so ``close()`` it (or use it as a
    context manager).  ``shard_executor`` picks ``"process"`` or
    ``"serial"`` shard execution.

    ``approx`` opts into the approximate sketch-prefilter tier
    (:mod:`repro.approx`): a spec string such as ``"minhash"`` or
    ``"simhash:16x2"`` (or a ready :class:`~repro.approx.ApproxConfig`).
    Prefix-filter schemes only, incompatible with ``workers``.

    ``fault_plan`` injects worker-process faults into the sharded engine
    (:mod:`repro.faults`): a spec string, :class:`~repro.faults.FaultPlan`
    or :class:`~repro.faults.FaultInjector`.  Requires ``workers``.
    """
    if workers is not None:
        if approx is not None:
            from repro.exceptions import InvalidParameterError

            raise InvalidParameterError(
                "approx mode is not supported by the sharded engine; "
                "drop either --approx or --workers")
        from repro.shard import create_sharded_join

        return create_sharded_join(algorithm, threshold, decay,
                                   workers=workers, stats=stats,
                                   backend=backend, executor=shard_executor,
                                   fault_plan=fault_plan)
    if fault_plan is not None:
        from repro.exceptions import InvalidParameterError

        raise InvalidParameterError(
            "fault plans with worker events require the sharded engine; "
            "pass workers=N (CLI: --workers)")
    framework_name, index_name = parse_algorithm(algorithm)
    framework_cls = _FRAMEWORKS[framework_name]
    return framework_cls(threshold, decay, index=index_name, stats=stats,
                         backend=backend, approx=approx)


def streaming_self_join(
    stream: Iterable[SparseVector],
    threshold: float,
    decay: float,
    *,
    algorithm: str = "STR-L2",
    stats: JoinStatistics | None = None,
    backend: str | None = None,
    approx: str | None = None,
) -> Iterator[SimilarPair]:
    """Run a streaming similarity self-join over ``stream`` and yield pairs.

    This is the one-shot form of the API; for incremental use (feeding
    vectors one at a time, inspecting statistics mid-run) instantiate
    :class:`StreamingSimilarityJoin` or :class:`MiniBatchSimilarityJoin`
    directly.
    """
    join = create_join(algorithm, threshold, decay, stats=stats,
                       backend=backend, approx=approx)
    return join.run(stream)
