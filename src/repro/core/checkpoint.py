"""Checkpointing of streaming joins.

A long-running stream processor must be able to stop and resume without
losing the (bounded) state it keeps about the recent past.  This module
serialises the full state of a :class:`~repro.core.frameworks.streaming.StreamingFramework`
— the inverted index, the residual/Q store, the maximum vectors and the
operation counters — into a JSON-compatible dictionary, and restores it
into a fresh framework that behaves exactly as if it had processed the
whole stream itself.

Only the STR framework is checkpointable: it owns a single incremental
index, so its state is well defined between any two items.  The MiniBatch
framework buffers whole windows and rebuilds throw-away indexes, so
checkpointing it is intentionally unsupported (checkpoint at a window
boundary and replay the current window instead).

The serialised layout is versioned; :func:`restore_join` refuses payloads
with an unknown version rather than guessing.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable

from repro.backends import get_backend
from repro.core.frameworks.streaming import StreamingFramework
from repro.core.results import JoinStatistics
from repro.core.vector import SparseVector
from repro.exceptions import SSSJError, UnknownBackendError
from repro.indexes.inverted import InvertedStreamingIndex
from repro.indexes.maxvector import DecayedMaxVector, MaxVector
from repro.indexes.posting import PostingEntry
from repro.indexes.prefix import PrefixFilterStreamingIndex
from repro.indexes.residual import ResidualEntry

__all__ = [
    "CheckpointError",
    "snapshot_join",
    "restore_join",
    "save_checkpoint",
    "load_checkpoint",
    "atomic_write_json",
    "PeriodicCheckpointer",
]

_FORMAT_VERSION = 1


class CheckpointError(SSSJError):
    """Raised when a checkpoint cannot be produced or restored."""


# -- vector (de)serialisation -------------------------------------------------------


def _vector_to_state(vector: SparseVector) -> dict[str, Any]:
    return {
        "id": vector.vector_id,
        "t": vector.timestamp,
        "dims": list(vector.dims),
        "values": list(vector.values),
    }


def _vector_from_state(state: dict[str, Any]) -> SparseVector:
    entries = dict(zip(state["dims"], state["values"]))
    # Values were stored post-normalisation; do not normalise again.
    return SparseVector(state["id"], state["t"], entries, normalize=False)


# -- index (de)serialisation --------------------------------------------------------


def _posting_lists_to_state(index) -> dict[str, list[list[float]]]:
    lists: dict[str, list[list[float]]] = {}
    for dim in index.dimensions():
        posting_list = index.get(dim)
        if not posting_list:
            continue
        lists[str(dim)] = [
            [entry.vector_id, entry.value, entry.prefix_norm, entry.timestamp]
            for entry in posting_list
        ]
    return lists


def _restore_posting_lists(index, state: dict[str, list[list[float]]]) -> None:
    for dim_text, entries in state.items():
        dim = int(dim_text)
        for vector_id, value, prefix_norm, timestamp in entries:
            index.add(dim, PostingEntry(
                vector_id=int(vector_id), value=value,
                prefix_norm=prefix_norm, timestamp=timestamp,
            ))


def _residual_to_state(residual) -> list[dict[str, Any]]:
    return [
        {
            "vector": _vector_to_state(entry.vector),
            "boundary": entry.boundary,
            "pscore": entry.pscore,
            "residual_dims": list(entry.residual),
        }
        for entry in residual.entries()
    ]


def _restore_residual(residual, state: list[dict[str, Any]]) -> None:
    for item in state:
        vector = _vector_from_state(item["vector"])
        entry = ResidualEntry(vector=vector, boundary=item["boundary"],
                              pscore=item["pscore"])
        # The residual prefix may have shrunk after re-indexing; keep exactly
        # the dimensions that were stored.
        kept = set(item["residual_dims"])
        entry.set_residual({dim: value for dim, value in entry.residual.items()
                            if dim in kept})
        residual.add(entry)


def _max_vector_to_state(max_vector: MaxVector | None) -> dict[str, float] | None:
    if max_vector is None:
        return None
    return {str(dim): value for dim, value in max_vector.as_dict().items()}


def _restore_max_vector(state: dict[str, float] | None) -> MaxVector | None:
    if state is None:
        return None
    restored = MaxVector()
    restored._values = {int(dim): value for dim, value in state.items()}
    return restored


def _decayed_max_to_state(decayed: DecayedMaxVector | None) -> dict[str, list[float]] | None:
    if decayed is None:
        return None
    return {str(dim): [value, timestamp]
            for dim, (value, timestamp) in decayed._entries.items()}


def _restore_decayed_max(state: dict[str, list[float]] | None,
                         decay: float) -> DecayedMaxVector | None:
    if state is None:
        return None
    restored = DecayedMaxVector(decay)
    restored._entries = {int(dim): (value, timestamp)
                         for dim, (value, timestamp) in state.items()}
    return restored


# -- public API ----------------------------------------------------------------------


def snapshot_join(join: StreamingFramework) -> dict[str, Any]:
    """Serialise the full state of a STR framework into a plain dictionary."""
    if not isinstance(join, StreamingFramework):
        raise CheckpointError(
            "only the STR framework is checkpointable; checkpoint MiniBatch runs "
            "at a window boundary and replay the open window instead"
        )
    index = join.index
    state: dict[str, Any] = {
        "version": _FORMAT_VERSION,
        "algorithm": join.algorithm,
        "backend": index.backend_name,
        "threshold": join.threshold,
        "decay": join.decay,
        "stats": join.stats.as_dict(),
        "postings": _posting_lists_to_state(index._index),
    }
    if join.approx is not None:
        # Canonical spec string only: signatures are a pure function of
        # (vector, config), so restore regenerates them from the residual
        # entries instead of serialising per-vector sketches.
        state["approx"] = join.approx
    if isinstance(index, PrefixFilterStreamingIndex):
        state["kind"] = "prefix"
        state["residual"] = _residual_to_state(index._residual)
        state["max_query"] = _max_vector_to_state(index._max_query)
        state["max_decayed"] = _decayed_max_to_state(index._max_decayed)
    elif isinstance(index, InvertedStreamingIndex):
        state["kind"] = "inverted"
    else:  # pragma: no cover - future index types must opt in explicitly
        raise CheckpointError(f"index type {type(index).__name__} is not checkpointable")
    return state


def restore_join(state: dict[str, Any]) -> StreamingFramework:
    """Rebuild a STR framework from a snapshot produced by :func:`snapshot_join`."""
    version = state.get("version")
    if version != _FORMAT_VERSION:
        raise CheckpointError(f"unsupported checkpoint version: {version!r}")
    framework_name, index_name = state["algorithm"].split("-", maxsplit=1)
    if framework_name != "STR":
        raise CheckpointError(f"cannot restore framework {framework_name!r}")
    try:
        backend = get_backend(state.get("backend")).name
    except UnknownBackendError:
        # The checkpoint was written with a backend that is unavailable
        # here (e.g. NumPy missing); fall back to the default — backends
        # are output-equivalent, so the restored join behaves identically.
        backend = None
    join = StreamingFramework(state["threshold"], state["decay"],
                              index=index_name, backend=backend,
                              approx=state.get("approx"))
    index = join.index
    _restore_posting_lists(index._index, state["postings"])
    if state["kind"] == "prefix":
        if not isinstance(index, PrefixFilterStreamingIndex):
            raise CheckpointError(
                f"checkpoint holds prefix-filter state but index {index_name!r} is not one"
            )
        _restore_residual(index._residual, state["residual"])
        # The kernel's sz1 size-filter map and its verification-metadata
        # mirrors are populated at indexing time, which restore bypasses;
        # rebuild both so the restored join filters exactly like — and
        # counts exactly the same operations as — an uninterrupted one.
        for entry in index._residual.entries():
            index._size_filter.set(entry.vector_id, entry.size_filter_value)
            index.kernel.note_vector_indexed(entry)
        if index.use_ap:
            index._max_query = _restore_max_vector(state["max_query"]) or MaxVector()
            index._max_decayed = (_restore_decayed_max(state["max_decayed"], join.decay)
                                  or DecayedMaxVector(join.decay))
    stats_state = state.get("stats", {})
    restored_stats = JoinStatistics(**{
        key: (int(value) if key != "elapsed_seconds" else float(value))
        for key, value in stats_state.items()
        if key in JoinStatistics().as_dict()
    })
    join.stats.merge(restored_stats)
    index.stats = join.stats
    return join


def atomic_write_json(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write ``payload`` as JSON to ``path`` atomically and crash-safely.

    The payload is written to a sibling temp file, flushed and fsynced,
    then moved over ``path`` with :func:`os.replace` — so a reader (or a
    recovery scan after ``kill -9``) only ever sees the old complete file
    or the new complete file, never a torn half-write.
    """
    path = Path(path)
    tmp_path = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    return path


def save_checkpoint(join: StreamingFramework, path: str | Path) -> Path:
    """Snapshot ``join`` and write it as JSON to ``path`` (atomically)."""
    return atomic_write_json(path, snapshot_join(join))


def load_checkpoint(path: str | Path) -> StreamingFramework:
    """Load a JSON checkpoint written by :func:`save_checkpoint`."""
    with open(path, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    return restore_join(state)


class PeriodicCheckpointer:
    """Checkpoint a join every N processed vectors and/or every S seconds.

    The owner calls :meth:`tick` at natural barriers (between micro-batches
    in the service, between vectors in a driver loop); a checkpoint is
    written when either the vector-count or the wall-clock interval has
    elapsed since the last one.  ``save`` defaults to
    :func:`save_checkpoint`; the service substitutes a callable that wraps
    the join snapshot in its session envelope.  Both intervals ``None``
    makes :meth:`tick` a no-op (but ``tick(force=True)`` still writes).

    Periodic ticks tolerate transient write failures (a full disk, an
    NFS hiccup): the error is swallowed, counted in
    ``checkpoint_failures`` and kept in ``last_error``, and the cadence
    clock is NOT advanced so the next tick retries immediately.  After
    ``max_consecutive_failures`` failures in a row the error propagates —
    a persistently broken checkpoint path must not degrade silently into
    "no durability at all".  ``tick(force=True)`` always raises on
    failure: explicit checkpoint requests want the truth.
    """

    def __init__(self, join: StreamingFramework, path: str | Path, *,
                 every_vectors: int | None = None,
                 every_seconds: float | None = None,
                 save: Callable[[StreamingFramework, Path], Path] = save_checkpoint,
                 max_consecutive_failures: int = 5,
                 ) -> None:
        if every_vectors is not None and every_vectors <= 0:
            raise ValueError(f"every_vectors must be positive, got {every_vectors}")
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError(f"every_seconds must be positive, got {every_seconds}")
        if max_consecutive_failures <= 0:
            raise ValueError("max_consecutive_failures must be positive, "
                             f"got {max_consecutive_failures}")
        self.join = join
        self.path = Path(path)
        self.every_vectors = every_vectors
        self.every_seconds = every_seconds
        self._save = save
        self._last_count = join.stats.vectors_processed
        self._last_time = time.monotonic()
        self.checkpoints_written = 0
        self.max_consecutive_failures = max_consecutive_failures
        self.checkpoint_failures = 0
        self._consecutive_failures = 0
        self.last_error: Exception | None = None

    def due(self) -> bool:
        """Whether an interval has elapsed since the last checkpoint."""
        if self.every_vectors is not None:
            processed = self.join.stats.vectors_processed
            if processed - self._last_count >= self.every_vectors:
                return True
        if self.every_seconds is not None:
            if time.monotonic() - self._last_time >= self.every_seconds:
                return True
        return False

    def tick(self, *, force: bool = False) -> Path | None:
        """Write a checkpoint if one is due (or ``force``); return its path.

        Returns ``None`` when nothing was due, or when a periodic write
        failed transiently (see the class docstring for the failure
        policy).
        """
        if not force and not self.due():
            return None
        try:
            written = self._save(self.join, self.path)
        except Exception as error:
            self.checkpoint_failures += 1
            self._consecutive_failures += 1
            self.last_error = error
            if force or self._consecutive_failures >= self.max_consecutive_failures:
                raise
            return None
        self._last_count = self.join.stats.vectors_processed
        self._last_time = time.monotonic()
        self.checkpoints_written += 1
        self._consecutive_failures = 0
        return Path(written)
