"""Sparse vector model used throughout the SSSJ reproduction.

The paper represents data items as sparse vectors in a high-dimensional
Euclidean space, normalised to unit length so that the dot product equals
the cosine similarity.  :class:`SparseVector` is an immutable value object
carrying:

* a stable identifier ``vector_id`` (``ι(x)`` in the paper),
* an arrival ``timestamp`` ``t(x)``,
* the non-zero coordinates as parallel arrays of dimensions and values.

Dimensions are stored in ascending order, which lets the indexing schemes
scan coordinates forward during index construction and backward during
candidate generation, exactly as Algorithms 2 and 3 of the paper require.

The helper accessors expose the per-vector statistics used by the filtering
bounds: the maximum coordinate ``vm_x``, the coordinate sum ``Σx``, the
number of non-zero coordinates ``|x|``, and the ℓ₂ norms of prefixes
``‖x'_j‖``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping
from typing import Sequence

from repro.exceptions import InvalidVectorError

__all__ = ["SparseVector", "dot_product", "normalize_entries"]


def _validate_entries(dims: Sequence[int], values: Sequence[float]) -> None:
    """Check structural invariants of a coordinate list."""
    if len(dims) != len(values):
        raise InvalidVectorError(
            f"dimension/value length mismatch: {len(dims)} != {len(values)}"
        )
    previous = -1
    for dim, value in zip(dims, values):
        if dim < 0:
            raise InvalidVectorError(f"negative dimension id: {dim}")
        if dim <= previous:
            raise InvalidVectorError(
                f"dimensions must be strictly increasing, got {dim} after {previous}"
            )
        if not math.isfinite(value):
            raise InvalidVectorError(f"non-finite value {value!r} at dimension {dim}")
        if value < 0:
            raise InvalidVectorError(
                f"negative value {value!r} at dimension {dim}; the filtering bounds "
                "of the paper assume non-negative term weights"
            )
        previous = dim


def normalize_entries(entries: Mapping[int, float]) -> dict[int, float]:
    """Return a copy of ``entries`` scaled to unit ℓ₂ norm.

    Zero-valued coordinates are dropped.  Raises
    :class:`~repro.exceptions.InvalidVectorError` if all values are zero.
    """
    cleaned = {int(dim): float(value) for dim, value in entries.items() if value != 0.0}
    norm = math.sqrt(sum(value * value for value in cleaned.values()))
    if norm == 0.0:
        raise InvalidVectorError("cannot normalise an all-zero vector")
    return {dim: value / norm for dim, value in cleaned.items()}


class SparseVector:
    """An immutable, unit-normalisable sparse vector with a timestamp.

    Parameters
    ----------
    vector_id:
        Stable identifier of the item (``ι(x)``).
    timestamp:
        Arrival time ``t(x)``; any non-negative float.
    entries:
        Mapping from dimension id to value, or an iterable of
        ``(dimension, value)`` pairs.  Values must be non-negative and
        finite.  Zero values are dropped.
    normalize:
        When true (the default) the values are scaled to unit ℓ₂ norm,
        matching the paper's assumption ``‖x‖₂ = 1``.
    """

    __slots__ = ("_id", "_timestamp", "_dims", "_values", "_prefix_norms",
                 "_max_value", "_sum")

    def __init__(
        self,
        vector_id: int,
        timestamp: float,
        entries: Mapping[int, float] | Iterable[tuple[int, float]],
        *,
        normalize: bool = True,
    ) -> None:
        if timestamp < 0 or not math.isfinite(timestamp):
            raise InvalidVectorError(f"invalid timestamp: {timestamp!r}")
        if isinstance(entries, Mapping):
            items = entries.items()
        else:
            items = list(entries)
        pairs = sorted((int(dim), float(value)) for dim, value in items if value != 0.0)
        if not pairs:
            raise InvalidVectorError("a vector must have at least one non-zero coordinate")
        dims = tuple(dim for dim, _ in pairs)
        values = [value for _, value in pairs]
        _validate_entries(dims, values)
        if normalize:
            norm = math.sqrt(sum(value * value for value in values))
            values = [value / norm for value in values]
        self._id = int(vector_id)
        self._timestamp = float(timestamp)
        self._dims = dims
        self._values = tuple(values)
        self._prefix_norms = self._compute_prefix_norms(self._values)
        self._max_value = max(self._values)
        self._sum = sum(self._values)

    @staticmethod
    def _compute_prefix_norms(values: Sequence[float]) -> tuple[float, ...]:
        """Norms of the strict prefixes ``‖x'_j‖`` for every position.

        ``prefix_norms[k]`` is the ℓ₂ norm of the coordinates that appear
        *before* position ``k`` in the ascending-dimension order.  Position
        0 therefore has norm 0, and an extra final entry holds the norm of
        the whole vector.
        """
        norms = [0.0]
        acc = 0.0
        for value in values:
            acc += value * value
            norms.append(math.sqrt(acc))
        # The strict-prefix norm of position k is norms[k]; norms[-1] is ‖x‖.
        return tuple(norms)

    # -- basic accessors ---------------------------------------------------

    @property
    def vector_id(self) -> int:
        """Stable identifier of the vector (``ι(x)``)."""
        return self._id

    @property
    def timestamp(self) -> float:
        """Arrival time ``t(x)``."""
        return self._timestamp

    @property
    def dims(self) -> tuple[int, ...]:
        """Non-zero dimensions in ascending order."""
        return self._dims

    @property
    def values(self) -> tuple[float, ...]:
        """Values aligned with :attr:`dims`."""
        return self._values

    @property
    def max_value(self) -> float:
        """Maximum coordinate value ``vm_x``."""
        return self._max_value

    @property
    def value_sum(self) -> float:
        """Sum of the coordinate values ``Σx``."""
        return self._sum

    @property
    def norm(self) -> float:
        """ℓ₂ norm of the vector (1.0 for normalised vectors)."""
        return self._prefix_norms[-1]

    def __len__(self) -> int:
        """Number of non-zero coordinates ``|x|``."""
        return len(self._dims)

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return iter(zip(self._dims, self._values))

    def __contains__(self, dim: int) -> bool:
        return self.get(dim) != 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        head = ", ".join(f"{d}:{v:.3f}" for d, v in list(self)[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return (f"SparseVector(id={self._id}, t={self._timestamp:g}, "
                f"nnz={len(self)}, [{head}{suffix}])")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return (self._id == other._id and self._timestamp == other._timestamp
                and self._dims == other._dims and self._values == other._values)

    def __hash__(self) -> int:
        return hash((self._id, self._timestamp, self._dims))

    # -- coordinate access -------------------------------------------------

    def get(self, dim: int, default: float = 0.0) -> float:
        """Value at ``dim`` or ``default`` when the coordinate is zero."""
        index = self._position_of(dim)
        if index is None:
            return default
        return self._values[index]

    def _position_of(self, dim: int) -> int | None:
        """Binary search for the position of ``dim`` in :attr:`dims`."""
        lo, hi = 0, len(self._dims)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._dims[mid] < dim:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self._dims) and self._dims[lo] == dim:
            return lo
        return None

    def to_dict(self) -> dict[int, float]:
        """Return the coordinates as a plain dictionary."""
        return dict(zip(self._dims, self._values))

    # -- prefix statistics used by the filtering bounds ---------------------

    def prefix_norm_before(self, position: int) -> float:
        """ℓ₂ norm of the strict prefix that ends before ``position``.

        ``position`` indexes into :attr:`dims`; the prefix contains the
        coordinates at positions ``0 .. position-1``.  This is the quantity
        ``‖x'_j‖`` stored in the L2AP/L2 posting entries.
        """
        return self._prefix_norms[position]

    def prefix_norm_before_dim(self, dim: int) -> float:
        """ℓ₂ norm of the coordinates with dimension id strictly below ``dim``."""
        lo, hi = 0, len(self._dims)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._dims[mid] < dim:
                lo = mid + 1
            else:
                hi = mid
        return self._prefix_norms[lo]

    def prefix(self, end_position: int) -> dict[int, float]:
        """Coordinates of the strict prefix ``x'`` ending before ``end_position``."""
        return {
            self._dims[k]: self._values[k] for k in range(min(end_position, len(self)))
        }

    def suffix(self, start_position: int) -> dict[int, float]:
        """Coordinates from ``start_position`` (inclusive) to the end."""
        return {
            self._dims[k]: self._values[k]
            for k in range(max(start_position, 0), len(self))
        }

    # -- arithmetic ---------------------------------------------------------

    def dot(self, other: "SparseVector | Mapping[int, float]") -> float:
        """Dot product with another sparse vector or a dimension→value mapping."""
        if isinstance(other, SparseVector):
            return _dot_sorted(self._dims, self._values, other._dims, other._values)
        total = 0.0
        for dim, value in zip(self._dims, self._values):
            total += value * other.get(dim, 0.0)
        return total

    def is_normalized(self, *, tolerance: float = 1e-9) -> bool:
        """Whether the ℓ₂ norm is 1 within ``tolerance``."""
        return abs(self.norm - 1.0) <= tolerance


def _dot_sorted(dims_a: Sequence[int], values_a: Sequence[float],
                dims_b: Sequence[int], values_b: Sequence[float]) -> float:
    """Dot product of two coordinate lists sorted by dimension."""
    total = 0.0
    i, j = 0, 0
    len_a, len_b = len(dims_a), len(dims_b)
    while i < len_a and j < len_b:
        da, db = dims_a[i], dims_b[j]
        if da == db:
            total += values_a[i] * values_b[j]
            i += 1
            j += 1
        elif da < db:
            i += 1
        else:
            j += 1
    return total


def dot_product(x: SparseVector, y: SparseVector) -> float:
    """Dot product of two sparse vectors (cosine similarity if normalised)."""
    return x.dot(y)
