"""Time-dependent similarity, horizon computation and parameter setting.

This module implements Section 3 of the paper:

* the standard cosine / dot-product similarity of unit-normalised vectors,
* the *time-dependent similarity*
  ``sim_Δt(x, y) = dot(x, y) · exp(-λ |t(x) − t(y)|)``,
* the *time horizon* ``τ = λ⁻¹ ln θ⁻¹`` beyond which no pair can reach the
  threshold, and
* the parameter-setting methodology the paper suggests (choose ``θ`` and
  ``τ`` from application requirements, derive ``λ``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError

__all__ = [
    "cosine_similarity",
    "decay_factor",
    "time_dependent_similarity",
    "time_horizon",
    "decay_for_horizon",
    "JoinParameters",
]


def validate_threshold(threshold: float) -> float:
    """Validate a similarity threshold ``θ ∈ (0, 1]`` and return it."""
    if not (0.0 < threshold <= 1.0):
        raise InvalidParameterError(
            f"similarity threshold must be in (0, 1], got {threshold!r}"
        )
    return float(threshold)


def validate_decay(decay: float) -> float:
    """Validate a decay rate ``λ ≥ 0`` and return it."""
    if decay < 0 or not math.isfinite(decay):
        raise InvalidParameterError(f"decay rate must be non-negative, got {decay!r}")
    return float(decay)


def cosine_similarity(x: SparseVector, y: SparseVector) -> float:
    """Content similarity of two unit-normalised vectors (their dot product)."""
    return x.dot(y)


def decay_factor(decay: float, time_delta: float) -> float:
    """Exponential decay multiplier ``exp(-λ·Δt)`` for a time gap ``Δt ≥ 0``."""
    if time_delta < 0:
        raise InvalidParameterError(f"time delta must be non-negative, got {time_delta!r}")
    return math.exp(-decay * time_delta)


def time_dependent_similarity(x: SparseVector, y: SparseVector, decay: float) -> float:
    """The paper's ``sim_Δt``: cosine similarity damped by arrival-time distance."""
    delta = abs(x.timestamp - y.timestamp)
    return x.dot(y) * decay_factor(decay, delta)


def time_horizon(threshold: float, decay: float) -> float:
    """Time horizon ``τ = λ⁻¹ ln θ⁻¹``.

    A vector older than ``τ`` cannot be ``θ``-similar to any newly arrived
    vector, because ``dot(x, y) ≤ 1`` implies
    ``sim_Δt(x, y) ≤ exp(-λ·Δt) < θ`` whenever ``Δt > τ``.

    When ``λ = 0`` (no forgetting) the horizon is infinite; when ``θ = 1``
    the horizon is 0 (only simultaneous exact duplicates qualify).
    """
    threshold = validate_threshold(threshold)
    decay = validate_decay(decay)
    if decay == 0.0:
        return math.inf
    return math.log(1.0 / threshold) / decay


def decay_for_horizon(threshold: float, horizon: float) -> float:
    """Decay rate ``λ = τ⁻¹ ln θ⁻¹`` that yields the requested horizon.

    This is step 3 of the parameter-setting methodology in Section 3 of the
    paper: pick the threshold and the horizon from the application, derive
    the decay rate.
    """
    threshold = validate_threshold(threshold)
    if horizon <= 0 or not math.isfinite(horizon):
        raise InvalidParameterError(f"horizon must be positive and finite, got {horizon!r}")
    return math.log(1.0 / threshold) / horizon


@dataclass(frozen=True)
class JoinParameters:
    """Validated parameter bundle for a streaming similarity self-join.

    Attributes
    ----------
    threshold:
        Similarity threshold ``θ`` in ``(0, 1]``.
    decay:
        Time-decay rate ``λ ≥ 0``.
    backend:
        Compute backend for the hot loops (``"python"``, ``"numpy"``,
        ``"numba"``, or ``None``/``"auto"`` for the fastest available
        one; see :mod:`repro.backends`).
    approx:
        Optional approximate-tier spec (:mod:`repro.approx`), e.g.
        ``"minhash"`` or ``"simhash:16x2"``; normalised to its canonical
        spec string.  ``None`` keeps the join exact.
    """

    threshold: float
    decay: float
    backend: str | None = None
    approx: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "threshold", validate_threshold(self.threshold))
        object.__setattr__(self, "decay", validate_decay(self.decay))
        if self.backend is not None:
            object.__setattr__(self, "backend", str(self.backend).lower())
        if self.approx is not None:
            from repro.approx import parse_approx

            config = parse_approx(self.approx)
            object.__setattr__(self, "approx",
                               config.spec() if config is not None else None)

    @property
    def horizon(self) -> float:
        """Time horizon ``τ`` implied by the parameters."""
        return time_horizon(self.threshold, self.decay)

    @classmethod
    def from_horizon(cls, threshold: float, horizon: float, *,
                     backend: str | None = None,
                     approx: str | None = None) -> "JoinParameters":
        """Build parameters from ``(θ, τ)`` following the paper's methodology."""
        return cls(threshold=threshold,
                   decay=decay_for_horizon(threshold, horizon),
                   backend=backend, approx=approx)

    def create_join(self, algorithm: str = "STR-L2", *, stats=None):
        """Instantiate a join framework configured with these parameters.

        Convenience wrapper around :func:`repro.core.join.create_join` that
        carries the threshold, decay and backend choice in one object.
        """
        from repro.core.join import create_join

        return create_join(algorithm, self.threshold, self.decay,
                           stats=stats, backend=self.backend,
                           approx=self.approx)

    def similarity(self, x: SparseVector, y: SparseVector) -> float:
        """Time-dependent similarity of two vectors under these parameters."""
        return time_dependent_similarity(x, y, self.decay)

    def is_similar(self, x: SparseVector, y: SparseVector) -> bool:
        """Whether ``sim_Δt(x, y) ≥ θ``."""
        return self.similarity(x, y) >= self.threshold

    def within_horizon(self, time_delta: float) -> bool:
        """Whether a pair with arrival gap ``time_delta`` can still be similar."""
        return time_delta <= self.horizon
