"""Static all-pairs similarity search (APSS) driver.

The classic batch problem: given a set of vectors and a threshold ``θ``,
find every pair with cosine similarity at least ``θ``.  The driver builds
one of the registered batch indexes incrementally over the dataset —
exactly the ``IndConstr-IDX`` primitive of Section 4 — and returns the
similar pairs found along the way.

The MiniBatch framework reuses the same machinery per window; this module
is the stand-alone entry point for users who only need the static join.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.results import JoinStatistics, SimilarPair
from repro.core.vector import SparseVector
from repro.indexes.base import BatchIndex, create_batch_index
from repro.indexes.maxvector import MaxVector
from repro.indexes.ordering import DimensionOrdering

__all__ = ["all_pairs", "build_batch_index"]

_NEEDS_MAX_VECTOR = {"AP", "L2AP"}


def build_batch_index(index: str, threshold: float, vectors: list[SparseVector], *,
                      stats: JoinStatistics | None = None,
                      backend: str | None = None) -> BatchIndex:
    """Instantiate a batch index, pre-computing the ``m`` vector when needed."""
    name = index.upper()
    if name in _NEEDS_MAX_VECTOR:
        max_vector = MaxVector.from_vectors(vectors)
        return create_batch_index(name, threshold, stats=stats,
                                  max_vector=max_vector, backend=backend)
    return create_batch_index(name, threshold, stats=stats, backend=backend)


def all_pairs(
    vectors: Iterable[SparseVector],
    threshold: float,
    *,
    index: str = "L2AP",
    dimension_order: str = "natural",
    stats: JoinStatistics | None = None,
    backend: str | None = None,
) -> list[SimilarPair]:
    """Find all pairs with cosine similarity at least ``threshold``.

    Parameters
    ----------
    vectors:
        The dataset; it is materialised in memory (the batch problem needs
        the ``m`` vector for the AP-based indexes anyway).
    threshold:
        Similarity threshold ``θ``.
    index:
        One of the registered batch indexes: ``"INV"``, ``"AP"``, ``"L2AP"``
        (default, the batch state of the art) or ``"L2"``.
    dimension_order:
        Optional dimension-ordering strategy applied before indexing
        (``"natural"``, ``"frequency"`` or ``"max_weight"``); see
        :mod:`repro.indexes.ordering`.  Only affects the amount of work the
        prefix-filtering indexes do, never the result.
    stats:
        Optional statistics object to accumulate operation counters into.
    backend:
        Compute backend for the hot loops (see :mod:`repro.backends`).
    """
    dataset = list(vectors)
    if dimension_order.lower() != "natural":
        ordering = DimensionOrdering.from_vectors(dataset, dimension_order)
        dataset = ordering.remap_all(dataset)
    stats = stats if stats is not None else JoinStatistics()
    batch_index = build_batch_index(index, threshold, dataset, stats=stats,
                                    backend=backend)
    pairs: list[SimilarPair] = []
    for x, y, dot in batch_index.index_dataset(dataset):
        pairs.append(SimilarPair.make(
            x.vector_id, y.vector_id, dot,
            time_delta=abs(x.timestamp - y.timestamp),
            dot=dot, reported_at=max(x.timestamp, y.timestamp),
        ))
    stats.pairs_output += len(pairs)
    return pairs
