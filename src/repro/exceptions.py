"""Exception hierarchy for the SSSJ reproduction.

All library-specific errors derive from :class:`SSSJError` so that callers
can catch a single base class when they do not care about the precise
failure mode.
"""

from __future__ import annotations


class SSSJError(Exception):
    """Base class for every error raised by this library."""


class InvalidVectorError(SSSJError):
    """Raised when a sparse vector is malformed.

    Typical causes: negative or non-finite coordinate values, duplicate
    dimensions, or an empty vector where a non-empty one is required.
    """


class InvalidParameterError(SSSJError):
    """Raised when an algorithm parameter is out of its valid range.

    Examples: a similarity threshold outside ``(0, 1]`` or a negative
    decay rate.
    """


class StreamOrderError(SSSJError):
    """Raised when stream items arrive with decreasing timestamps.

    Every streaming algorithm in this library assumes that items are
    observed in non-decreasing timestamp order, as in the paper.
    """


class UnknownAlgorithmError(SSSJError):
    """Raised when an algorithm or index name cannot be resolved."""


class UnknownBackendError(SSSJError):
    """Raised when a compute-backend name cannot be resolved.

    Either the name is not registered at all, or it names an optional
    backend whose dependency (e.g. NumPy) is not importable in this
    environment.
    """


class DatasetFormatError(SSSJError):
    """Raised when an on-disk dataset file cannot be parsed."""


class ShardWorkerError(SSSJError):
    """Raised when a shard worker process died, hung past its recv
    deadline, or could not be recovered by respawn-and-replay.

    The multiprocess executor raises this internally to route a dead or
    unresponsive worker into the recovery path; it only escapes to the
    caller when recovery itself is disabled or exhausted (at which point
    the executor has already degraded to in-process execution, so an
    escaping ``ShardWorkerError`` means the run truly cannot continue).
    """

    def __init__(self, message: str, *, shard: int | None = None,
                 attempts: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts


class BudgetExceededError(SSSJError):
    """Raised when a run exceeds its operation or wall-clock budget.

    The benchmark harness uses this to reproduce the paper's Table 2,
    where configurations that do not finish within the allowed budget
    are reported as failures.
    """

    def __init__(self, message: str, *, operations: int | None = None,
                 elapsed: float | None = None) -> None:
        super().__init__(message)
        self.operations = operations
        self.elapsed = elapsed
