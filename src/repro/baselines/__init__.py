"""Exact baselines used as correctness oracles and evaluation reference points."""

from repro.baselines.brute_force import brute_force_all_pairs, brute_force_time_dependent
from repro.baselines.sliding_window import SlidingWindowJoin, sliding_window_join

__all__ = [
    "brute_force_all_pairs",
    "brute_force_time_dependent",
    "SlidingWindowJoin",
    "sliding_window_join",
]
