"""Quadratic brute-force all-pairs similarity search.

The paper observes that the similarity self-join is inherently quadratic
and that the brute-force algorithm is the best one can hope for in the
worst case.  This module provides that baseline for the *static* setting:
it compares every pair of vectors directly and is used both as a
correctness oracle in the test suite and as the slowest reference point in
the benchmark harness.

Like the indexes, the baselines route their dot products through the
compute-backend kernel API (:mod:`repro.backends`), so even the oracle
benefits from the vectorised backends while producing identical output.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.backends import resolve_kernel
from repro.core.results import JoinStatistics, SimilarPair
from repro.core.similarity import decay_factor, validate_decay, validate_threshold
from repro.core.vector import SparseVector

__all__ = ["brute_force_all_pairs", "brute_force_time_dependent"]


def brute_force_all_pairs(
    vectors: Iterable[SparseVector],
    threshold: float,
    *,
    stats: JoinStatistics | None = None,
    backend: str | None = None,
) -> list[SimilarPair]:
    """All pairs with plain cosine similarity at least ``threshold``.

    Ignores timestamps: this is the classic APSS problem the batch indexes
    solve, so it serves as their correctness oracle.
    """
    threshold = validate_threshold(threshold)
    stats = stats if stats is not None else JoinStatistics()
    kernel = resolve_kernel(backend)
    items: Sequence[SparseVector] = list(vectors)
    pairs: list[SimilarPair] = []
    for i, x in enumerate(items):
        stats.vectors_processed += 1
        dots = kernel.dots_for(x, items[:i])
        for y, dot in zip(items[:i], dots):
            stats.full_similarities += 1
            if dot >= threshold:
                pairs.append(SimilarPair.make(
                    x.vector_id, y.vector_id, dot,
                    time_delta=abs(x.timestamp - y.timestamp),
                    dot=dot, reported_at=max(x.timestamp, y.timestamp),
                ))
    stats.pairs_output += len(pairs)
    return pairs


def brute_force_time_dependent(
    vectors: Iterable[SparseVector],
    threshold: float,
    decay: float,
    *,
    stats: JoinStatistics | None = None,
    backend: str | None = None,
) -> list[SimilarPair]:
    """All pairs with time-dependent similarity at least ``threshold``.

    This is the exact answer to the SSSJ problem (Problem 1 of the paper),
    computed without any pruning; it is the correctness oracle for the MB
    and STR frameworks.
    """
    threshold = validate_threshold(threshold)
    decay = validate_decay(decay)
    stats = stats if stats is not None else JoinStatistics()
    kernel = resolve_kernel(backend)
    items: Sequence[SparseVector] = list(vectors)
    pairs: list[SimilarPair] = []
    for i, x in enumerate(items):
        stats.vectors_processed += 1
        dots = kernel.dots_for(x, items[:i])
        for y, dot in zip(items[:i], dots):
            stats.full_similarities += 1
            delta = abs(x.timestamp - y.timestamp)
            similarity = dot * decay_factor(decay, delta)
            if similarity >= threshold:
                pairs.append(SimilarPair.make(
                    x.vector_id, y.vector_id, similarity,
                    time_delta=delta, dot=dot,
                    reported_at=max(x.timestamp, y.timestamp),
                ))
    stats.pairs_output += len(pairs)
    return pairs
