"""Exact sliding-window streaming join (no index pruning).

A streaming baseline that exploits only the time-filtering property: it
keeps every vector that arrived within the horizon ``τ`` in a window and
compares each new arrival against the whole window.  Output is identical to
the SSSJ definition, so the test suite uses it as a streaming oracle; the
benchmark harness uses it to quantify how much the index-based pruning of
INV / L2AP / L2 actually saves.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable, Iterator

from repro.backends import resolve_kernel
from repro.core.results import JoinStatistics, SimilarPair
from repro.core.similarity import time_horizon, validate_decay, validate_threshold
from repro.core.vector import SparseVector

__all__ = ["SlidingWindowJoin", "sliding_window_join"]


class SlidingWindowJoin:
    """Exact streaming join over a time-based sliding window of length ``τ``."""

    def __init__(self, threshold: float, decay: float, *,
                 stats: JoinStatistics | None = None,
                 backend: str | None = None) -> None:
        self.threshold = validate_threshold(threshold)
        self.decay = validate_decay(decay)
        self.horizon = time_horizon(threshold, decay)
        self.stats = stats if stats is not None else JoinStatistics()
        self.kernel = resolve_kernel(backend)
        self._window: deque[SparseVector] = deque()

    @property
    def window_size(self) -> int:
        """Number of vectors currently retained."""
        return len(self._window)

    def process(self, vector: SparseVector) -> list[SimilarPair]:
        """Compare ``vector`` to every live window member, then retain it."""
        stats = self.stats
        now = vector.timestamp
        cutoff = now - self.horizon
        window = self._window
        while window and window[0].timestamp < cutoff:
            window.popleft()
            stats.entries_pruned += 1
        pairs: list[SimilarPair] = []
        members = list(window)
        dots = self.kernel.dots_for(vector, members)
        for other, dot in zip(members, dots):
            stats.full_similarities += 1
            delta = now - other.timestamp
            similarity = dot * math.exp(-self.decay * delta)
            if similarity >= self.threshold:
                pairs.append(SimilarPair.make(
                    vector.vector_id, other.vector_id, similarity,
                    time_delta=delta, dot=dot, reported_at=now,
                ))
        window.append(vector)
        stats.vectors_processed += 1
        stats.pairs_output += len(pairs)
        stats.max_index_size = max(stats.max_index_size, len(window))
        return pairs

    def run(self, stream: Iterable[SparseVector]) -> Iterator[SimilarPair]:
        """Process a whole stream, yielding pairs as they are found."""
        for vector in stream:
            yield from self.process(vector)


def sliding_window_join(stream: Iterable[SparseVector], threshold: float,
                        decay: float, *,
                        backend: str | None = None) -> list[SimilarPair]:
    """Convenience wrapper: run :class:`SlidingWindowJoin` over ``stream``."""
    join = SlidingWindowJoin(threshold, decay, backend=backend)
    return list(join.run(stream))
