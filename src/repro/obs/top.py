"""``sssj top`` — a live terminal view of a served join.

Polls the service's ``stats`` protocol op (never the engine directly, so
a busy server pays one request per refresh) and renders per-session and
per-tenant telemetry: throughput computed from successive polls, queue
depth, latency percentiles, DRR deficit, eviction counts.  Works against
both the plain :class:`~repro.service.server.JoinService` and the pooled
multi-tenant scheduler — scheduler-only sections simply disappear when
the server has no pool.

The renderer is a pure function of two successive ``stats`` payloads,
which is what the tests drive; the polling loop around it is a thin
shell.  ``iterations`` bounds the loop for scripted use (CI smoke, the
test-suite); interactive use defaults to "until interrupted".
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable

__all__ = ["TopView", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def _fmt(value: Any, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:,.1f}"
    elif isinstance(value, int):
        text = f"{value:,}"
    else:
        text = str(value)
    if len(text) > width:
        text = text[:width - 1] + "…"
    return text.rjust(width)


class TopView:
    """Stateful renderer: turns successive ``stats`` payloads into frames.

    Rates (vectors/s, pairs/s) are derived from the deltas between the
    current payload and the previous one, so the first frame shows the
    totals with a ``-`` rate.
    """

    def __init__(self) -> None:
        self._last_poll: float | None = None
        self._last_sessions: dict[str, dict[str, Any]] = {}

    def render(self, stats: dict[str, Any], *, now: float | None = None) -> str:
        now = time.monotonic() if now is None else now
        elapsed = (None if self._last_poll is None
                   else max(now - self._last_poll, 1e-9))
        lines: list[str] = []
        self._render_server(lines, stats.get("server") or {})
        scheduler = stats.get("scheduler")
        if scheduler:
            self._render_scheduler(lines, scheduler)
        tenants = stats.get("tenants")
        deficits = ((scheduler or {}).get("ready") or {}).get("deficit", {})
        if tenants:
            self._render_tenants(lines, tenants, deficits)
        sessions = stats.get("sessions") or {}
        self._render_sessions(lines, sessions, elapsed)
        self._last_poll = now
        self._last_sessions = {
            name: {"processed": row.get("processed", 0),
                   "pairs_emitted": row.get("pairs_emitted", 0)}
            for name, row in sessions.items()}
        return "\n".join(lines) + "\n"

    # -- sections --------------------------------------------------------------

    @staticmethod
    def _render_server(lines: list[str], server: dict[str, Any]) -> None:
        lines.append(
            f"sssj top — uptime {server.get('uptime_s', 0):,.0f}s  "
            f"sessions {server.get('sessions', 0)}  "
            f"requests {server.get('requests_handled', 0):,}")

    @staticmethod
    def _render_scheduler(lines: list[str], sched: dict[str, Any]) -> None:
        pool = sched.get("pool") or {}
        ready = sched.get("ready") or {}
        lines.append(
            f"pool: {pool.get('workers', 0)} workers  "
            f"{pool.get('quanta_run', 0):,} quanta  "
            f"{pool.get('vectors_processed', 0):,} vectors | "
            f"ready: {ready.get('ready_sessions', 0)} sessions  "
            f"{ready.get('tenants_in_rotation', 0)} tenants | "
            f"evictions {sched.get('evictions', 0)}  "
            f"restores {sched.get('restores', 0)}")

    @staticmethod
    def _render_tenants(lines: list[str], tenants: dict[str, Any],
                        deficits: dict[str, Any]) -> None:
        lines.append("")
        lines.append(f"{'TENANT':<16}{'SESS':>6}{'ADMITTED':>12}"
                     f"{'REJECTED':>10}{'DRR DEBT':>10}")
        for name, row in sorted(tenants.items()):
            rejected = sum((row.get("rejected") or {}).values())
            debt = deficits.get(name, 0.0)
            lines.append(f"{name[:15]:<16}{_fmt(row.get('sessions', 0), 6)}"
                         f"{_fmt(row.get('admitted', 0), 12)}"
                         f"{_fmt(rejected, 10)}{_fmt(debt, 10)}")

    def _render_sessions(self, lines: list[str],
                         sessions: dict[str, dict[str, Any]],
                         elapsed: float | None) -> None:
        lines.append("")
        lines.append(f"{'SESSION':<16}{'TENANT':<12}{'STATE':<9}"
                     f"{'QUEUED':>8}{'PROCESSED':>11}{'VEC/S':>9}"
                     f"{'PAIRS':>9}{'P99 MS':>8}")
        for name, row in sorted(sessions.items()):
            processed = row.get("processed", 0)
            previous = self._last_sessions.get(name)
            if elapsed is None or previous is None:
                rate = "-"
            else:
                rate = (processed - previous["processed"]) / elapsed
            latency = row.get("latency") or {}
            state = row.get("status", "?")
            if row.get("evicted_at") is not None:
                state = "evicted"
            lines.append(
                f"{name[:15]:<16}{str(row.get('tenant', '-'))[:11]:<12}"
                f"{state[:8]:<9}{_fmt(row.get('queued', 0), 8)}"
                f"{_fmt(processed, 11)}{_fmt(rate, 9)}"
                f"{_fmt(row.get('pairs_emitted', 0), 9)}"
                f"{_fmt(latency.get('p99_ms', 0.0), 8)}")


def run_top(host: str, port: int, *, interval: float = 2.0,
            iterations: int | None = None, out=None,
            clear: bool | None = None,
            fetch: Callable[[], dict[str, Any]] | None = None) -> int:
    """Poll ``stats`` and redraw until interrupted (or ``iterations``).

    ``fetch`` overrides the default ServiceClient poll (tests inject
    canned payloads); ``clear`` defaults to "only when stdout is a tty".
    """
    out = sys.stdout if out is None else out
    if clear is None:
        clear = bool(getattr(out, "isatty", lambda: False)())
    client = None
    if fetch is None:
        from repro.service.client import ServiceClient

        client = ServiceClient(host, port)
        fetch = client.stats
    view = TopView()
    count = 0
    try:
        while True:
            stats = fetch()
            frame = view.render(stats)
            if clear:
                out.write(_CLEAR)
            out.write(frame)
            out.flush()
            count += 1
            if iterations is not None and count >= iterations:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
    finally:
        if client is not None:
            client.close()
