"""Span tracing: batch-granularity timing with deterministic sampling.

A span brackets one unit of coarse work — a session micro-batch, a
shard exchange, a scheduler dispatch quantum, a checkpoint — never a
per-posting or per-candidate operation.  Spans are emitted as NDJSON
records (one object per line) through a pluggable sink.

Two knobs decide whether a ``span()`` call does anything at all:

``sample``
    Probability in [0, 1] that a span is recorded.  The decision is a
    *deterministic* function of ``(seed, span sequence number)`` via a
    splitmix64 mix, so a fixed seed reproduces the exact same sampled
    subset run over run — the property the determinism tests pin.
``slow_ms``
    Slow-batch threshold.  When set, every span is *measured* (cheap)
    and emitted with ``"slow": true`` if its duration crosses the
    threshold, even when the sampler skipped it — production tracing
    can run at sample=0.01 and still never miss a pathological batch.

When neither knob makes the tracer :attr:`~Tracer.active`, ``span()``
returns a shared no-op object whose enter/exit do nothing: the hot
path pays one attribute check.  Tracing never perturbs results — spans
observe timing only, and pair output is pinned bitwise-identical with
tracing on or off.
"""

from __future__ import annotations

import json
import threading
import time

__all__ = ["NULL_SPAN", "Span", "SpanWriter", "Tracer"]

_MASK = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _splitmix64(state: int) -> int:
    state = (state + _GOLDEN) & _MASK
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) & _MASK


class _NullSpan:
    """Shared do-nothing span returned whenever tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def note(self, **attrs):
        return self


NULL_SPAN = _NullSpan()


class Span:
    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "sampled", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict,
                 span_id: int, sampled: bool) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = None
        self.sampled = sampled
        self._start = 0.0

    def note(self, **attrs):
        """Attach attributes discovered mid-span (e.g. pairs emitted)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self):
        stack = self._tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._finish(self, duration)
        return False


class Tracer:
    """Deterministically-sampled span source feeding an NDJSON sink."""

    def __init__(self, *, sample: float = 0.0, seed: int = 0,
                 sink=None, slow_ms: float | None = None,
                 on_slow=None) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.sample = float(sample)
        self.seed = int(seed)
        self.sink = sink
        self.slow_ms = None if slow_ms is None else float(slow_ms)
        self.on_slow = on_slow
        self.emitted = 0
        self.slow_spans = 0
        self._seq = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def active(self) -> bool:
        has_output = self.sink is not None or self.on_slow is not None
        return has_output and (self.sample > 0.0 or self.slow_ms is not None)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _sampled(self, seq: int) -> bool:
        if self.sample <= 0.0:
            return False
        if self.sample >= 1.0:
            return True
        mixed = _splitmix64((self.seed ^ (seq * _GOLDEN)) & _MASK)
        return (mixed >> 11) * 2.0 ** -53 < self.sample

    def span(self, name: str, **attrs):
        if not self.active:
            return NULL_SPAN
        with self._lock:
            seq = self._seq
            self._seq += 1
        sampled = self._sampled(seq)
        if not sampled and self.slow_ms is None:
            return NULL_SPAN
        return Span(self, name, attrs, seq, sampled)

    def _finish(self, span: Span, duration_s: float) -> None:
        duration_ms = duration_s * 1000.0
        slow = self.slow_ms is not None and duration_ms >= self.slow_ms
        if not span.sampled and not slow:
            return
        record = {
            "ts": round(time.time(), 6),
            "span": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "dur_ms": round(duration_ms, 3),
        }
        if slow:
            record["slow"] = True
        record.update(span.attrs)
        try:
            if slow:
                self.slow_spans += 1
                if self.on_slow is not None:
                    self.on_slow(record)
            if self.sink is not None:
                self.sink(record)
                self.emitted += 1
        except Exception:
            # Telemetry must never take down the traced operation.
            pass


class SpanWriter:
    """Append-only NDJSON file sink, safe to share across threads."""

    def __init__(self, path) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")

    def __call__(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()
