"""Exporters: Prometheus text rendering and the plain-HTTP endpoint.

:func:`render_prometheus` produces the text exposition format
(version 0.0.4) from a :class:`~repro.obs.registry.MetricsRegistry`.
Output order is fully deterministic — families sorted by name, children
sorted by label values — which is what makes the golden-format tests
possible.

:func:`start_metrics_server` serves that text on ``GET /metrics`` via a
stdlib ``ThreadingHTTPServer`` running on a daemon thread; it is the
``sssj serve --metrics-port`` endpoint, scrapable by a stock Prometheus
or plain ``curl``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["CONTENT_TYPE", "MetricsHTTPServer", "render_prometheus",
           "start_metrics_server"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labelstr(labelnames, labelvalues, extra=()) -> str:
    parts = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(labelnames, labelvalues)]
    parts.extend(f'{name}="{_escape_label(value)}"'
                 for name, value in extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_prometheus(registry) -> str:
    """Render the registry (collectors included) as exposition text."""
    lines: list[str] = []
    families = registry.families()
    overflowed = []
    for family in families:
        if family.dropped:
            overflowed.append((family.name, family.dropped))
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, child in family.samples():
            if family.kind == "histogram":
                snap = child.snapshot()
                for bound, cumulative in snap["buckets"]:
                    labels = _labelstr(family.labelnames, labelvalues,
                                       extra=(("le", _format_value(bound)),))
                    lines.append(
                        f"{family.name}_bucket{labels} {cumulative}")
                labels = _labelstr(family.labelnames, labelvalues,
                                   extra=(("le", "+Inf"),))
                lines.append(f"{family.name}_bucket{labels} {snap['count']}")
                base = _labelstr(family.labelnames, labelvalues)
                lines.append(
                    f"{family.name}_sum{base} {_format_value(snap['sum'])}")
                lines.append(f"{family.name}_count{base} {snap['count']}")
            else:
                labels = _labelstr(family.labelnames, labelvalues)
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value())}")
    if overflowed:
        lines.append("# HELP sssj_obs_series_dropped_total Label sets "
                     "collapsed into the overflow series per metric.")
        lines.append("# TYPE sssj_obs_series_dropped_total counter")
        for name, dropped in overflowed:
            lines.append(
                f'sssj_obs_series_dropped_total{{metric="{name}"}} {dropped}')
    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802 — http.server API
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "only /metrics is served")
            return
        body = render_prometheus(self.server.obs_registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 — http.server API
        pass  # scrapes must not spam the server's stdout


class MetricsHTTPServer:
    """``/metrics`` endpoint on a daemon thread; ``close()`` to stop."""

    def __init__(self, registry, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._server = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._server.daemon_threads = True
        self._server.obs_registry = registry
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="sssj-metrics",
            daemon=True)
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)


def start_metrics_server(registry, host: str = "127.0.0.1",
                         port: int = 0) -> MetricsHTTPServer:
    return MetricsHTTPServer(registry, host, port)
