"""Zero-dependency metrics registry: counters, gauges, bounded histograms.

The registry is the single naming authority for telemetry across every
tier (engine, shards, service, scheduler).  Three instrument kinds:

``Counter``
    Monotone float.  The hot path writes a *per-thread cell* — a plain
    dict entry keyed by ``threading.get_ident()`` that only its owning
    thread ever mutates — so steady-state increments take no lock (the
    GIL makes the single ``dict`` slot update atomic).  The registry
    lock is taken only the first time a thread touches a counter and
    whenever a reader sums the cells.
``Gauge``
    Last-write-wins float, lock-protected (set on scrape or on rare
    structural events, never per item).
``Histogram``
    Fixed cumulative buckets (Prometheus style) plus a bounded sample
    window for percentile queries.  When the window is full the oldest
    sample is dropped and ``window_dropped`` is incremented so a
    saturated window is visible rather than silently biased.

Instruments are grouped in *families* keyed by metric name; a family
hands out children per label-value tuple.  Families enforce a series
cap: once ``max_series`` distinct label sets exist, further label
combinations collapse into a single ``overflow`` child and the drop is
counted — a misbehaving label (e.g. a session id in a high-churn
service) degrades telemetry instead of memory.

Collector callbacks bridge existing stats objects (``JoinStatistics``,
scheduler/pool/ready stats dicts, shard stage timings) into the
registry at *scrape time* only, so instrumented subsystems pay nothing
while nobody is looking.  Collectors hold their subject via weakref and
are pruned automatically once it dies.  :class:`DeltaTracker` converts
monotone totals read from those snapshots into counter increments, so
several instances (sessions, shards) can feed one labeled series.
"""

from __future__ import annotations

import bisect
import threading
import weakref
from collections import deque

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DeltaTracker",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "OVERFLOW_LABEL",
]

#: Latency-flavoured default buckets (seconds), 1ms .. 10s.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Label value assigned to the spill-over child once a family is full.
OVERFLOW_LABEL = "overflow"


class Counter:
    """Monotone counter with per-thread accumulation cells."""

    kind = "counter"
    __slots__ = ("_lock", "_cells", "_base")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cells: dict[int, float] = {}
        self._base = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        tid = threading.get_ident()
        cells = self._cells
        if tid in cells:
            # Only this thread writes this key; no lock needed.
            cells[tid] += amount
        else:
            with self._lock:
                cells[tid] = cells.get(tid, 0.0) + amount

    def set_total(self, total: float) -> None:
        """Raise the counter to ``total`` if it is below it (monotone)."""
        with self._lock:
            current = self._base + sum(self._cells.values())
            if total > current:
                self._base += total - current

    def value(self) -> float:
        with self._lock:
            return self._base + sum(self._cells.values())


class Gauge:
    """Last-write-wins instantaneous value."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram with a bounded percentile window."""

    kind = "histogram"
    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count",
                 "_window", "window_dropped")

    def __init__(self, buckets=DEFAULT_BUCKETS, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        # One slot per finite bucket plus the +Inf slot.
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._window: deque[float] = deque(maxlen=int(window))
        self.window_dropped = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect.bisect_left(self.buckets, value)] += 1
            self._sum += value
            self._count += 1
            if len(self._window) == self._window.maxlen:
                self.window_dropped += 1
            self._window.append(value)

    def percentile(self, p: float) -> float:
        """Percentile over the bounded window (interpolated below n=3)."""
        with self._lock:
            ordered = sorted(self._window)
        return _window_percentile(ordered, p)

    def snapshot(self) -> dict:
        with self._lock:
            cumulative = []
            running = 0
            for bound, count in zip(self.buckets, self._counts):
                running += count
                cumulative.append((bound, running))
            return {
                "buckets": cumulative,
                "sum": self._sum,
                "count": self._count,
                "window": len(self._window),
                "window_dropped": self.window_dropped,
            }


def _window_percentile(ordered: list[float], p: float) -> float:
    """Shared percentile rule: linear interpolation on tiny samples
    (nearest-rank is badly biased at n < 3), nearest-rank above."""
    if not ordered:
        return 0.0
    n = len(ordered)
    if n < 3:
        position = (n - 1) * p / 100.0
        low = int(position)
        frac = position - low
        high = min(low + 1, n - 1)
        return ordered[low] + (ordered[high] - ordered[low]) * frac
    rank = max(1, -(-n * p // 100))
    return ordered[int(rank) - 1]


class MetricFamily:
    """All children (label-value combinations) of one metric name."""

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: tuple[str, ...], *, max_series: int,
                 buckets=DEFAULT_BUCKETS, window: int = 2048) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self.max_series = int(max_series)
        self.dropped = 0
        self._buckets = buckets
        self._window = window
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def _new_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(buckets=self._buckets, window=self._window)

    def labels(self, **labels):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {sorted(self.labelnames)}, "
                f"got {sorted(labels)}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is not None:
                return child
            if len(self._children) >= self.max_series:
                self.dropped += 1
                key = (OVERFLOW_LABEL,) * len(self.labelnames)
                child = self._children.get(key)
                if child is not None:
                    return child
            child = self._new_child()
            self._children[key] = child
            return child

    def samples(self):
        """``(labelvalues, child)`` pairs in deterministic label order."""
        with self._lock:
            items = list(self._children.items())
        return sorted(items, key=lambda item: item[0])

    def __len__(self) -> int:
        with self._lock:
            return len(self._children)


class MetricsRegistry:
    """Thread-safe family registry plus scrape-time collectors."""

    def __init__(self, *, max_series_per_metric: int = 256) -> None:
        self.max_series_per_metric = int(max_series_per_metric)
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[tuple[object, object]] = []
        self.collector_errors = 0

    # -- families --------------------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str,
                labelnames, **kwargs) -> MetricFamily:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}, not {kind}")
                if family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{family.labelnames}, not {labelnames}")
                return family
            family = MetricFamily(name, kind, help_text, labelnames,
                                  max_series=self.max_series_per_metric,
                                  **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames=()) -> MetricFamily:
        return self._family(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames=()) -> MetricFamily:
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(self, name: str, help_text: str = "", labelnames=(),
                  *, buckets=DEFAULT_BUCKETS,
                  window: int = 2048) -> MetricFamily:
        return self._family(name, "histogram", help_text, labelnames,
                            buckets=buckets, window=window)

    # -- collectors ------------------------------------------------------------

    def add_collector(self, callback, owner=None) -> None:
        """Register ``callback`` to run at scrape time.

        With ``owner`` the callback is invoked as ``callback(owner)``
        and is dropped automatically once ``owner`` is garbage
        collected (the registry holds only a weakref, so registration
        never extends the owner's lifetime).
        """
        ref = weakref.ref(owner) if owner is not None else None
        with self._lock:
            self._collectors.append((ref, callback))

    def remove_collector(self, callback) -> None:
        with self._lock:
            self._collectors = [entry for entry in self._collectors
                                if entry[1] is not callback]

    def run_collectors(self) -> None:
        with self._lock:
            entries = list(self._collectors)
        dead = []
        for ref, callback in entries:
            owner = None
            if ref is not None:
                owner = ref()
                if owner is None:
                    dead.append(callback)
                    continue
            try:
                callback(owner) if ref is not None else callback()
            except Exception:
                # A broken collector must never take down a scrape.
                self.collector_errors += 1
        if dead:
            with self._lock:
                self._collectors = [
                    entry for entry in self._collectors
                    if entry[1] not in dead]

    # -- reads -----------------------------------------------------------------

    def families(self, *, collect: bool = True) -> list[MetricFamily]:
        if collect:
            self.run_collectors()
        with self._lock:
            families = list(self._families.values())
        return sorted(families, key=lambda family: family.name)

    def get_value(self, name: str, **labels) -> float:
        """Test/CLI convenience: one child's current value (0 if absent)."""
        with self._lock:
            family = self._families.get(name)
        if family is None:
            return 0.0
        key = tuple(str(labels.get(label, "")) for label in family.labelnames)
        with family._lock:
            child = family._children.get(key)
        if child is None:
            return 0.0
        return child.value() if family.kind != "histogram" else (
            child.snapshot()["count"])


class DeltaTracker:
    """Turn monotone totals read from snapshots into counter increments.

    Collectors read *totals* (e.g. ``JoinStatistics.pairs_output``) but
    several instances may feed the same labeled series, so the totals
    cannot simply be written — each instance's growth since the last
    scrape is added instead.  A total that shrinks (instance restarted
    from zero) is treated as a fresh start and added whole.
    """

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last: dict[object, float] = {}

    def export(self, child: Counter, key, total: float) -> None:
        total = float(total)
        last = self._last.get(key, 0.0)
        if total >= last:
            delta = total - last
        else:  # reset — count the new epoch from zero
            delta = total
        if delta > 0:
            child.inc(delta)
        self._last[key] = total
