"""Unified observability layer: metrics registry, spans, exporters.

One module-level :class:`~repro.obs.registry.MetricsRegistry` and one
:class:`~repro.obs.tracing.Tracer` serve the whole process; every tier
(engine collectors, shard executor, service sessions, scheduler)
instruments against this facade so all telemetry shares the ``sssj_``
namespace and one label schema (``tenant``, ``session``, ``shard``,
``backend``, ``stage``, ``op``, ``kind``).

Hot-path contract: when observability is disabled (``SSSJ_OBS=0`` or
:func:`set_enabled`), :func:`span` returns a shared no-op and
instrumentation sites skip their counter binds entirely, so the cost is
one module-global read.  When enabled, counters use per-thread cells
and spans are sampled — the ``obs_overhead`` benchmark gate pins the
end-to-end cost at ≤5% on the full-size STR-L2AP workload.

The metric catalogue, label schema and span taxonomy live in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import os

from repro.obs.export import (CONTENT_TYPE, MetricsHTTPServer,
                              render_prometheus, start_metrics_server)
from repro.obs.registry import (DEFAULT_BUCKETS, Counter, DeltaTracker,
                                Gauge, Histogram, MetricsRegistry,
                                OVERFLOW_LABEL)
from repro.obs.tracing import NULL_SPAN, Span, SpanWriter, Tracer

__all__ = [
    "CONTENT_TYPE", "Counter", "DEFAULT_BUCKETS", "DeltaTracker", "Gauge",
    "Histogram", "MetricsHTTPServer", "MetricsRegistry", "NULL_SPAN",
    "OVERFLOW_LABEL", "Span", "SpanWriter", "Tracer", "configure",
    "enabled", "get_registry", "get_tracer", "render", "set_enabled",
    "set_registry", "set_tracer", "span", "start_metrics_server",
]

_enabled = os.environ.get("SSSJ_OBS", "1").strip().lower() not in (
    "0", "false", "no", "off")
_registry = MetricsRegistry()
_tracer = Tracer()  # inert until configure() gives it a sink or slow_ms


def enabled() -> bool:
    """True when instrumentation sites should bind counters/spans."""
    return _enabled


def set_enabled(flag: bool) -> None:
    global _enabled
    _enabled = bool(flag)


def get_registry() -> MetricsRegistry:
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process registry (tests, benchmark isolation)."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def get_tracer() -> Tracer:
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def span(name: str, **attrs):
    """Start a span on the process tracer (no-op unless tracing is on)."""
    if not _enabled:
        return NULL_SPAN
    return _tracer.span(name, **attrs)


def configure(*, trace_sample: float | None = None,
              span_path=None, slow_batch_ms: float | None = None,
              seed: int = 0, on_slow=None) -> Tracer:
    """Build and install the process tracer from the serve-time knobs.

    Returns the previous tracer so callers can restore it (its
    SpanWriter, if any, is left open — the caller owns sink lifetime).
    """
    sink = SpanWriter(span_path) if span_path is not None else None
    tracer = Tracer(sample=trace_sample or 0.0, seed=seed, sink=sink,
                    slow_ms=slow_batch_ms, on_slow=on_slow)
    return set_tracer(tracer)


def render() -> str:
    """Prometheus text for the process registry."""
    return render_prometheus(_registry)
