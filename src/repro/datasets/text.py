"""Turning raw text documents into timestamped sparse vectors.

The paper's corpora are bag-of-words representations of web pages, news
wires, blog posts and tweets.  This module provides the missing piece for
users who want to run the join on their own text streams:

* :class:`Tokenizer` — lowercasing, punctuation stripping, stop-word
  removal and optional n-grams,
* :class:`TextVectorizer` — converts documents to sparse vectors using
  either a growing explicit vocabulary or the hashing trick (bounded
  dimensionality, no state), with logarithmic term-frequency weights and an
  optional online inverse-document-frequency component.

Everything is incremental so the vectorizer can be applied to an unbounded
stream: the IDF statistics are updated as documents arrive, mirroring how a
production system would have to operate.
"""

from __future__ import annotations

import math
import re
from collections.abc import Iterable, Iterator

from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError

__all__ = ["Tokenizer", "TextVectorizer", "DEFAULT_STOP_WORDS"]

#: A small English stop-word list; enough to keep the examples realistic
#: without pulling in an external dependency.
DEFAULT_STOP_WORDS = frozenset("""
a an and are as at be but by for from has have in is it its of on or that the
this to was were will with not no so if then than too very can just do does
""".split())

_TOKEN_PATTERN = re.compile(r"[a-z0-9#@][a-z0-9'_#@-]*")


class Tokenizer:
    """Splits raw text into normalised tokens.

    Parameters
    ----------
    stop_words:
        Tokens to drop (defaults to :data:`DEFAULT_STOP_WORDS`).  Pass an
        empty set to keep everything.
    min_token_length:
        Tokens shorter than this are dropped.
    ngrams:
        When greater than 1, contiguous word n-grams up to this length are
        emitted in addition to unigrams (e.g. ``ngrams=2`` adds bigrams).
    """

    def __init__(self, *, stop_words: frozenset[str] | set[str] = DEFAULT_STOP_WORDS,
                 min_token_length: int = 2, ngrams: int = 1) -> None:
        if ngrams < 1:
            raise InvalidParameterError(f"ngrams must be at least 1, got {ngrams}")
        self.stop_words = frozenset(stop_words)
        self.min_token_length = min_token_length
        self.ngrams = ngrams

    def tokenize(self, text: str) -> list[str]:
        """Tokens of ``text`` after normalisation, stop-wording and n-gramming."""
        words = [
            token for token in _TOKEN_PATTERN.findall(text.lower())
            if len(token) >= self.min_token_length and token not in self.stop_words
        ]
        if self.ngrams == 1:
            return words
        tokens = list(words)
        for length in range(2, self.ngrams + 1):
            for start in range(len(words) - length + 1):
                tokens.append("_".join(words[start:start + length]))
        return tokens

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)


class TextVectorizer:
    """Incrementally converts documents into unit-normalised sparse vectors.

    Parameters
    ----------
    tokenizer:
        The tokenizer to use (a default one is created when omitted).
    hashing_dimensions:
        When set, the hashing trick maps tokens into this many dimensions
        and no vocabulary is stored; when ``None`` (default) an explicit
        vocabulary grows as new tokens appear.
    use_idf:
        Weight terms by an online inverse document frequency.  The IDF is
        computed from the documents seen *so far*, so early documents are
        weighted with less information — the price of streaming operation.
    sublinear_tf:
        Use ``1 + log(tf)`` instead of raw term frequency.
    """

    def __init__(self, *, tokenizer: Tokenizer | None = None,
                 hashing_dimensions: int | None = None,
                 use_idf: bool = True, sublinear_tf: bool = True) -> None:
        if hashing_dimensions is not None and hashing_dimensions <= 1:
            raise InvalidParameterError(
                f"hashing_dimensions must be greater than 1, got {hashing_dimensions}"
            )
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.hashing_dimensions = hashing_dimensions
        self.use_idf = use_idf
        self.sublinear_tf = sublinear_tf
        self._vocabulary: dict[str, int] = {}
        self._document_frequency: dict[int, int] = {}
        self._documents_seen = 0

    # -- vocabulary ---------------------------------------------------------------

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct dimensions seen so far."""
        if self.hashing_dimensions is not None:
            return self.hashing_dimensions
        return len(self._vocabulary)

    @property
    def documents_seen(self) -> int:
        return self._documents_seen

    def dimension_of(self, token: str) -> int:
        """Dimension id a token maps to (creates it for vocabulary mode)."""
        if self.hashing_dimensions is not None:
            return hash(token) % self.hashing_dimensions
        dimension = self._vocabulary.get(token)
        if dimension is None:
            dimension = len(self._vocabulary)
            self._vocabulary[token] = dimension
        return dimension

    # -- vectorisation -------------------------------------------------------------

    def transform(self, document_id: int, timestamp: float, text: str) -> SparseVector | None:
        """Convert one document; returns ``None`` when no token survives."""
        tokens = self.tokenizer.tokenize(text)
        if not tokens:
            return None
        counts: dict[int, int] = {}
        for token in tokens:
            dimension = self.dimension_of(token)
            counts[dimension] = counts.get(dimension, 0) + 1

        self._documents_seen += 1
        for dimension in counts:
            self._document_frequency[dimension] = (
                self._document_frequency.get(dimension, 0) + 1
            )

        weights: dict[int, float] = {}
        for dimension, count in counts.items():
            weight = 1.0 + math.log(count) if self.sublinear_tf else float(count)
            if self.use_idf:
                df = self._document_frequency[dimension]
                weight *= 1.0 + math.log((1 + self._documents_seen) / (1 + df))
            weights[dimension] = weight
        return SparseVector(document_id, timestamp, weights)

    def transform_stream(
        self, documents: Iterable[tuple[int, float, str]]
    ) -> Iterator[SparseVector]:
        """Vectorise an iterable of ``(document_id, timestamp, text)`` triples."""
        for document_id, timestamp, text in documents:
            vector = self.transform(document_id, timestamp, text)
            if vector is not None:
                yield vector
