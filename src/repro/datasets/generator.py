"""Synthetic corpus generator.

Produces streams of timestamped sparse vectors whose shape follows a
:class:`~repro.datasets.profiles.DatasetProfile`:

* per-vector size (number of non-zero coordinates) is log-normally
  distributed around the profile's ``avg_nnz``,
* term (dimension) popularity follows a Zipf distribution, as in real text
  corpora, so some posting lists are much longer than others,
* term weights are drawn from a log-normal (TF·IDF-like) distribution and
  the vector is ℓ₂-normalised,
* with probability ``duplicate_probability`` a vector is instead a *near
  duplicate* of a recently generated one — a perturbed copy — which is what
  produces similar pairs that arrive close in time (the trend-detection and
  near-duplicate-filtering scenarios that motivate the paper),
* timestamps come from the profile's arrival process.

All randomness flows through a single seeded :class:`numpy.random.Generator`,
so corpora are fully reproducible.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.vector import SparseVector
from repro.datasets.arrival import make_arrival_process
from repro.datasets.profiles import DatasetProfile, get_profile

__all__ = ["SyntheticCorpusGenerator", "generate_corpus", "generate_profile_corpus"]


class SyntheticCorpusGenerator:
    """Generator of synthetic timestamped sparse-vector corpora."""

    def __init__(self, profile: DatasetProfile, *, seed: int = 0,
                 start_id: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self.start_id = start_id
        self._rng = np.random.default_rng(seed)
        # Zipfian term-popularity distribution over the vocabulary.
        ranks = np.arange(1, profile.vocabulary_size + 1, dtype=np.float64)
        weights = ranks ** (-profile.zipf_exponent)
        self._term_probabilities = weights / weights.sum()

    # -- public API -------------------------------------------------------------

    def generate(self, num_vectors: int | None = None) -> list[SparseVector]:
        """Materialise a corpus of ``num_vectors`` vectors (default: profile size)."""
        return list(self.stream(num_vectors))

    def stream(self, num_vectors: int | None = None) -> Iterator[SparseVector]:
        """Lazily generate the corpus in timestamp order."""
        count = num_vectors if num_vectors is not None else self.profile.num_vectors
        timestamps = make_arrival_process(
            self.profile.arrival_process, count, self._rng,
            rate=self.profile.arrival_rate, burst_size=self.profile.burst_size,
        )
        recent: list[dict[int, float]] = []
        window = max(1, self.profile.duplicate_window)
        for offset, timestamp in enumerate(timestamps):
            vector_id = self.start_id + offset
            if recent and self._rng.random() < self.profile.duplicate_probability:
                entries = self._perturb(recent[int(self._rng.integers(len(recent)))])
            else:
                entries = self._fresh_entries()
            recent.append(entries)
            if len(recent) > window:
                recent.pop(0)
            yield SparseVector(vector_id, timestamp, entries)

    # -- internals --------------------------------------------------------------

    def _vector_size(self) -> int:
        """Draw the number of non-zero coordinates for one vector."""
        profile = self.profile
        size = self._rng.lognormal(
            mean=np.log(profile.avg_nnz), sigma=profile.nnz_dispersion
        )
        return int(np.clip(round(size), 1, profile.vocabulary_size))

    def _fresh_entries(self) -> dict[int, float]:
        """Draw a brand-new vector: Zipfian terms with log-normal weights."""
        size = self._vector_size()
        dims = self._rng.choice(
            self.profile.vocabulary_size, size=size, replace=False,
            p=self._term_probabilities,
        )
        values = self._rng.lognormal(mean=0.0, sigma=0.5, size=size)
        return {int(dim): float(value) for dim, value in zip(dims, values)}

    def _perturb(self, entries: dict[int, float]) -> dict[int, float]:
        """Create a near-duplicate of ``entries`` by editing a few coordinates."""
        noise = self.profile.duplicate_noise
        result = dict(entries)
        edits = max(1, int(round(len(entries) * noise)))
        dims = list(result)
        # Drop a few terms ...
        for dim in self._rng.choice(len(dims), size=min(edits, len(dims)), replace=False):
            if len(result) > 1:
                result.pop(dims[int(dim)], None)
        # ... jitter the remaining weights slightly ...
        for dim in list(result):
            result[dim] *= float(self._rng.uniform(0.9, 1.1))
        # ... and add a few new terms.
        new_dims = self._rng.choice(
            self.profile.vocabulary_size, size=edits, replace=False,
            p=self._term_probabilities,
        )
        for dim in new_dims:
            result.setdefault(int(dim), float(self._rng.lognormal(0.0, 0.5)))
        return result


def generate_corpus(profile: DatasetProfile, *, seed: int = 0,
                    num_vectors: int | None = None) -> list[SparseVector]:
    """Generate a corpus for an explicit profile object."""
    return SyntheticCorpusGenerator(profile, seed=seed).generate(num_vectors)


def generate_profile_corpus(name: str, *, seed: int = 0,
                            num_vectors: int | None = None) -> list[SparseVector]:
    """Generate a corpus for one of the built-in profiles by name."""
    profile = get_profile(name, num_vectors=num_vectors)
    return SyntheticCorpusGenerator(profile, seed=seed).generate()
