"""On-disk formats for timestamped sparse-vector datasets.

The paper distributes its datasets in a text format and ships a converter
to a "more compact and faster-to-read binary format".  This module
reproduces both:

Text format (one vector per line)
    ``<vector_id> <timestamp> <dim>:<value> <dim>:<value> ...``
    Lines starting with ``#`` and blank lines are ignored.

Binary format
    A small header (magic ``SSSJBIN1``, record count) followed by one
    record per vector: vector id (int64), timestamp (float64), number of
    non-zeros (int32), then the coordinates as (int32, float64) pairs.
    Everything is little-endian.

Values are stored as written; by default readers re-normalise vectors to
unit length (pass ``normalize=False`` to keep raw weights).
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.core.vector import SparseVector
from repro.exceptions import DatasetFormatError

__all__ = [
    "write_text",
    "read_text",
    "write_binary",
    "read_binary",
    "read_vectors",
    "write_vectors",
    "convert",
]

_MAGIC = b"SSSJBIN1"
_HEADER = struct.Struct("<8sq")
_RECORD_HEAD = struct.Struct("<qdi")
_COORD = struct.Struct("<id")


# -- text format ----------------------------------------------------------------


def write_text(path: str | Path, vectors: Iterable[SparseVector]) -> int:
    """Write vectors in the text format; return the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for vector in vectors:
            coords = " ".join(f"{dim}:{value:.17g}" for dim, value in vector)
            handle.write(f"{vector.vector_id} {vector.timestamp:.17g} {coords}\n")
            count += 1
    return count


def read_text(path: str | Path, *, normalize: bool = True) -> Iterator[SparseVector]:
    """Lazily read vectors from the text format."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            yield _parse_text_line(stripped, line_number, normalize)


def _parse_text_line(line: str, line_number: int, normalize: bool) -> SparseVector:
    fields = line.split()
    if len(fields) < 3:
        raise DatasetFormatError(
            f"line {line_number}: expected '<id> <timestamp> <dim>:<value> ...', got {line!r}"
        )
    try:
        vector_id = int(fields[0])
        timestamp = float(fields[1])
        entries = {}
        for token in fields[2:]:
            dim_text, _, value_text = token.partition(":")
            entries[int(dim_text)] = float(value_text)
    except ValueError as error:
        raise DatasetFormatError(f"line {line_number}: {error}") from error
    return SparseVector(vector_id, timestamp, entries, normalize=normalize)


# -- binary format ---------------------------------------------------------------


def write_binary(path: str | Path, vectors: Iterable[SparseVector]) -> int:
    """Write vectors in the binary format; return the number written."""
    records = list(vectors)
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, len(records)))
        for vector in records:
            handle.write(_RECORD_HEAD.pack(vector.vector_id, vector.timestamp, len(vector)))
            for dim, value in vector:
                handle.write(_COORD.pack(dim, value))
    return len(records)


def read_binary(path: str | Path, *, normalize: bool = True) -> Iterator[SparseVector]:
    """Lazily read vectors from the binary format."""
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise DatasetFormatError(f"{path}: truncated header")
        magic, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise DatasetFormatError(f"{path}: bad magic {magic!r}")
        for record_index in range(count):
            head = handle.read(_RECORD_HEAD.size)
            if len(head) != _RECORD_HEAD.size:
                raise DatasetFormatError(f"{path}: truncated record {record_index}")
            vector_id, timestamp, nnz = _RECORD_HEAD.unpack(head)
            payload = handle.read(_COORD.size * nnz)
            if len(payload) != _COORD.size * nnz:
                raise DatasetFormatError(f"{path}: truncated coordinates in record {record_index}")
            entries = {}
            for offset in range(nnz):
                dim, value = _COORD.unpack_from(payload, offset * _COORD.size)
                entries[dim] = value
            yield SparseVector(vector_id, timestamp, entries, normalize=normalize)


# -- format dispatch ---------------------------------------------------------------


def _detect_format(path: str | Path, fmt: str | None) -> str:
    if fmt is not None:
        key = fmt.lower()
        if key not in ("text", "binary"):
            raise DatasetFormatError(f"unknown format {fmt!r}; expected 'text' or 'binary'")
        return key
    suffix = Path(path).suffix.lower()
    return "binary" if suffix in (".bin", ".sssj") else "text"


def read_vectors(path: str | Path, *, fmt: str | None = None,
                 normalize: bool = True) -> Iterator[SparseVector]:
    """Read a dataset, selecting the format from ``fmt`` or the file extension."""
    if _detect_format(path, fmt) == "binary":
        return read_binary(path, normalize=normalize)
    return read_text(path, normalize=normalize)


def write_vectors(path: str | Path, vectors: Iterable[SparseVector], *,
                  fmt: str | None = None) -> int:
    """Write a dataset, selecting the format from ``fmt`` or the file extension."""
    if _detect_format(path, fmt) == "binary":
        return write_binary(path, vectors)
    return write_text(path, vectors)


def convert(source: str | Path, destination: str | Path, *,
            source_fmt: str | None = None, destination_fmt: str | None = None) -> int:
    """Convert a dataset between the text and binary formats.

    This mirrors the text-to-binary converter the paper mentions shipping
    with its code.  Returns the number of vectors converted.
    """
    vectors = read_vectors(source, fmt=source_fmt, normalize=False)
    return write_vectors(destination, vectors, fmt=destination_fmt)
