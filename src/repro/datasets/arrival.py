"""Arrival-time processes for synthetic streams.

Table 1 of the paper lists three kinds of timestamps across its datasets:

* *sequential* — items are simply numbered (RCV1),
* *poisson* — inter-arrival times drawn from an exponential distribution
  (WebSpam, where timestamps were assigned artificially),
* *publishing date* — real posting times (Blogs, Tweets), which are bursty:
  periods of intense activity separated by quieter stretches.

The generators below reproduce those shapes.  Each returns an iterator of
non-decreasing timestamps; they are driven by a ``numpy`` random generator
so runs are reproducible given a seed.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = [
    "sequential_timestamps",
    "poisson_timestamps",
    "bursty_timestamps",
    "make_arrival_process",
    "ARRIVAL_PROCESSES",
]


def sequential_timestamps(count: int, *, start: float = 0.0,
                          step: float = 1.0) -> Iterator[float]:
    """Evenly spaced timestamps ``start, start+step, ...`` (RCV1-style)."""
    if step <= 0:
        raise InvalidParameterError(f"step must be positive, got {step}")
    for i in range(count):
        yield start + i * step


def poisson_timestamps(count: int, rng: np.random.Generator, *, rate: float = 1.0,
                       start: float = 0.0) -> Iterator[float]:
    """Poisson-process arrivals with the given rate (WebSpam-style)."""
    if rate <= 0:
        raise InvalidParameterError(f"rate must be positive, got {rate}")
    current = start
    for _ in range(count):
        current += float(rng.exponential(1.0 / rate))
        yield current


def bursty_timestamps(count: int, rng: np.random.Generator, *, rate: float = 1.0,
                      burst_size: float = 8.0, burst_spread: float = 0.1,
                      start: float = 0.0) -> Iterator[float]:
    """Bursty arrivals mimicking real publication times (Blogs/Tweets-style).

    Items arrive in bursts: the burst *anchors* follow a Poisson process of
    the given rate divided by the mean burst size, and each burst contains a
    geometric number of items spread over ``burst_spread`` time units.
    """
    if rate <= 0 or burst_size < 1:
        raise InvalidParameterError(
            f"rate must be positive and burst_size >= 1, got {rate}, {burst_size}"
        )
    produced = 0
    anchor = start
    anchor_rate = rate / burst_size
    while produced < count:
        anchor += float(rng.exponential(1.0 / anchor_rate))
        size = 1 + int(rng.geometric(1.0 / burst_size))
        size = min(size, count - produced)
        offsets = np.sort(rng.uniform(0.0, burst_spread, size=size))
        for offset in offsets:
            yield anchor + float(offset)
            produced += 1


def make_arrival_process(name: str, count: int, rng: np.random.Generator, *,
                         rate: float = 1.0, burst_size: float = 8.0,
                         start: float = 0.0) -> Iterator[float]:
    """Build one of the named arrival processes.

    ``name`` is one of ``"sequential"``, ``"poisson"`` or ``"bursty"``.
    """
    key = name.lower()
    if key == "sequential":
        return sequential_timestamps(count, start=start, step=1.0 / rate)
    if key == "poisson":
        return poisson_timestamps(count, rng, rate=rate, start=start)
    if key == "bursty":
        return bursty_timestamps(count, rng, rate=rate, burst_size=burst_size, start=start)
    raise InvalidParameterError(
        f"unknown arrival process {name!r}; expected one of {sorted(ARRIVAL_PROCESSES)}"
    )


ARRIVAL_PROCESSES = ("sequential", "poisson", "bursty")
