"""Synthetic dataset substrate: generators, profiles, arrival processes, I/O."""

from repro.datasets.arrival import (
    ARRIVAL_PROCESSES,
    bursty_timestamps,
    make_arrival_process,
    poisson_timestamps,
    sequential_timestamps,
)
from repro.datasets.drift import (
    duplicate_storm_stream,
    growing_scale_stream,
    vocabulary_drift_stream,
)
from repro.datasets.generator import (
    SyntheticCorpusGenerator,
    generate_corpus,
    generate_profile_corpus,
)
from repro.datasets.io import (
    convert,
    read_binary,
    read_text,
    read_vectors,
    write_binary,
    write_text,
    write_vectors,
)
from repro.datasets.profiles import (
    PROFILES,
    DatasetProfile,
    available_profiles,
    get_profile,
)
from repro.datasets.stats import DatasetStatistics, dataset_statistics
from repro.datasets.text import DEFAULT_STOP_WORDS, TextVectorizer, Tokenizer

__all__ = [
    "Tokenizer",
    "TextVectorizer",
    "DEFAULT_STOP_WORDS",
    "growing_scale_stream",
    "vocabulary_drift_stream",
    "duplicate_storm_stream",
    "ARRIVAL_PROCESSES",
    "sequential_timestamps",
    "poisson_timestamps",
    "bursty_timestamps",
    "make_arrival_process",
    "SyntheticCorpusGenerator",
    "generate_corpus",
    "generate_profile_corpus",
    "DatasetProfile",
    "PROFILES",
    "get_profile",
    "available_profiles",
    "DatasetStatistics",
    "dataset_statistics",
    "convert",
    "read_binary",
    "read_text",
    "read_vectors",
    "write_binary",
    "write_text",
    "write_vectors",
]
