"""Dataset profiles mirroring the shape of the paper's corpora (Table 1).

The paper evaluates on four real corpora — WebSpam, RCV1, Blogs and
Tweets — whose distinguishing characteristics are their *density* (average
number of non-zero coordinates per vector, spanning two orders of
magnitude), their vocabulary size and their timestamp type.  We cannot ship
those corpora, so each profile below captures the characteristics that
drive algorithmic behaviour, scaled down to laptop size:

===========  ==========  ==============  ============  ================
profile      avg nnz     vocabulary      timestamps    paper analogue
===========  ==========  ==============  ============  ================
webspam      ~350        12 000          poisson       WebSpam (3 728 nnz)
rcv1         ~75         8 000           sequential    RCV1 (75.7 nnz)
blogs        ~140        20 000          bursty        Blogs (140.4 nnz)
tweets       ~10         30 000          bursty        Tweets (9.5 nnz)
===========  ==========  ==============  ============  ================

The average number of non-zeros matches the paper exactly for RCV1, Blogs
and Tweets; WebSpam is scaled by ~10× (3 728 → 350) to keep pure-Python
runs tractable while preserving its "two orders of magnitude denser than
Tweets" role in the evaluation.  Vector counts default to a few thousand
and every benchmark overrides them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import InvalidParameterError

__all__ = ["DatasetProfile", "PROFILES", "get_profile", "available_profiles"]


@dataclass(frozen=True)
class DatasetProfile:
    """Parameters of a synthetic corpus generator run.

    Attributes
    ----------
    name:
        Profile identifier.
    num_vectors:
        Default number of vectors to generate.
    vocabulary_size:
        Number of distinct dimensions terms are drawn from.
    avg_nnz:
        Mean number of non-zero coordinates per vector.
    nnz_dispersion:
        Spread of the per-vector non-zero count (log-normal sigma).
    zipf_exponent:
        Skew of term popularity (larger = more skewed vocabulary).
    arrival_process:
        One of ``"sequential"``, ``"poisson"``, ``"bursty"``.
    arrival_rate:
        Mean number of items per time unit.
    burst_size:
        Mean burst size for the bursty process.
    duplicate_probability:
        Probability that a vector is a near-duplicate of a recent one;
        this is what creates similar pairs close in time (the paper's
        motivating near-duplicate scenario).
    duplicate_noise:
        Fraction of coordinates perturbed when creating a near-duplicate.
    duplicate_window:
        How many recent vectors a near-duplicate may copy from.
    description:
        Human-readable summary (shown by the CLI).
    """

    name: str
    num_vectors: int
    vocabulary_size: int
    avg_nnz: float
    nnz_dispersion: float
    zipf_exponent: float
    arrival_process: str
    arrival_rate: float
    burst_size: float
    duplicate_probability: float
    duplicate_noise: float
    duplicate_window: int
    description: str

    def __post_init__(self) -> None:
        if self.num_vectors <= 0:
            raise InvalidParameterError("num_vectors must be positive")
        if self.vocabulary_size <= 1:
            raise InvalidParameterError("vocabulary_size must be at least 2")
        if self.avg_nnz < 1:
            raise InvalidParameterError("avg_nnz must be at least 1")
        if not 0.0 <= self.duplicate_probability < 1.0:
            raise InvalidParameterError("duplicate_probability must be in [0, 1)")

    def scaled(self, num_vectors: int) -> "DatasetProfile":
        """A copy of the profile with a different vector count."""
        return replace(self, num_vectors=num_vectors)


PROFILES: dict[str, DatasetProfile] = {
    "webspam": DatasetProfile(
        name="webspam",
        num_vectors=1_000,
        vocabulary_size=12_000,
        avg_nnz=350.0,
        nnz_dispersion=0.4,
        zipf_exponent=1.1,
        arrival_process="poisson",
        arrival_rate=1.0,
        burst_size=8.0,
        duplicate_probability=0.25,
        duplicate_noise=0.10,
        duplicate_window=50,
        description="Dense spam-page corpus; Poisson arrivals (paper: WebSpam).",
    ),
    "rcv1": DatasetProfile(
        name="rcv1",
        num_vectors=2_000,
        vocabulary_size=8_000,
        avg_nnz=75.0,
        nnz_dispersion=0.5,
        zipf_exponent=1.1,
        arrival_process="sequential",
        arrival_rate=1.0,
        burst_size=8.0,
        duplicate_probability=0.20,
        duplicate_noise=0.15,
        duplicate_window=100,
        description="Newswire corpus; sequential timestamps (paper: RCV1).",
    ),
    "blogs": DatasetProfile(
        name="blogs",
        num_vectors=2_500,
        vocabulary_size=20_000,
        avg_nnz=140.0,
        nnz_dispersion=0.6,
        zipf_exponent=1.05,
        arrival_process="bursty",
        arrival_rate=1.0,
        burst_size=6.0,
        duplicate_probability=0.15,
        duplicate_noise=0.15,
        duplicate_window=100,
        description="Blog posts; bursty publication times (paper: Blogs).",
    ),
    "tweets": DatasetProfile(
        name="tweets",
        num_vectors=4_000,
        vocabulary_size=30_000,
        avg_nnz=10.0,
        nnz_dispersion=0.5,
        zipf_exponent=1.0,
        arrival_process="bursty",
        arrival_rate=2.0,
        burst_size=12.0,
        duplicate_probability=0.25,
        duplicate_noise=0.20,
        duplicate_window=200,
        description="Micro-blog posts; very sparse, bursty (paper: Tweets).",
    ),
    "hashtags": DatasetProfile(
        name="hashtags",
        num_vectors=10_000,
        vocabulary_size=3_000,
        avg_nnz=30.0,
        nnz_dispersion=0.5,
        zipf_exponent=1.2,
        arrival_process="sequential",
        arrival_rate=1.0,
        burst_size=8.0,
        duplicate_probability=0.20,
        duplicate_noise=0.15,
        duplicate_window=100,
        description="Hashtag-like stream: small, highly skewed vocabulary that "
                    "produces long posting lists (backend hot-path workload).",
    ),
}


def get_profile(name: str, *, num_vectors: int | None = None) -> DatasetProfile:
    """Look up a profile by name, optionally overriding its vector count."""
    try:
        profile = PROFILES[name.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown dataset profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
    if num_vectors is not None:
        profile = profile.scaled(num_vectors)
    return profile


def available_profiles() -> list[str]:
    """Names of the built-in dataset profiles."""
    return sorted(PROFILES)
