"""Corpus statistics in the style of Table 1 of the paper.

Table 1 reports, for each dataset: the number of vectors ``n``, the number
of dimensions ``m``, the total number of non-zero coordinates ``Σ|x|``, the
density ``ρ = Σ|x| / (n·m)``, the average number of non-zeros ``|x|`` and
the timestamp type.  :func:`dataset_statistics` computes the same figures
for any collection of vectors; the Table-1 benchmark prints them for every
built-in profile.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.vector import SparseVector

__all__ = ["DatasetStatistics", "dataset_statistics"]


@dataclass(frozen=True)
class DatasetStatistics:
    """The per-dataset figures of Table 1."""

    name: str
    num_vectors: int
    num_dimensions: int
    total_nonzeros: int
    density: float
    avg_nonzeros: float
    timestamp_span: float
    timestamp_type: str = "unknown"

    def as_row(self) -> dict[str, object]:
        """Row representation used by the benchmark table renderer."""
        return {
            "dataset": self.name,
            "n": self.num_vectors,
            "m": self.num_dimensions,
            "nnz": self.total_nonzeros,
            "density_pct": round(self.density * 100.0, 4),
            "avg_nnz": round(self.avg_nonzeros, 2),
            "timestamp_span": round(self.timestamp_span, 2),
            "timestamps": self.timestamp_type,
        }


def dataset_statistics(vectors: Iterable[SparseVector], *, name: str = "dataset",
                       timestamp_type: str = "unknown") -> DatasetStatistics:
    """Compute Table-1 style statistics for a collection of vectors."""
    num_vectors = 0
    total_nonzeros = 0
    dimensions: set[int] = set()
    first_timestamp: float | None = None
    last_timestamp: float | None = None
    for vector in vectors:
        num_vectors += 1
        total_nonzeros += len(vector)
        dimensions.update(vector.dims)
        if first_timestamp is None:
            first_timestamp = vector.timestamp
        last_timestamp = vector.timestamp
    num_dimensions = len(dimensions)
    if num_vectors == 0 or num_dimensions == 0:
        density = 0.0
        avg_nonzeros = 0.0
    else:
        density = total_nonzeros / (num_vectors * num_dimensions)
        avg_nonzeros = total_nonzeros / num_vectors
    span = 0.0
    if first_timestamp is not None and last_timestamp is not None:
        span = last_timestamp - first_timestamp
    return DatasetStatistics(
        name=name,
        num_vectors=num_vectors,
        num_dimensions=num_dimensions,
        total_nonzeros=total_nonzeros,
        density=density,
        avg_nonzeros=avg_nonzeros,
        timestamp_span=span,
        timestamp_type=timestamp_type,
    )
