"""Adversarial and drifting workload generators.

The profile-based generator in :mod:`repro.datasets.generator` produces
stationary streams.  Real streams are not stationary, and several of the
algorithms' costs are triggered precisely by non-stationarity:

* STR-L2AP re-indexes whenever the per-dimension maxima grow, so a stream
  whose weight scale creeps upward is its worst case;
* vocabulary drift (new terms displacing old ones) changes which posting
  lists are hot and exercises index growth/shrinkage;
* duplicate storms (a burst of near-identical items) blow up the number of
  output pairs and stress candidate verification.

These generators create such streams deterministically from a seed.  They
are used by the robustness tests and by the stress benchmark, and are
available to users who want to soak-test a deployment.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError

__all__ = [
    "growing_scale_stream",
    "vocabulary_drift_stream",
    "duplicate_storm_stream",
]


def growing_scale_stream(count: int, *, dimensions: int = 200, nnz: int = 8,
                         growth: float = 0.02, seed: int = 0,
                         time_step: float = 1.0) -> Iterator[SparseVector]:
    """A stream whose raw weight scale grows steadily.

    Each vector's raw weights are multiplied by ``(1 + growth)^i``, so the
    per-dimension maxima keep increasing and the AP-based indexes must
    re-index frequently.  Vectors are still unit-normalised (the scale shows
    up only through which coordinate is the per-dimension maximum), so the
    *answers* are comparable with a stationary stream.
    """
    if growth < 0:
        raise InvalidParameterError(f"growth must be non-negative, got {growth}")
    rng = np.random.default_rng(seed)
    for index in range(count):
        dims = rng.choice(dimensions, size=min(nnz, dimensions), replace=False)
        scale = (1.0 + growth) ** index
        values = rng.uniform(0.1, 1.0, size=len(dims)) * scale
        entries = {int(dim): float(value) for dim, value in zip(dims, values)}
        yield SparseVector(index, index * time_step, entries)


def vocabulary_drift_stream(count: int, *, active_terms: int = 50, nnz: int = 6,
                            drift_every: int = 20, seed: int = 0,
                            time_step: float = 1.0) -> Iterator[SparseVector]:
    """A stream whose active vocabulary slides forward over time.

    Terms are drawn from a window of ``active_terms`` dimension ids that
    shifts by one every ``drift_every`` items, so old posting lists go cold
    and new ones appear continuously.
    """
    if drift_every <= 0:
        raise InvalidParameterError(f"drift_every must be positive, got {drift_every}")
    rng = np.random.default_rng(seed)
    for index in range(count):
        window_start = index // drift_every
        dims = window_start + rng.choice(active_terms, size=min(nnz, active_terms),
                                         replace=False)
        entries = {int(dim): float(rng.uniform(0.1, 1.0)) for dim in dims}
        yield SparseVector(index, index * time_step, entries)


def duplicate_storm_stream(count: int, *, storm_start: int, storm_length: int,
                           dimensions: int = 200, nnz: int = 6, seed: int = 0,
                           time_step: float = 0.5) -> Iterator[SparseVector]:
    """A background stream with a storm of near-identical items in the middle.

    Between ``storm_start`` and ``storm_start + storm_length`` every item is
    a lightly perturbed copy of the same template, which makes the number of
    similar pairs within the storm quadratic in its length — the worst case
    for output-sensitive behaviour.
    """
    if storm_start < 0 or storm_length < 0:
        raise InvalidParameterError("storm_start and storm_length must be non-negative")
    rng = np.random.default_rng(seed)
    template_dims = rng.choice(dimensions, size=min(nnz, dimensions), replace=False)
    template = {int(dim): float(rng.uniform(0.5, 1.0)) for dim in template_dims}
    for index in range(count):
        in_storm = storm_start <= index < storm_start + storm_length
        if in_storm:
            entries = {dim: value * float(rng.uniform(0.95, 1.05))
                       for dim, value in template.items()}
        else:
            dims = rng.choice(dimensions, size=min(nnz, dimensions), replace=False)
            entries = {int(dim): float(rng.uniform(0.1, 1.0)) for dim in dims}
        yield SparseVector(index, index * time_step, entries)
