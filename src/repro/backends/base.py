"""Kernel interface shared by every compute backend.

The similarity-join hot loops — candidate accumulation over posting lists,
decay/time-filter application, and the verification dot products — are
factored out of the index classes into a :class:`SimilarityKernel`.  The
index classes own the *algorithmic* state (bounds, residual store, max
vectors) and drive the scan, while the kernel owns the *representation* of
the per-dimension posting lists and of the per-query score table, so a
backend can lay both out however its hardware likes:

* the pure-Python reference backend (:mod:`repro.backends.reference`) keeps
  the original per-entry loops over :class:`~repro.indexes.posting.PostingList`
  ring buffers — simple, dependency-free, and the semantic ground truth;
* the NumPy backend (:mod:`repro.backends.numpy_backend`) stores posting
  lists as growable contiguous arrays and replaces the per-entry loops with
  vectorised array kernels.

Both backends must produce the same ``SimilarPair`` output pair for pair;
``tests/test_backends.py`` enforces this on every dataset profile.

A kernel instance is **per index**: it may keep cross-call state (the NumPy
backend interns vector ids into dense slots), so never share one kernel
between two indexes.  Obtain instances through
:func:`repro.backends.resolve_kernel`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.results import JoinStatistics, SimilarPair
    from repro.core.vector import SparseVector
    from repro.indexes.residual import ResidualEntry, ResidualIndex

__all__ = ["ScoreAccumulator", "SizeFilterMap", "SimilarityKernel"]


class ScoreAccumulator(ABC):
    """Per-query score table ``C`` filled in by the scan kernels.

    Create one per candidate-generation pass via
    :meth:`SimilarityKernel.new_accumulator`, feed it to the ``scan_*``
    kernels, then read the result back with :meth:`candidates`.
    """

    @abstractmethod
    def candidates(self) -> dict[int, float]:
        """Accumulated scores as ``{vector_id: partial_dot}``.

        Iteration order matches the reference backend: candidates appear in
        the order of their first successful accumulation.
        """

    @abstractmethod
    def arrivals(self) -> dict[int, float]:
        """Arrival timestamp of each candidate (streaming INV only)."""


class SizeFilterMap(ABC):
    """Per-index map ``vector_id → |x| · vm_x`` backing the sz1 size filter.

    The prefix-filter indexes maintain it alongside the residual store; the
    kernels read it (in bulk, for the vectorised backend) while scanning
    posting lists.  An absent id never fails the filter.
    """

    @abstractmethod
    def set(self, vector_id: int, value: float) -> None:
        """Record the size-filter value of a newly indexed vector."""

    @abstractmethod
    def discard(self, vector_id: int) -> None:
        """Forget an evicted vector (no-op when absent)."""

    @abstractmethod
    def get(self, vector_id: int) -> float | None:
        """Stored value or ``None`` when the id is unknown."""


class SimilarityKernel(ABC):
    """Backend-specific implementation of the join's three hot loops."""

    #: Registry name of the backend this kernel belongs to.
    name: str = "abstract"

    # -- storage factories ---------------------------------------------------

    @abstractmethod
    def new_posting_list(self) -> Any:
        """A posting list ``I_j`` in this backend's native layout.

        The returned object implements the interface of
        :class:`repro.indexes.posting.PostingList` (append / iterate /
        truncate / compact), so index maintenance and checkpointing code is
        backend-agnostic.
        """

    @abstractmethod
    def new_accumulator(self) -> ScoreAccumulator:
        """A fresh score table for one candidate-generation pass."""

    @abstractmethod
    def new_size_filter(self) -> SizeFilterMap:
        """A fresh sz1 size-filter map for one index."""

    # -- candidate generation ------------------------------------------------

    @abstractmethod
    def scan_inv_batch(self, plist: Any, value: float,
                       acc: ScoreAccumulator) -> int:
        """INV batch scan: exact accumulation, no filters.

        Adds ``value * entry.value`` to every posting's candidate and
        returns the number of entries traversed.
        """

    @abstractmethod
    def scan_inv_stream(self, plist: Any, value: float, cutoff: float,
                        acc: ScoreAccumulator) -> tuple[int, int]:
        """STR-INV scan with lazy time filtering on a time-ordered list.

        Accumulates over the postings with ``timestamp >= cutoff``, records
        candidate arrival times, truncates the expired head, and returns
        ``(entries_traversed, entries_removed)``.
        """

    @abstractmethod
    def scan_prefix_batch(self, plist: Any, value: float,
                          query_prefix_norm: float, admit_new: bool,
                          threshold: float, use_ap: bool, use_l2: bool,
                          sz1: float, size_filter: SizeFilterMap,
                          acc: ScoreAccumulator) -> int:
        """Batch prefix-filter scan (Algorithm 3 inner loop).

        Applies the remaining-score admission (``admit_new``), the sz1 size
        filter (when ``use_ap``) and the l2bound early pruning (when
        ``use_l2``).  Returns the number of entries traversed.
        """

    @abstractmethod
    def scan_prefix_stream(self, plist: Any, value: float,
                           query_prefix_norm: float, now: float,
                           cutoff: float, decay: float, rs1: float,
                           rs2: float, sz1: float, threshold: float,
                           use_ap: bool, use_l2: bool, time_ordered: bool,
                           size_filter: SizeFilterMap,
                           acc: ScoreAccumulator) -> tuple[int, int]:
        """Streaming prefix-filter scan (Algorithm 7 inner loop).

        Combines time filtering (backward truncation when ``time_ordered``,
        full compaction otherwise) with the decayed admission and pruning
        bounds.  Returns ``(entries_traversed, entries_removed)``.
        """

    # -- candidate verification ----------------------------------------------

    @abstractmethod
    def verify_batch(self, query: "SparseVector", candidates: dict[int, float],
                     residual: "ResidualIndex", threshold: float,
                     stats: "JoinStatistics") -> list[tuple["SparseVector", float]]:
        """Batch candidate verification (Algorithm 4).

        Applies the ``ps1``/``ds1``/``sz2`` bounds, finishes the dot product
        over the residual prefixes of the surviving candidates and returns
        ``(candidate vector, exact dot)`` for the true matches.
        """

    @abstractmethod
    def verify_stream(self, query: "SparseVector", candidates: dict[int, float],
                      residual: "ResidualIndex", threshold: float,
                      decay: float, now: float,
                      stats: "JoinStatistics") -> list["SimilarPair"]:
        """Streaming candidate verification (Algorithm 8).

        Same as :meth:`verify_batch` with the bounds and the final
        similarity damped by ``exp(-λ·Δt)``; returns the reportable
        :class:`~repro.core.results.SimilarPair` objects.
        """

    def begin_query(self, vector: "SparseVector") -> None:
        """Prepare per-query scratch state used by the dot-product kernels.

        Must be paired with :meth:`end_query`.  The reference backend needs
        no scratch state, so the default is a no-op.
        """

    def end_query(self, vector: "SparseVector") -> None:
        """Release the scratch state installed by :meth:`begin_query`."""

    @abstractmethod
    def residual_dot(self, query: "SparseVector",
                     entry: "ResidualEntry") -> float:
        """Finish the dot product over a candidate's residual prefix.

        Only valid between :meth:`begin_query` and :meth:`end_query` calls
        for ``query``.
        """

    @abstractmethod
    def dots_for(self, query: "SparseVector",
                 others: Sequence["SparseVector"]) -> list[float]:
        """Dot products of ``query`` against each vector in ``others``.

        Used by the brute-force and sliding-window baselines so that even
        the unindexed reference algorithms route through the kernel API.
        """
