"""Kernel interface shared by every compute backend.

The similarity-join hot loops — candidate accumulation over posting lists,
decay/time-filter application, and the verification dot products — are
factored out of the index classes into a :class:`SimilarityKernel`.  The
index classes own the *algorithmic* state (bounds, residual store, max
vectors) and drive the scan, while the kernel owns the *representation* of
the per-dimension posting lists and of the per-query score table, so a
backend can lay both out however its hardware likes:

* the pure-Python reference backend (:mod:`repro.backends.reference`) keeps
  the original per-entry loops over :class:`~repro.indexes.posting.PostingList`
  ring buffers — simple, dependency-free, and the semantic ground truth;
* the NumPy backend (:mod:`repro.backends.numpy_backend`) stores posting
  lists as growable contiguous arrays and replaces the per-entry loops with
  vectorised array kernels.

Candidates travel from the scan kernels to verification as an opaque
:class:`CandidateSet` produced by :meth:`ScoreAccumulator.finalize`, so a
backend can keep them in its native layout end to end: the reference
backend hands over its insertion-ordered score dictionary, the NumPy
backend a pair of ``(slots, partial_scores)`` arrays that never round-trip
through per-candidate Python objects.  ``(id, id, similarity)`` tuples are
only materialised for the pairs that survive verification.

Both backends must produce the same ``SimilarPair`` output pair for pair;
``tests/test_backends.py`` enforces this on every dataset profile.

A kernel instance is **per index**: it may keep cross-call state (the NumPy
backend interns vector ids into dense slots and mirrors per-candidate
verification metadata in slot-indexed arrays), so never share one kernel
between two indexes.  Obtain instances through
:func:`repro.backends.resolve_kernel`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.results import JoinStatistics, SimilarPair
    from repro.core.vector import SparseVector
    from repro.indexes.bounds import IndexingSplit
    from repro.indexes.maxvector import MaxVector
    from repro.indexes.residual import ResidualEntry, ResidualIndex

__all__ = ["CandidateSet", "ScoreAccumulator", "SegmentPartial",
           "SizeFilterMap", "SimilarityKernel"]


@dataclass
class SegmentPartial:
    """Partial accumulation of one query term's posting-list scan.

    The sharded join (:mod:`repro.shard`) splits candidate generation at
    exactly this boundary: a shard-local worker performs the *embarrassingly
    parallel* part of a term's scan — gathering the live postings, applying
    the time filter and precomputing the per-posting products — and the
    coordinator replays the *globally sequential* part (remaining-score
    admission, ``l2bound`` pruning, score accumulation) over the partials of
    every shard, in the exact order the single-process kernel would have
    used.  The arrays therefore stop **before global admission**: no entry
    has been filtered by ``rs1``/``rs2``, ``sz1`` or ``l2bound`` yet.

    Fields
    ------
    ``position``
        The query position this segment belongs to (global scan order is
        descending position for the prefix schemes, ascending for INV).
    ``value`` / ``query_prefix_norm``
        The query-side term weight ``y_j`` and prefix magnitude ``‖y'‖``
        the per-posting products were computed with.
    ``slots``
        ``int64`` array of candidate identifiers in scan order.  In the
        sharded engine these are the *coordinator's* interned slots (the
        coordinator assigns them at indexing time and ships them to the
        owning shard), so partials from different shards merge without an
        id translation step.
    ``contrib``
        ``float64`` array of ``x_j · y_j`` per live posting.
    ``tails``
        Decayed ``l2bound`` tails ``‖y'‖ · ‖x'_j‖ · e^{-λΔt}`` (``None``
        unless the ℓ₂ bounds are enabled).
    ``decay_factors``
        ``e^{-λΔt}`` per live posting (streaming scans only).
    ``timestamps``
        Arrival timestamps of the live postings (INV streaming only).
    ``min_ts`` / ``max_ts``
        Extreme live timestamps (``±inf`` when no posting survived the
        time filter) — the coordinator resolves the whole-segment
        admission tri-state from these exactly like the fused kernel.
    ``traversed`` / ``removed``
        The segment's *logical* operation counts, identical to what the
        single-process scan would have reported.
    """

    position: int
    value: float
    query_prefix_norm: float
    slots: Any
    contrib: Any
    tails: Any = None
    decay_factors: Any = None
    timestamps: Any = None
    min_ts: float = math.inf
    max_ts: float = -math.inf
    traversed: int = 0
    removed: int = 0

    def __len__(self) -> int:
        return len(self.slots)


class CandidateSet(ABC):
    """Finalised result of one candidate-generation pass.

    A backend-native, read-only view of the accumulated score table ``C``:
    the reference backend wraps its insertion-ordered dictionaries, the
    NumPy backend a pair of slot/score arrays.  The set must be consumed
    (verified) before the next candidate-generation pass on the same
    kernel begins — backends may reuse the underlying storage afterwards.

    Candidate order is the order of the first successful accumulation,
    identical across backends.
    """

    @abstractmethod
    def __len__(self) -> int:
        """Number of candidates that survived the scan filters."""

    def __bool__(self) -> bool:
        return len(self) > 0

    @abstractmethod
    def to_dict(self) -> dict[int, float]:
        """Materialise ``{vector_id: partial_dot}`` in candidate order.

        A compatibility/debugging view: the hot verification paths consume
        the backend-native layout directly and never call this.
        """

    @abstractmethod
    def arrivals(self) -> dict[int, float]:
        """Arrival timestamp of each candidate (streaming INV only)."""

    @abstractmethod
    def above(self, threshold: float) -> list[tuple[int, float]]:
        """``(vector_id, score)`` of candidates with ``score >= threshold``.

        Candidate order is preserved.  Used by the batch INV index, whose
        scan already accumulates the exact dot product.
        """


class ScoreAccumulator(ABC):
    """Per-query score table ``C`` filled in by the scan kernels.

    Create one per candidate-generation pass via
    :meth:`SimilarityKernel.new_accumulator`, feed it to the ``scan_*``
    kernels, then hand the result to verification with :meth:`finalize`.
    """

    @abstractmethod
    def finalize(self) -> CandidateSet:
        """Freeze the accumulated scores into a :class:`CandidateSet`.

        Must be called exactly once, after the last ``scan_*`` call of the
        pass; the accumulator must not be fed to a scan kernel afterwards.
        """


class SizeFilterMap(ABC):
    """Per-index map ``vector_id → |x| · vm_x`` backing the sz1 size filter.

    The prefix-filter indexes maintain it alongside the residual store; the
    kernels read it (in bulk, for the vectorised backend) while scanning
    posting lists.  An absent id never fails the filter.
    """

    @abstractmethod
    def set(self, vector_id: int, value: float) -> None:
        """Record the size-filter value of a newly indexed vector."""

    @abstractmethod
    def discard(self, vector_id: int) -> None:
        """Forget an evicted vector (no-op when absent)."""

    @abstractmethod
    def get(self, vector_id: int) -> float | None:
        """Stored value or ``None`` when the id is unknown."""


class SimilarityKernel(ABC):
    """Backend-specific implementation of the join's three hot loops."""

    #: Registry name of the backend this kernel belongs to.
    name: str = "abstract"

    #: One-line human description shown by ``sssj backends``.
    description: str = ""

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can actually run on this machine.

        A backend class may be importable while its accelerator is not
        (the compiled tier imports fine without numba); the registry
        only hands out classes whose ``available()`` is true, and the
        CLI probe reports :meth:`availability_reason` for the rest.
        """
        return True

    @classmethod
    def availability_reason(cls) -> str | None:
        """Why :meth:`available` is false (``None`` when available)."""
        return None

    def warmup(self) -> float:
        """Prime lazily initialised hot-loop machinery; return the cost.

        Backends with one-time setup that would otherwise pollute the
        first query's timings — the compiled tier's JIT compilation —
        perform it here and return the seconds spent, so drivers
        (profiling wrapper, benchmark gates, shard-worker factory) can
        report it separately.  Idempotent; the default is a no-op.
        """
        return 0.0

    # -- approximate sketch prefilter (:mod:`repro.approx`) ------------------
    #
    # When configured, the kernel keeps one banding signature per indexed
    # vector and rejects candidates whose signature shares no band with the
    # query's *before* score accumulation.  The filter only ever discards
    # candidates — verification stays exact — so enabling it can lose pairs
    # but never invent them; while unconfigured every path below is inert
    # and the join is bitwise-identical to an exact run.

    #: Active :class:`repro.approx.SignatureScheme`, ``None`` in exact mode.
    _sketch_scheme: Any = None
    #: Current query's signature, installed per fused ``scan_query_*`` call.
    _sketch_query: Any = None

    def configure_approx(self, config: Any) -> None:
        """Enable the sketch prefilter described by ``config``.

        ``config`` is a :class:`repro.approx.ApproxConfig`.  Must be called
        before the first vector is indexed: signatures are computed in the
        ``note_vector_indexed`` hook, so vectors indexed earlier would stay
        unsketched and always pass the filter.
        """
        from repro.approx import SignatureScheme

        self._sketch_scheme = SignatureScheme(config)
        self._sketch_sigs: dict[int, tuple[int, ...]] = {}
        self._sketch_keys: dict[int, tuple[int, ...]] = {}
        self._sketch_query = None
        self._sketch_query_keys: tuple[int, ...] | None = None
        self._sketch_query_vector: Any = None
        self._sketch_pass: set[int] = set()
        self._sketch_fail: set[int] = set()

    def _install_query_sketch(self, vector: "SparseVector") -> None:
        """Compute the signature of the query one fused scan is about to run.

        The vector itself is remembered so the ``note_vector_indexed`` hook
        — which in the streaming frameworks fires for the very same vector
        right after its scan — can reuse the signature instead of hashing
        twice.
        """
        if self._sketch_scheme is None:
            return
        self._sketch_query = self._sketch_scheme.signature(vector)
        self._sketch_query_keys = self._sketch_scheme.band_hash_keys(
            self._sketch_query)
        self._sketch_query_vector = vector
        self._sketch_pass.clear()
        self._sketch_fail.clear()

    def _query_sketch_for(self, vector: "SparseVector") -> tuple[Any, Any]:
        """``(signature, band keys)`` of ``vector``, reusing the query's."""
        if vector is self._sketch_query_vector:
            return self._sketch_query, self._sketch_query_keys
        signature = self._sketch_scheme.signature(vector)
        return signature, self._sketch_scheme.band_hash_keys(signature)

    def _sketch_admits(self, acc: "ScoreAccumulator", candidate_id: int) -> bool:
        """Per-posting banding check; the decision is memoised per query.

        Counts *every* rejected posting occurrence in ``acc.sketch_pruned``
        (the vectorised backends count dropped postings wholesale, so the
        per-entry backends must charge repeat visits of a rejected
        candidate too).  A missing signature admits the candidate
        (defensive: postings are only appended after
        ``note_vector_indexed`` runs, so live candidates always carry one).
        """
        if candidate_id in self._sketch_pass:
            return True
        if candidate_id in self._sketch_fail:
            acc.sketch_pruned += 1  # type: ignore[attr-defined]
            return False
        keys = self._sketch_keys.get(candidate_id)
        if keys is None or any(
                query_key == key
                for query_key, key in zip(self._sketch_query_keys, keys)):
            self._sketch_pass.add(candidate_id)
            return True
        self._sketch_fail.add(candidate_id)
        acc.sketch_pruned += 1  # type: ignore[attr-defined]
        return False

    # -- storage factories ---------------------------------------------------

    @abstractmethod
    def new_posting_list(self) -> Any:
        """A posting list ``I_j`` in this backend's native layout.

        The returned object implements the interface of
        :class:`repro.indexes.posting.PostingList` (append / iterate /
        truncate / compact), so index maintenance and checkpointing code is
        backend-agnostic.
        """

    @abstractmethod
    def new_accumulator(self) -> ScoreAccumulator:
        """A fresh score table for one candidate-generation pass."""

    @abstractmethod
    def new_size_filter(self) -> SizeFilterMap:
        """A fresh sz1 size-filter map for one index."""

    # -- candidate metadata --------------------------------------------------
    #
    # The prefix-filter indexes notify the kernel whenever a vector enters,
    # changes in, or leaves the residual/Q store, so that a backend may
    # mirror the per-candidate verification metadata (pscore, residual
    # statistics, timestamp) in its native layout.  The reference backend
    # reads the ResidualIndex directly and ignores these hooks.

    def note_vector_indexed(self, entry: "ResidualEntry") -> None:
        """A vector was added to the residual/Q store."""
        if self._sketch_scheme is not None:
            signature, keys = self._query_sketch_for(entry.vector)
            self._sketch_sigs[entry.vector.vector_id] = signature
            self._sketch_keys[entry.vector.vector_id] = keys

    def note_vector_updated(self, entry: "ResidualEntry") -> None:
        """A stored vector's residual prefix or pscore changed (re-indexing).

        Sketch signatures depend only on the full vector, which re-indexing
        never changes, so the sketch state needs no update here.
        """

    def note_vector_evicted(self, vector_id: int) -> None:
        """A stored vector fell behind the time horizon and was evicted."""
        if self._sketch_scheme is not None:
            self._sketch_sigs.pop(vector_id, None)
            self._sketch_keys.pop(vector_id, None)

    # -- index construction --------------------------------------------------

    def indexing_split(self, vector: "SparseVector", threshold: float, *,
                       max_vector: "MaxVector | None", use_ap: bool,
                       use_l2: bool, limit: int | None = None) -> "IndexingSplit":
        """Index-construction bound scan of Algorithm 2 (see
        :func:`repro.indexes.bounds.compute_indexing_split`).

        Exposed on the kernel because the scan is a hot loop during both
        indexing and re-indexing; backends may vectorise it, but must
        return bit-for-bit the same ``(boundary, pscore)`` as the
        reference implementation.
        """
        from repro.indexes.bounds import compute_indexing_split

        return compute_indexing_split(vector, threshold, max_vector=max_vector,
                                      use_ap=use_ap, use_l2=use_l2, limit=limit)

    def index_vector_postings(self, index: Any, vector: "SparseVector",
                              start: int = 0, end: int | None = None) -> int:
        """Append ``vector``'s coordinates ``[start, end)`` to the inverted index.

        One posting per coordinate, carrying the value, the strict-prefix
        norm and the vector's timestamp.  Returns the number of postings
        appended.  Backends may specialise this (the NumPy backend interns
        the vector id once and writes the four posting fields straight into
        its arrays); the default builds :class:`~repro.indexes.posting.PostingEntry`
        objects exactly like the original index-construction loops.
        """
        from repro.indexes.posting import PostingEntry

        vector_id = vector.vector_id
        timestamp = vector.timestamp
        dims = vector.dims
        values = vector.values
        stop = len(dims) if end is None else end
        for position in range(start, stop):
            index.add(dims[position], PostingEntry(
                vector_id=vector_id,
                value=values[position],
                prefix_norm=vector.prefix_norm_before(position),
                timestamp=timestamp,
            ))
        return stop - start

    # -- candidate generation ------------------------------------------------

    @abstractmethod
    def scan_inv_batch(self, plist: Any, value: float,
                       acc: ScoreAccumulator) -> int:
        """INV batch scan: exact accumulation, no filters.

        Adds ``value * entry.value`` to every posting's candidate and
        returns the number of entries traversed.
        """

    @abstractmethod
    def scan_inv_stream(self, plist: Any, value: float, cutoff: float,
                        acc: ScoreAccumulator) -> tuple[int, int]:
        """STR-INV scan with lazy time filtering on a time-ordered list.

        Accumulates over the postings with ``timestamp >= cutoff``, records
        candidate arrival times, truncates the expired head, and returns
        ``(entries_traversed, entries_removed)``.
        """

    @abstractmethod
    def scan_prefix_batch(self, plist: Any, value: float,
                          query_prefix_norm: float, admit_new: bool,
                          threshold: float, use_ap: bool, use_l2: bool,
                          sz1: float, size_filter: SizeFilterMap,
                          acc: ScoreAccumulator) -> int:
        """Batch prefix-filter scan (Algorithm 3 inner loop).

        Applies the remaining-score admission (``admit_new``), the sz1 size
        filter (when ``use_ap``) and the l2bound early pruning (when
        ``use_l2``).  Returns the number of entries traversed.
        """

    @abstractmethod
    def scan_prefix_stream(self, plist: Any, value: float,
                           query_prefix_norm: float, now: float,
                           cutoff: float, decay: float, rs1: float,
                           rs2: float, sz1: float, threshold: float,
                           use_ap: bool, use_l2: bool, time_ordered: bool,
                           size_filter: SizeFilterMap,
                           acc: ScoreAccumulator) -> tuple[int, int]:
        """Streaming prefix-filter scan (Algorithm 7 inner loop).

        Combines time filtering (backward truncation when ``time_ordered``,
        masked/amortised compaction otherwise) with the decayed admission
        and pruning bounds.  Returns ``(entries_traversed, entries_removed)``
        where both counts are *logical*: a backend may defer the physical
        removal of expired postings, but must report them exactly once.
        """

    # -- fused whole-query candidate generation ------------------------------
    #
    # The index drivers issue one ``scan_query_*`` call per query instead
    # of one ``scan_*`` call per query term.  The default implementations
    # below are the verbatim per-term driver loops (bound maintenance
    # across query positions included), so backends that only implement
    # the per-term kernels — the reference backend among them — behave
    # exactly as before; a backend may override them to fuse the whole
    # query into one pass over its storage (see the NumPy backend's
    # posting arena).  Overrides must be observationally identical to
    # these loops: same candidates in the same order, same operation
    # counts, bit-for-bit equal accumulated scores.

    def scan_query_batch(self, vector: "SparseVector", index: Any, *,
                         threshold: float, rs1: float,
                         maxima: Sequence[float] | None, sz1: float,
                         use_ap: bool, use_l2: bool,
                         size_filter: SizeFilterMap,
                         acc: ScoreAccumulator) -> int:
        """Batch prefix-filter candidate generation (Algorithm 3).

        Scans the query's dimensions from the highest position down,
        maintaining the remaining-score bounds ``rs1`` (AP, seeded by the
        caller with ``m̂ · x`` and decremented with ``maxima``, the
        per-position maxima of the indexed data) and ``rs2`` (ℓ₂).
        Returns the number of posting entries traversed.
        """
        self._install_query_sketch(vector)
        dims = vector.dims
        values = vector.values
        rst = vector.norm * vector.norm
        rs2 = math.sqrt(rst) if use_l2 else math.inf
        traversed = 0
        for position in range(len(dims) - 1, -1, -1):
            value = values[position]
            posting_list = index.get(dims[position])
            if posting_list is not None:
                admit_new = min(rs1, rs2) >= threshold
                traversed += self.scan_prefix_batch(
                    posting_list, value, vector.prefix_norm_before(position),
                    admit_new, threshold, use_ap, use_l2,
                    sz1, size_filter, acc,
                )
            if use_ap:
                rs1 -= value * maxima[position]  # type: ignore[index]
            rst -= value * value
            if use_l2:
                rs2 = math.sqrt(max(rst, 0.0))
        return traversed

    def scan_query_stream(self, vector: "SparseVector", index: Any, *,
                          now: float, cutoff: float, decay: float,
                          rs1: float,
                          decayed_maxima: Sequence[float] | None,
                          sz1: float, threshold: float,
                          use_ap: bool, use_l2: bool, time_ordered: bool,
                          size_filter: SizeFilterMap,
                          acc: ScoreAccumulator) -> tuple[int, int]:
        """Streaming prefix-filter candidate generation (Algorithm 7).

        Like :meth:`scan_query_batch` with time filtering and decayed
        bounds; ``decayed_maxima`` holds ``m̂^λ`` evaluated at ``now`` for
        each query position (when ``use_ap``).  Returns
        ``(entries_traversed, entries_removed)`` totals across the query's
        posting lists.
        """
        self._install_query_sketch(vector)
        dims = vector.dims
        values = vector.values
        prefix_norms = vector._prefix_norms
        rst = vector.norm * vector.norm
        rs2 = math.sqrt(rst) if use_l2 else math.inf
        index_get = index.get
        scan = self.scan_prefix_stream
        traversed = 0
        removed = 0
        for position in range(len(dims) - 1, -1, -1):
            value = values[position]
            posting_list = index_get(dims[position])
            if posting_list is not None and len(posting_list):
                scanned, pruned = scan(
                    posting_list, value, prefix_norms[position],
                    now, cutoff, decay, rs1, rs2, sz1, threshold,
                    use_ap, use_l2, time_ordered, size_filter, acc,
                )
                traversed += scanned
                removed += pruned
            if use_ap:
                rs1 -= value * decayed_maxima[position]  # type: ignore[index]
            rst -= value * value
            if use_l2:
                rs2 = math.sqrt(max(rst, 0.0))
        return traversed, removed

    def scan_query_inv_batch(self, vector: "SparseVector", index: Any,
                             acc: ScoreAccumulator) -> int:
        """Batch INV candidate generation: exact accumulation, no filters."""
        traversed = 0
        for dim, value in vector:
            posting_list = index.get(dim)
            if posting_list is None:
                continue
            traversed += self.scan_inv_batch(posting_list, value, acc)
        return traversed

    def scan_query_inv_stream(self, vector: "SparseVector", index: Any,
                              cutoff: float,
                              acc: ScoreAccumulator) -> tuple[int, int]:
        """STR-INV candidate generation with lazy time filtering.

        Returns ``(entries_traversed, entries_removed)`` totals.
        """
        traversed = 0
        removed = 0
        for dim, value in vector:
            posting_list = index.get(dim)
            if posting_list is None:
                continue
            scanned, pruned = self.scan_inv_stream(posting_list, value,
                                                   cutoff, acc)
            traversed += scanned
            removed += pruned
        return traversed, removed

    # -- partial accumulation (sharded candidate generation) ------------------
    #
    # The sharded join splits each streaming scan into a per-shard *gather*
    # (time filtering + per-posting products, no global admission) and a
    # coordinator-side *replay* of the admission/pruning/accumulation
    # sequence.  ``gather_*_partials`` is the worker half; it must report
    # exactly the logical ``traversed``/``removed`` counts the fused
    # single-process scan would, and leave the posting lists in an
    # equivalent logical state.  The defaults below are per-entry loops
    # over the generic posting-list interface (matching the reference
    # backend's eager-compaction bookkeeping); the NumPy backend overrides
    # them with vectorised arena gathers.  The replay half lives on the
    # NumPy kernel (``apply_scan_partials``/``apply_inv_partials``), which
    # the coordinator requires.

    def begin_maintenance_cycle(self) -> None:
        """Start one query's worth of amortised index maintenance.

        Called once per scan step by the sharded workers (the single-process
        drivers reach the same code through ``new_accumulator``).  Backends
        with deferred physical maintenance (the NumPy arena) replenish
        their per-query compaction budget here; the default is a no-op.
        """

    def gather_scan_partials(self, segments: Sequence[tuple[int, float, float, Any]],
                             *, now: float, cutoff: float, decay: float,
                             use_l2: bool, time_ordered: bool,
                             ) -> tuple[list[SegmentPartial], int, int]:
        """Gather streaming prefix-scan partials for ``segments``.

        ``segments`` holds ``(position, value, query_prefix_norm,
        posting_list)`` for the query terms owned by this worker, in scan
        order (descending position) and restricted to non-empty lists.
        Returns ``(partials, entries_traversed, entries_removed)``.
        """
        import numpy as np

        partials: list[SegmentPartial] = []
        traversed_total = 0
        removed_total = 0
        for position, value, query_prefix_norm, plist in segments:
            live: list[Any] = []
            if time_ordered:
                alive = 0
                for entry in plist.iter_newest_first():
                    if entry.timestamp < cutoff:
                        break
                    alive += 1
                    live.append(entry)
                removed = plist.keep_newest(alive)
                traversed = alive
            else:
                traversed = 0
                kept = []
                for entry in plist:
                    traversed += 1
                    if entry.timestamp < cutoff:
                        continue
                    kept.append(entry)
                    live.append(entry)
                removed = traversed - len(kept)
                if removed:
                    plist.replace_all_entries(kept)
            timestamps = np.asarray([entry.timestamp for entry in live],
                                    dtype=np.float64)
            contrib = value * np.asarray([entry.value for entry in live],
                                         dtype=np.float64)
            decay_factors = np.exp(-decay * (now - timestamps))
            if use_l2:
                tails = query_prefix_norm * np.asarray(
                    [entry.prefix_norm for entry in live], dtype=np.float64)
                tails *= decay_factors
            else:
                tails = None
            partials.append(SegmentPartial(
                position=position, value=value,
                query_prefix_norm=query_prefix_norm,
                slots=np.asarray([entry.vector_id for entry in live],
                                 dtype=np.int64),
                contrib=contrib, tails=tails, decay_factors=decay_factors,
                min_ts=float(timestamps.min()) if len(live) else math.inf,
                max_ts=float(timestamps.max()) if len(live) else -math.inf,
                traversed=traversed, removed=removed,
            ))
            traversed_total += traversed
            removed_total += removed
        return partials, traversed_total, removed_total

    def gather_inv_partials(self, segments: Sequence[tuple[int, float, Any]],
                            *, cutoff: float,
                            ) -> tuple[list[SegmentPartial], int, int]:
        """Gather STR-INV scan partials (newest-first, lazy head truncation).

        ``segments`` holds ``(position, value, posting_list)`` in query
        order for the non-empty lists this worker owns.  Returns
        ``(partials, entries_traversed, entries_removed)``.
        """
        import numpy as np

        partials: list[SegmentPartial] = []
        traversed_total = 0
        removed_total = 0
        for position, value, plist in segments:
            live: list[Any] = []
            for entry in plist.iter_newest_first():
                if entry.timestamp < cutoff:
                    break
                live.append(entry)
            removed = plist.keep_newest(len(live))
            timestamps = np.asarray([entry.timestamp for entry in live],
                                    dtype=np.float64)
            partials.append(SegmentPartial(
                position=position, value=value, query_prefix_norm=0.0,
                slots=np.asarray([entry.vector_id for entry in live],
                                 dtype=np.int64),
                contrib=value * np.asarray([entry.value for entry in live],
                                           dtype=np.float64),
                timestamps=timestamps,
                min_ts=float(timestamps.min()) if len(live) else math.inf,
                max_ts=float(timestamps.max()) if len(live) else -math.inf,
                traversed=len(live), removed=removed,
            ))
            traversed_total += len(live)
            removed_total += removed
        return partials, traversed_total, removed_total

    # -- candidate verification ----------------------------------------------

    @abstractmethod
    def verify_batch(self, query: "SparseVector", candidates: CandidateSet,
                     residual: "ResidualIndex", threshold: float,
                     stats: "JoinStatistics") -> list[tuple["SparseVector", float]]:
        """Batch candidate verification (Algorithm 4).

        Applies the ``ps1``/``ds1``/``sz2`` bounds, finishes the dot product
        over the residual prefixes of the surviving candidates and returns
        ``(candidate vector, exact dot)`` for the true matches.
        """

    @abstractmethod
    def verify_stream(self, query: "SparseVector", candidates: CandidateSet,
                      residual: "ResidualIndex", threshold: float,
                      decay: float, now: float,
                      stats: "JoinStatistics") -> list["SimilarPair"]:
        """Streaming candidate verification (Algorithm 8).

        Same as :meth:`verify_batch` with the bounds and the final
        similarity damped by ``exp(-λ·Δt)``; returns the reportable
        :class:`~repro.core.results.SimilarPair` objects.
        """

    @abstractmethod
    def verify_inv_stream(self, query: "SparseVector", candidates: CandidateSet,
                          threshold: float, decay: float, now: float,
                          stats: "JoinStatistics") -> list["SimilarPair"]:
        """STR-INV candidate verification: decay + threshold on exact dots.

        The INV scan already accumulates the exact dot product, so this
        only applies the time decay (using each candidate's arrival time)
        and the threshold, counting every candidate as a full similarity.
        """

    def begin_query(self, vector: "SparseVector") -> None:
        """Prepare per-query scratch state used by the dot-product kernels.

        Must be paired with :meth:`end_query`.  The reference backend needs
        no scratch state, so the default is a no-op.
        """

    def end_query(self, vector: "SparseVector") -> None:
        """Release the scratch state installed by :meth:`begin_query`."""

    @abstractmethod
    def residual_dot(self, query: "SparseVector",
                     entry: "ResidualEntry") -> float:
        """Finish the dot product over a candidate's residual prefix.

        Only valid between :meth:`begin_query` and :meth:`end_query` calls
        for ``query``.
        """

    @abstractmethod
    def dots_for(self, query: "SparseVector",
                 others: Sequence["SparseVector"]) -> list[float]:
        """Dot products of ``query`` against each vector in ``others``.

        Used by the brute-force and sliding-window baselines so that even
        the unindexed reference algorithms route through the kernel API.
        """
