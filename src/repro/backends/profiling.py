"""Stage-level profiling wrapper around any compute kernel.

:class:`ProfilingKernel` decorates a :class:`~repro.backends.base.SimilarityKernel`
and accumulates wall-clock time per pipeline stage:

``scan``
    The candidate-generation posting-list scans (accumulation, admission
    bounds, time filtering — including any amortised compaction a scan
    triggers).
``filter``
    Freezing the accumulated scores into a
    :class:`~repro.backends.base.CandidateSet` (dedup/ordering work).
``verify``
    Candidate verification: the ``ps1``/``ds1``/``sz2`` bound checks and
    the residual dot products.
``maintenance``
    Index construction and upkeep outside the scans: the indexing-split
    bound scan, bulk posting appends, and the residual-metadata hooks.

The wrapper is a drop-in kernel — pass it anywhere a ``backend`` is
accepted (``resolve_kernel`` takes instances) — and powers the
``sssj profile`` CLI subcommand.  Timing uses ``time.perf_counter`` around
each kernel call, so per-call overhead is a few hundred nanoseconds; the
relative breakdown is what matters.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import Any

from repro import obs
from repro.backends.base import CandidateSet, ScoreAccumulator, SimilarityKernel

__all__ = ["ProfilingKernel", "STAGES"]

#: Stage names in reporting order.
STAGES = ("scan", "filter", "verify", "maintenance")


def _collect_stages(kernel: "ProfilingKernel") -> None:
    """Scrape-time collector: stage timings onto the metrics registry."""
    registry = obs.get_registry()
    seconds = registry.counter(
        "sssj_stage_seconds_total",
        "Wall-clock seconds spent per pipeline stage.",
        ("stage", "backend"))
    calls = registry.counter(
        "sssj_stage_calls_total",
        "Kernel calls per pipeline stage.",
        ("stage", "backend"))
    tracker = kernel._obs_tracker
    for stage in STAGES:
        tracker.export(seconds.labels(stage=stage, backend=kernel.name),
                       ("seconds", stage), kernel.stage_seconds[stage])
        tracker.export(calls.labels(stage=stage, backend=kernel.name),
                       ("calls", stage), kernel.stage_calls[stage])


class _TimedAccumulator(ScoreAccumulator):
    """Accumulator proxy that charges ``finalize`` to the filter stage."""

    __slots__ = ("_inner", "_profile")

    def __init__(self, inner: ScoreAccumulator, profile: "ProfilingKernel") -> None:
        self._inner = inner
        self._profile = profile

    def finalize(self) -> CandidateSet:
        start = time.perf_counter()
        result = self._inner.finalize()
        self._profile._charge("filter", time.perf_counter() - start)
        return result

    def __getattr__(self, name: str) -> Any:
        # Scan kernels reach into backend-specific accumulator state
        # (scores/pruned dicts, touched-slot lists); forward transparently.
        return getattr(self._inner, name)


class ProfilingKernel(SimilarityKernel):
    """Delegating kernel that accumulates per-stage wall-clock time."""

    def __init__(self, inner: SimilarityKernel) -> None:
        self._inner = inner
        self.name = f"{inner.name}+profile"
        self.stage_seconds: dict[str, float] = {stage: 0.0 for stage in STAGES}
        self.stage_calls: dict[str, int] = {stage: 0 for stage in STAGES}
        # Stage totals also feed the unified metrics registry; the
        # collector runs only at scrape time, so the per-call hot path
        # stays a plain dict add.
        self._obs_tracker = obs.DeltaTracker()
        if obs.enabled():
            obs.get_registry().add_collector(_collect_stages, owner=self)
        # Warm the wrapped kernel now so a compiled backend's one-time JIT
        # cost lands here, not inside the first scan — the breakdown would
        # otherwise charge seconds of compilation to the "scan" stage.
        self.warmup_seconds = float(inner.warmup())

    def warmup(self) -> float:
        return self._inner.warmup()

    # -- reporting -----------------------------------------------------------

    def _charge(self, stage: str, elapsed: float) -> None:
        self.stage_seconds[stage] += elapsed
        self.stage_calls[stage] += 1

    def report_rows(self, total_elapsed: float) -> list[dict[str, Any]]:
        """Table rows of the breakdown, with the unattributed remainder."""
        rows = []
        attributed = 0.0
        for stage in STAGES:
            seconds = self.stage_seconds[stage]
            attributed += seconds
            rows.append({
                "stage": stage,
                "seconds": round(seconds, 4),
                "share": f"{seconds / total_elapsed:.1%}" if total_elapsed else "-",
                "calls": self.stage_calls[stage],
            })
        other = max(total_elapsed - attributed, 0.0)
        rows.append({
            "stage": "other (driver)",
            "seconds": round(other, 4),
            "share": f"{other / total_elapsed:.1%}" if total_elapsed else "-",
            "calls": "",
        })
        return rows

    # -- timed delegation ----------------------------------------------------

    def _timed(self, stage: str, method, *args, **kwargs):
        start = time.perf_counter()
        result = method(*args, **kwargs)
        self._charge(stage, time.perf_counter() - start)
        return result

    def configure_approx(self, config: Any) -> None:
        # Untimed: one-off setup, not a pipeline stage.
        self._inner.configure_approx(config)

    def new_posting_list(self) -> Any:
        return self._inner.new_posting_list()

    def new_accumulator(self) -> ScoreAccumulator:
        return _TimedAccumulator(self._inner.new_accumulator(), self)

    def new_size_filter(self):
        return self._inner.new_size_filter()

    def note_vector_indexed(self, entry) -> None:
        self._timed("maintenance", self._inner.note_vector_indexed, entry)

    def note_vector_updated(self, entry) -> None:
        self._timed("maintenance", self._inner.note_vector_updated, entry)

    def note_vector_evicted(self, vector_id: int) -> None:
        self._timed("maintenance", self._inner.note_vector_evicted, vector_id)

    def indexing_split(self, vector, threshold, *, max_vector, use_ap,
                       use_l2, limit=None):
        return self._timed("maintenance", self._inner.indexing_split,
                           vector, threshold, max_vector=max_vector,
                           use_ap=use_ap, use_l2=use_l2, limit=limit)

    def index_vector_postings(self, index, vector, start=0, end=None) -> int:
        return self._timed("maintenance", self._inner.index_vector_postings,
                           index, vector, start, end)

    def scan_inv_batch(self, plist, value, acc) -> int:
        return self._timed("scan", self._inner.scan_inv_batch,
                           plist, value, self._unwrap(acc))

    def scan_inv_stream(self, plist, value, cutoff, acc):
        return self._timed("scan", self._inner.scan_inv_stream,
                           plist, value, cutoff, self._unwrap(acc))

    def scan_prefix_batch(self, plist, value, query_prefix_norm, admit_new,
                          threshold, use_ap, use_l2, sz1, size_filter, acc) -> int:
        return self._timed("scan", self._inner.scan_prefix_batch,
                           plist, value, query_prefix_norm, admit_new,
                           threshold, use_ap, use_l2, sz1, size_filter,
                           self._unwrap(acc))

    def scan_prefix_stream(self, plist, value, query_prefix_norm, now,
                           cutoff, decay, rs1, rs2, sz1, threshold, use_ap,
                           use_l2, time_ordered, size_filter, acc):
        return self._timed("scan", self._inner.scan_prefix_stream,
                           plist, value, query_prefix_norm, now, cutoff,
                           decay, rs1, rs2, sz1, threshold, use_ap, use_l2,
                           time_ordered, size_filter, self._unwrap(acc))

    def scan_query_batch(self, vector, index, *, threshold, rs1, maxima,
                         sz1, use_ap, use_l2, size_filter, acc) -> int:
        return self._timed("scan", self._inner.scan_query_batch,
                           vector, index, threshold=threshold, rs1=rs1,
                           maxima=maxima, sz1=sz1, use_ap=use_ap,
                           use_l2=use_l2, size_filter=size_filter,
                           acc=self._unwrap(acc))

    def scan_query_stream(self, vector, index, *, now, cutoff, decay, rs1,
                          decayed_maxima, sz1, threshold, use_ap, use_l2,
                          time_ordered, size_filter, acc):
        return self._timed("scan", self._inner.scan_query_stream,
                           vector, index, now=now, cutoff=cutoff,
                           decay=decay, rs1=rs1,
                           decayed_maxima=decayed_maxima, sz1=sz1,
                           threshold=threshold, use_ap=use_ap, use_l2=use_l2,
                           time_ordered=time_ordered,
                           size_filter=size_filter, acc=self._unwrap(acc))

    def scan_query_inv_batch(self, vector, index, acc) -> int:
        return self._timed("scan", self._inner.scan_query_inv_batch,
                           vector, index, self._unwrap(acc))

    def scan_query_inv_stream(self, vector, index, cutoff, acc):
        return self._timed("scan", self._inner.scan_query_inv_stream,
                           vector, index, cutoff, self._unwrap(acc))

    def verify_batch(self, query, candidates, residual, threshold, stats):
        return self._timed("verify", self._inner.verify_batch,
                           query, candidates, residual, threshold, stats)

    def verify_stream(self, query, candidates, residual, threshold, decay,
                      now, stats):
        return self._timed("verify", self._inner.verify_stream,
                           query, candidates, residual, threshold, decay,
                           now, stats)

    def verify_inv_stream(self, query, candidates, threshold, decay, now,
                          stats):
        return self._timed("verify", self._inner.verify_inv_stream,
                           query, candidates, threshold, decay, now, stats)

    def begin_query(self, vector) -> None:
        self._inner.begin_query(vector)

    def end_query(self, vector) -> None:
        self._inner.end_query(vector)

    def residual_dot(self, query, entry) -> float:
        return self._inner.residual_dot(query, entry)

    def dots_for(self, query, others: Sequence) -> list[float]:
        return self._inner.dots_for(query, others)

    @staticmethod
    def _unwrap(acc: ScoreAccumulator) -> ScoreAccumulator:
        return acc._inner if isinstance(acc, _TimedAccumulator) else acc
