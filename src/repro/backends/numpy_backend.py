"""NumPy-vectorised compute backend.

Posting lists live in a shared **posting arena**
(:mod:`repro.backends.arena`): one set of growable contiguous arrays —
vector-id slots, weights ``x_j``, prefix magnitudes ``‖x'_j‖`` and
timestamps ``t(x)`` — spanning *every* dimension, with a per-dimension
extent table.  The three hot loops then become array kernels:

* **candidate accumulation** — the fused ``scan_query_*`` kernels gather
  every matched dimension's live range out of the arena in one pass and
  accumulate the whole query's candidates with a handful of array
  operations, instead of one Python→NumPy round trip per query term (the
  per-term ``scan_*`` kernels remain as the building blocks of the
  fallback path and of other backends),
* **decay and time filtering** — head truncation for time-ordered lists;
  unordered lists are filtered by a boolean *expiry mask* whose physical
  compaction is amortised (see below),
* **verification** — one fused masked pass over slot-indexed metadata
  arrays evaluates the ``ps1``/``ds1``/``sz2`` bounds for every candidate
  at once; only the survivors finish their dot product over the residual
  prefix (a vectorised gather-multiply whose final reduction stays
  sequential so the result is bit-for-bit identical to the reference
  backend).

Fused multi-term scans
----------------------
``scan_query_stream``/``scan_query_batch`` (and the INV twins) exploit
two structural facts to stay *observationally identical* to the reference
backend's per-entry loops while processing the whole query at once:

* a vector contributes at most one posting per dimension and all its
  postings carry the same timestamp, so the remaining-score admission
  ``min(rs1, rs2·e^{-λΔt}) ≥ θ`` is monotone across the scan — a
  candidate is admitted if and only if its *first* appearance passes;
* scores and the ``l2bound`` prune decisions only couple postings of the
  *same* candidate, so after a stable sort by slot the scan is replayed
  in **rounds over the appearance rank**: round ``r`` processes every
  candidate's ``r``-th posting with one gather/add/compare/scatter.
  Within a round each slot appears exactly once, and the rounds run in
  ascending rank order, so every partial sum is accumulated in exactly
  the reference order (bit-for-bit).

The number of rounds equals the largest number of query terms a single
candidate shares with the query — typically a small fraction of the
number of terms — and all per-entry work (decay, bound tails, admission)
is vectorised once over the whole gather.

Candidates never round-trip through ``dict[int, float]``: the scan kernels
accumulate into epoch-stamped dense per-slot arrays, :class:`NumpyAccumulator`
freezes them into a :class:`NumpyCandidateSet` — a ``(slots, scores)`` array
pair — and the fused verification consumes that directly.  ``(id, id, sim)``
tuples are materialised only for the pairs that survive.

Cross-query candidate state lives in dense per-vector arrays indexed by an
interned *slot* (assigned on first appearance of a vector id), stamped with
a per-query epoch so no per-query allocation or clearing is needed.  The
same slots index the verification-metadata mirrors (``pscore``, residual
statistics, timestamps) kept in sync by the ``note_vector_*`` hooks.
Memory therefore scales with the number of distinct vectors indexed, not
with the magnitude of their ids.

Amortised expiry compaction
---------------------------
Unordered posting lists (STR-L2AP after re-indexing) cannot be truncated
from the head; eagerly rewriting each list on every scan costs O(list) per
arrival.  Instead each :class:`~repro.backends.arena.ArenaPostingList`
keeps a *high-water expiry
cutoff* and a *dirty counter*: scans mask expired postings out on the fly,
report them removed exactly once (so operation counters match the eagerly
compacting reference backend), and the physical rewrite is deferred until
either the list is at least half dead or the kernel's per-query
*compaction budget* pays for an early cleanup.  A per-list minimum-live
timestamp skips the masking entirely while nothing can be expired.

Floating-point parity with the reference backend: every accumulation adds
the same IEEE-754 products in the same order (a vector contributes at most
one posting per list), so accumulated scores and reported similarities are
bitwise identical.  The only divergence is ``np.exp`` vs ``math.exp``,
which can differ in the last ulp, and it is confined to two places with
different treatments:

* **verification** — the vectorised ``np.exp`` mask is purely a *guard
  band* (``1e-12``-relative safety margin); every decision the reference
  backend takes with ``math.exp`` — the decayed verification bounds, the
  reported similarity — is re-taken with ``math.exp`` on the few
  candidates inside the band, so verification decisions and counters are
  exactly equal by construction;
* **candidate-generation scans** — the per-entry decayed admission and
  ``l2bound`` pruning (inherited unchanged from the first vectorised
  backend) still compare ``np.exp``-damped *conservative filter bounds*
  directly; a pair would have to sit within one ulp of such a bound for
  any count or output to differ, which the equivalence suite checks never
  happens on the paper's profiles.  (The whole-scan admission shortcut
  uses ``math.exp`` and is exact.)
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.backends.arena import ArenaPostingList, PostingArena
from repro.backends.arena import _MIN_CAPACITY  # noqa: F401  (test hook)
from repro.backends.base import (
    CandidateSet,
    ScoreAccumulator,
    SegmentPartial,
    SimilarityKernel,
    SizeFilterMap,
)
from repro.core.results import JoinStatistics, SimilarPair
from repro.core.vector import SparseVector
from repro.exceptions import InvalidParameterError
from repro.indexes.bounds import IndexingSplit, compute_indexing_split
from repro.indexes.maxvector import MaxVector
from repro.indexes.residual import ResidualEntry, ResidualIndex

__all__ = ["NumpyKernel", "ArenaPostingList", "PostingArena"]

_INITIAL_SLOTS = 64
_INITIAL_DENSE = 1024
_INF = math.inf
#: Dimensions above this threshold fall back to dict-based dot products
#: instead of growing the dense scratch vector (2**24 floats = 128 MiB).
_DENSE_DIM_LIMIT = 1 << 24
#: Posting lists at or below this length are scanned by a scalar loop over
#: the same slot state: per-call ufunc dispatch overhead beats the loop on
#: short lists (the regime of short horizons / small indexes), while long
#: lists — the actual hot path — go through the vectorised kernels.
_SCALAR_SCAN_CUTOFF = 12
#: Vectors at or below this length run the pure-Python indexing-split loop.
_SCALAR_SPLIT_CUTOFF = 8
#: Bulk appends at or below this many postings take the scalar field-write
#: path; larger ones reserve all tail cells and scatter each field once.
_SCALAR_APPEND_CUTOFF = 8
#: Per-query replenishment and cap of the amortised compaction budget
#: (measured in postings rewritten).
_COMPACTION_BUDGET = 512
_COMPACTION_BUDGET_CAP = 4096
#: Tri-state outcome of the remaining-score admission test, resolved per
#: scan from the list's minimum live timestamp (``exp`` is monotone in the
#: timestamp, so one ``math.exp`` at the oldest entry decides the whole
#: list whenever the bound clears — or fails — uniformly).
_ADMIT_ALL = 1
_ADMIT_NONE = 0
_ADMIT_PER_ENTRY = -1

_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT = np.empty(0, dtype=np.float64)
#: Relative guard band for np.exp-based filtering: np.exp and math.exp can
#: differ in the last ulp, so the vectorised masks compare against
#: ``threshold * (1 - _GUARD_BAND)`` and the exact math.exp decision is
#: re-taken per candidate inside the band.
_GUARD_BAND = 1e-12


class NumpyCandidateSet(CandidateSet):
    """Candidates as parallel ``(slots, partial_scores)`` arrays.

    ``slots`` index the kernel's slot space in first-accumulation order;
    ``scores`` is a private copy, so the set stays valid while the next
    query reuses the kernel's dense score table.  Arrival timestamps are
    gathered lazily (the prefix-filter pipeline never needs them) and are
    only valid until the next candidate-generation pass.
    """

    __slots__ = ("_kernel", "slots", "scores")

    def __init__(self, kernel: "NumpyKernel", slots: np.ndarray,
                 scores: np.ndarray) -> None:
        self._kernel = kernel
        self.slots = slots
        self.scores = scores

    def __len__(self) -> int:
        return len(self.slots)

    def to_dict(self) -> dict[int, float]:
        ids = self._kernel._slot_ids[self.slots]
        return {int(vector_id): float(score)
                for vector_id, score in zip(ids.tolist(), self.scores.tolist())}

    def arrivals(self) -> dict[int, float]:
        ids = self._kernel._slot_ids[self.slots]
        arrivals = self._kernel._slot_arrival[self.slots]
        return {int(vector_id): float(arrival)
                for vector_id, arrival in zip(ids.tolist(), arrivals.tolist())}

    def above(self, threshold: float) -> list[tuple[int, float]]:
        if not len(self.slots):
            return []
        mask = self.scores >= threshold
        ids = self._kernel._slot_ids[self.slots[mask]]
        return list(zip(ids.tolist(), self.scores[mask].tolist()))


class NumpyAccumulator(ScoreAccumulator):
    """Epoch-stamped dense score table; candidates gathered at finalisation."""

    __slots__ = ("_kernel", "_epoch", "_touched", "sketch_pruned")

    def __init__(self, kernel: "NumpyKernel", epoch: int) -> None:
        self._kernel = kernel
        self._epoch = epoch
        self.sketch_pruned = 0
        #: Slot arrays appended by the scan kernels.  Each scan contributes
        #: only the slots whose accumulation *started* there, so the arrays
        #: are disjoint and their concatenation is already in
        #: first-accumulation order — reference dict insertion order.
        self._touched: list[np.ndarray] = []

    def finalize(self) -> NumpyCandidateSet:
        kernel = self._kernel
        touched = self._touched
        if not touched:
            slots = np.empty(0, dtype=np.int64)
            scores = np.empty(0, dtype=np.float64)
        else:
            stacked = touched[0] if len(touched) == 1 else np.concatenate(touched)
            # Candidates pruned after they started carry the ``-epoch`` mark.
            slots = stacked[kernel._slot_state[stacked] == self._epoch]
            # Fancy indexing copies, detaching the scores from the table —
            # then restore the all-zeros invariant the scan kernels rely on
            # (every score written this pass belongs to a touched slot).
            scores = kernel._slot_score[slots]
            kernel._slot_score[stacked] = 0.0
        return NumpyCandidateSet(kernel, slots, scores)


class NumpySizeFilter(SizeFilterMap):
    """Dense slot-indexed array of ``|x| · vm_x`` values (+inf when absent)."""

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "NumpyKernel") -> None:
        self._kernel = kernel

    def set(self, vector_id: int, value: float) -> None:
        # Intern first: it may reallocate the kernel's slot arrays.
        slot = self._kernel._intern(vector_id)
        self._kernel._slot_sf[slot] = value

    def discard(self, vector_id: int) -> None:
        slot = self._kernel._slot_of.get(vector_id)
        if slot is not None:
            self._kernel._slot_sf[slot] = np.inf

    def get(self, vector_id: int) -> float | None:
        slot = self._kernel._slot_of.get(vector_id)
        if slot is None:
            return None
        value = float(self._kernel._slot_sf[slot])
        return None if value == math.inf else value

    def values_at(self, slots: np.ndarray) -> np.ndarray:
        return self._kernel._slot_sf[slots]


class NumpyKernel(SimilarityKernel):
    """Vectorised array kernels over slot-interned candidate state."""

    name = "numpy"
    description = "vectorised contiguous-array kernels (requires numpy)"

    def __init__(self, *, fused: bool = True, arena_allocator=None) -> None:
        #: Whether the fused ``scan_query_*`` kernels are enabled.  With
        #: ``fused=False`` the kernel falls back to the base class's
        #: per-term driver loop over the ``scan_*`` kernels — the path the
        #: fused implementations are parity-tested against.
        self._fused = fused
        # ``arena_allocator`` lets a caller place the posting arena's
        # backing buffers wherever it likes — the sharded workers pass a
        # multiprocessing.shared_memory-backed allocator (see
        # repro.shard.shm); None keeps private heap arrays.
        self._arena = PostingArena(self, arena_allocator)
        self._slot_of: dict[int, int] = {}
        self._slot_ids = np.empty(_INITIAL_SLOTS, dtype=np.int64)
        self._slot_score = np.zeros(_INITIAL_SLOTS, dtype=np.float64)
        # Per-slot scan state packed into one array: ``epoch`` = candidate
        # started this query, ``-epoch`` = pruned this query, anything else
        # = untouched.  Epochs start at 1, so the zero fill is neutral.
        self._slot_state = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        self._slot_sf = np.full(_INITIAL_SLOTS, np.inf, dtype=np.float64)
        self._slot_arrival = np.zeros(_INITIAL_SLOTS, dtype=np.float64)
        # Scratch for the fused scans' first-occurrence scatter; its stale
        # values are never read (only slots written in the same pass are
        # compared), so it needs no epoch management.
        self._slot_mark = np.zeros(_INITIAL_SLOTS, dtype=np.int64)
        # Verification-metadata mirrors of the residual/Q store, maintained
        # by the note_vector_* hooks (see the module docstring).  One row
        # per slot — ``(pscore, vm_{x'}, Σx', |x'|, t(x))`` — so the fused
        # verification gathers all five fields in a single row gather.
        self._slot_meta = np.zeros((_INITIAL_SLOTS, 5), dtype=np.float64)
        self._slot_valid = np.zeros(_INITIAL_SLOTS, dtype=bool)
        self._slot_entries: dict[int, ResidualEntry] = {}
        # slot -> (residual dims, residual values, largest dim) in ascending
        # dimension order; (-1 sentinel when the residual prefix is empty).
        self._slot_residual: dict[int, tuple[np.ndarray, np.ndarray, int]] = {}
        self._epoch = 0
        self._maintenance_budget = 0
        self._dense = np.zeros(_INITIAL_DENSE, dtype=np.float64)
        self._query_dims: np.ndarray | None = None
        self._query_vector: SparseVector | None = None
        self._dense_active = False
        # id(vector) -> [vector, dims, values, b2-prefix-or-None,
        # prefix-norms-or-None].  The strong reference to the vector pins
        # its id, so a recycled id can never alias a stale entry; the ℓ₂
        # indexing bound prefix and the prefix-norm array are filled
        # lazily (re-indexing recomputes the split of the same vector many
        # times, but both depend only on the vector).
        self._vector_arrays: dict[int, list] = {}

    # -- slot interning ------------------------------------------------------

    def _intern(self, vector_id: int) -> int:
        slot = self._slot_of.get(vector_id)
        if slot is None:
            slot = len(self._slot_of)
            if slot == len(self._slot_ids):
                self._grow_slots(slot + 1)
            self._slot_of[vector_id] = slot
            self._slot_ids[slot] = vector_id
        return slot

    def _grow_slots(self, needed: int) -> None:
        capacity = len(self._slot_ids)
        while capacity < needed:
            capacity *= 2
        for name, fill in (("_slot_ids", None), ("_slot_score", 0.0),
                           ("_slot_state", 0), ("_slot_mark", 0),
                           ("_slot_sf", np.inf), ("_slot_arrival", 0.0),
                           ("_slot_valid", False)):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[:len(old)] = old
            if fill is not None:
                fresh[len(old):] = fill
            setattr(self, name, fresh)
        old_meta = self._slot_meta
        fresh_meta = np.zeros((capacity, 5), dtype=np.float64)
        fresh_meta[:len(old_meta)] = old_meta
        self._slot_meta = fresh_meta
        if self._sketch_scheme is not None:
            old_valid = self._slot_sig_valid
            fresh_valid = np.zeros(capacity, dtype=bool)
            fresh_valid[:len(old_valid)] = old_valid
            self._slot_sig_valid = fresh_valid
            old_bands = self._slot_bands
            fresh_bands = np.zeros((old_bands.shape[0], capacity),
                                   dtype=np.uint64)
            fresh_bands[:, :old_bands.shape[1]] = old_bands
            self._slot_bands = fresh_bands
            self._sketch_verdict = None
            self._sketch_verdict_epoch = -1

    # -- storage factories ---------------------------------------------------

    def new_posting_list(self) -> ArenaPostingList:
        return self._arena.new_list()

    def new_accumulator(self) -> NumpyAccumulator:
        self._epoch += 1
        self.begin_maintenance_cycle()
        return NumpyAccumulator(self, self._epoch)

    def begin_maintenance_cycle(self) -> None:
        """Replenish the per-query compaction budget, compacting if affordable.

        One call per query: the single-process drivers reach it through
        :meth:`new_accumulator`; the sharded workers — which never create
        accumulators — call it once per scan step.  A new cycle is a safe
        point: no scan holds gathers from the arena arrays here.
        """
        budget = self._maintenance_budget + _COMPACTION_BUDGET
        budget = min(budget, _COMPACTION_BUDGET_CAP)
        # The budget pays for early arena compaction (a mandatory one —
        # dead space exceeding live postings — is already amortised and
        # costs nothing).
        budget -= self._arena.compact_if_affordable(budget)
        self._maintenance_budget = budget

    def new_size_filter(self) -> NumpySizeFilter:
        return NumpySizeFilter(self)

    # -- candidate metadata --------------------------------------------------

    @staticmethod
    def _build_residual_arrays(entry: ResidualEntry) -> tuple[np.ndarray, np.ndarray]:
        """Residual prefix as ``(dims, values)`` arrays in ascending-dim order.

        Fills ``entry.array_cache`` as a side effect; the single source of
        the cache layout shared by the note hooks and the dot kernels.
        """
        residual = entry.residual
        dims = sorted(residual)
        cached = (np.asarray(dims, dtype=np.int64),
                  np.asarray([residual[dim] for dim in dims],
                             dtype=np.float64))
        entry.array_cache = cached
        return cached

    def _mirror_residual_arrays(self, slot: int, entry: ResidualEntry) -> None:
        if entry.residual:
            cached = self._build_residual_arrays(entry)
            self._slot_residual[slot] = (cached[0], cached[1],
                                         int(cached[0][-1]))
        else:
            entry.array_cache = None
            self._slot_residual[slot] = (_EMPTY_INT, _EMPTY_FLOAT, -1)

    def note_vector_indexed(self, entry: ResidualEntry) -> None:
        slot = self._intern(entry.vector_id)
        residual_max, residual_sum = entry._stats()
        self._slot_meta[slot] = (entry.pscore, residual_max, residual_sum,
                                 len(entry.residual), entry.timestamp)
        self._slot_valid[slot] = True
        self._slot_entries[slot] = entry
        self._mirror_residual_arrays(slot, entry)
        if self._sketch_scheme is not None:
            if entry.vector is self._sketch_query_vector:
                keys = self._sketch_query_keys
                self._slot_bands[:, slot] = self._sketch_query_bands
            else:
                _, keys = self._query_sketch_for(entry.vector)
                self._slot_bands[:, slot] = np.asarray(keys, dtype=np.uint64)
            self._slot_sig_valid[slot] = True
            buckets = self._band_buckets
            arrays = self._band_bucket_arrays
            for band, key in enumerate(keys):
                bucket = buckets[band].get(key)
                if bucket is None:
                    buckets[band][key] = [slot]
                else:
                    bucket.append(slot)
                    arrays[band].pop(key, None)
            self._bucket_entries += len(keys)
            if self._bucket_entries > 4 * len(keys) * len(self._slot_ids):
                self._rebuild_band_buckets()

    def note_vector_updated(self, entry: ResidualEntry) -> None:
        slot = self._slot_of.get(entry.vector_id)
        if slot is None or self._slot_entries.get(slot) is not entry:
            self.note_vector_indexed(entry)
            return
        residual_max, residual_sum = entry._stats()
        self._slot_meta[slot] = (entry.pscore, residual_max, residual_sum,
                                 len(entry.residual), entry.timestamp)
        # Only rebuild the residual array mirror when the residual prefix
        # itself changed (shrink_to clears the cache); a pscore-only
        # refresh — the common re-indexing outcome — keeps it.
        if entry.array_cache is None:
            self._mirror_residual_arrays(slot, entry)

    def note_vector_evicted(self, vector_id: int) -> None:
        slot = self._slot_of.get(vector_id)
        if slot is not None:
            self._slot_valid[slot] = False
            self._slot_entries.pop(slot, None)
            self._slot_residual.pop(slot, None)
            if self._sketch_scheme is not None:
                self._slot_sig_valid[slot] = False
                self._buckets_dirty = True

    # -- approximate sketch prefilter ----------------------------------------

    def configure_approx(self, config: Any) -> None:
        """Enable the sketch prefilter (vectorised banding over slot rows).

        Folded band keys (one 64-bit key per band, see
        :meth:`SignatureScheme.band_hash_keys`) live in a dense
        ``(band, slot)`` uint64 matrix next to the other slot-indexed
        mirrors, shadowed by per-band hash buckets mapping each key to
        the slots that hold it.  The first rejection check of each query
        builds one keep/reject verdict over the bucketed slots of the
        query's own keys, and every gathered posting then costs a single
        boolean lookup.  The fused scans drop rejected candidates'
        postings right after the time filter and before admission, so
        bounds resolved from the pre-sketch live extremes stay
        conservative.  The per-term fallback path would silently bypass
        the filter, so non-fused kernels reject the configuration.
        """
        if not self._fused:
            raise InvalidParameterError(
                "approx mode requires the fused NumPy kernels; "
                "NumpyKernel(fused=False) cannot host the sketch prefilter")
        super().configure_approx(config)
        capacity = len(self._slot_ids)
        self._slot_bands = np.zeros((config.bands, capacity), dtype=np.uint64)
        self._slot_sig_valid = np.zeros(capacity, dtype=bool)
        self._sketch_query_bands: np.ndarray | None = None
        self._sketch_verdict: np.ndarray | None = None
        self._sketch_verdict_epoch = -1
        # Per-band hash buckets (key -> slots): the per-query verdict only
        # touches the slots whose stored key equals the query's, instead
        # of sweeping all ``bands × capacity`` table cells.  Entries go
        # stale when a slot is reused; every lookup re-checks the bucket's
        # slots against the live table, so the buckets only ever need to
        # be a superset of the truth.
        self._band_buckets: list[dict[int, list[int]]] = [
            {} for _ in range(config.bands)]
        # Bucket slot lists converted to arrays on first lookup; an append
        # to a bucket evicts its cached array (hot near-duplicate buckets
        # are looked up by every member, so the conversion must amortise).
        self._band_bucket_arrays: list[dict[int, np.ndarray]] = [
            {} for _ in range(config.bands)]
        self._bucket_entries = 0
        # False until the first eviction: bucket entries can only go stale
        # through slot reuse, which eviction precedes, so a clean stream
        # skips the per-band re-validation gathers entirely.
        self._buckets_dirty = False

    def _install_query_sketch(self, vector: SparseVector) -> None:
        super()._install_query_sketch(vector)
        if self._sketch_query is not None:
            self._sketch_query_bands = np.asarray(self._sketch_query_keys,
                                                  dtype=np.uint64)

    def _sketch_ok_mask(self, slots: np.ndarray,
                        acc: ScoreAccumulator) -> np.ndarray | None:
        """Banding verdict per gathered posting (``None`` = all pass).

        A posting survives iff some folded band key of its slot equals the
        query's key for the same band; slots without a stored signature
        always pass, like the reference backend's per-candidate check.
        The per-slot verdict is computed once per query from the per-band
        hash buckets — only slots bucketed under one of the query's keys
        are touched, and each is re-validated against the live band table
        (bucket entries go stale when slots are reused) — then reused by
        every scan of that query.  Every rejected posting occurrence is
        counted in ``acc.sketch_pruned`` — the reference per-entry loop
        charges repeat visits of a rejected candidate the same way.
        """
        ok = self._sketch_verdict_now()[slots]
        rejected = len(ok) - int(np.count_nonzero(ok))
        if not rejected:
            return None
        acc.sketch_pruned += rejected  # type: ignore[attr-defined]
        return ok

    def _sketch_verdict_now(self) -> np.ndarray:
        """The current query's per-slot banding verdict, built lazily.

        One bucket-lookup pass per query epoch; the bucket-based build is
        the *specification* of the verdict — the compiled backend reuses
        it verbatim and only compiles the per-posting application, so
        both tiers reject the exact same slots in every regime
        (including stale-bucket revalidation after slot reuse).
        """
        if self._sketch_verdict_epoch != self._epoch:
            table = self._slot_bands
            verdict = ~self._slot_sig_valid
            buckets = self._band_buckets
            arrays = self._band_bucket_arrays
            dirty = self._buckets_dirty
            for band, key in enumerate(self._sketch_query_keys):
                cached = arrays[band]
                candidates = cached.get(key)
                if candidates is None:
                    bucket = buckets[band].get(key)
                    if not bucket:
                        continue
                    candidates = np.asarray(bucket, dtype=np.int64)
                    cached[key] = candidates
                if dirty:
                    row = table[band]
                    candidates = candidates[
                        row[candidates] == np.uint64(key)]
                verdict[candidates] = True
            self._sketch_verdict = verdict
            self._sketch_verdict_epoch = self._epoch
        return self._sketch_verdict

    def _rebuild_band_buckets(self) -> None:
        """Compact the band buckets back to the live slots.

        Long streams with eviction churn accumulate stale bucket entries
        (slot reuse leaves the old ``key -> slot`` rows behind); once the
        entry count exceeds a small multiple of the live table the
        buckets are rebuilt from the table itself, keeping lookups and
        memory bounded regardless of stream length.
        """
        table = self._slot_bands
        valid = np.nonzero(self._slot_sig_valid)[0].tolist()
        buckets: list[dict[int, list[int]]] = [
            {} for _ in range(table.shape[0])]
        for band, bucket in enumerate(buckets):
            row = table[band]
            for slot in valid:
                key = int(row[slot])
                entry = bucket.get(key)
                if entry is None:
                    bucket[key] = [slot]
                else:
                    entry.append(slot)
        self._band_buckets = buckets
        self._band_bucket_arrays = [{} for _ in range(table.shape[0])]
        self._bucket_entries = len(valid) * len(buckets)
        self._buckets_dirty = False

    def _sketch_drop(self, idx: np.ndarray, counts: np.ndarray,
                     offsets: np.ndarray, acc: ScoreAccumulator,
                     timestamps: np.ndarray | None = None,
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray | None]:
        """Drop gathered postings of sketch-rejected candidates.

        Returns ``(idx, counts, offsets, timestamps)`` with the per-segment
        counts and running offsets recomputed via cumulative-sum
        differences (``np.add.reduceat`` misreads empty segments).
        """
        ok = self._sketch_ok_mask(self._arena.slots[idx], acc)
        if ok is None:
            return idx, counts, offsets, timestamps
        idx = idx[ok]
        if timestamps is not None:
            timestamps = timestamps[ok]
        kept = np.empty(len(ok) + 1, dtype=np.int64)
        kept[0] = 0
        np.cumsum(ok, out=kept[1:])
        counts = kept[offsets[1:]] - kept[offsets[:-1]]
        offsets = np.empty(len(counts) + 1, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(counts, out=offsets[1:])
        return idx, counts, offsets, timestamps

    # -- index construction --------------------------------------------------

    def index_vector_postings(self, index: Any, vector: SparseVector,
                              start: int = 0, end: int | None = None) -> int:
        """Bulk append: intern the id once, scatter the fields in one pass.

        Every touched dimension reserves its tail cell first (each list is
        touched at most once — vector dimensions are unique — so chunk
        relocations cannot move already-reserved cells), then the four
        posting fields are written with one vectorised scatter per array.
        """
        slot = self._intern(vector.vector_id)
        timestamp = vector.timestamp
        dims = vector.dims
        stop = len(dims) if end is None else end
        count = stop - start
        if count <= 0:
            return 0
        list_for = index.list_for
        if count <= _SCALAR_APPEND_CUTOFF:
            values = vector.values
            prefix_norms = vector._prefix_norms
            for position in range(start, stop):
                list_for(dims[position])._append_fast(
                    slot, values[position], prefix_norms[position], timestamp)
            index.note_added(count)
            return count
        arena = self._arena
        arena.maybe_compact()
        cached = self._vector_entry(vector)
        values_arr = cached[2]
        prefix_arr = cached[4]
        if prefix_arr is None:
            prefix_arr = np.asarray(vector._prefix_norms, dtype=np.float64)
            cached[4] = prefix_arr
        positions = np.empty(count, dtype=np.int64)
        for offset, position in enumerate(range(start, stop)):
            plist = list_for(dims[position])
            positions[offset] = plist._reserve_tail()
            plist.note_appended(1, timestamp, timestamp)
        arena.slots[positions] = slot
        arena.values[positions] = values_arr[start:stop]
        arena.pnorms[positions] = prefix_arr[start:stop]
        arena.ts[positions] = timestamp
        index.note_added(count)
        return count

    def indexing_split(self, vector: SparseVector, threshold: float, *,
                       max_vector: MaxVector | None, use_ap: bool,
                       use_l2: bool, limit: int | None = None) -> IndexingSplit:
        end = len(vector) if limit is None else min(limit, len(vector))
        if end <= _SCALAR_SPLIT_CUTOFF:
            return compute_indexing_split(vector, threshold,
                                          max_vector=max_vector, use_ap=use_ap,
                                          use_l2=use_l2, limit=limit)
        if not use_ap and not use_l2:
            raise ValueError("at least one bound family must be enabled")
        if use_ap and max_vector is None:
            raise ValueError("the AP b1 bound requires the max vector m")
        entry = self._vector_entry(vector)
        # np.cumsum accumulates sequentially, so every partial sum is
        # bitwise identical to the reference backend's running loop.
        if use_ap:
            # Gather straight from the MaxVector's backing dict: this loop
            # runs once per (re-)indexed vector and the method-call wrapper
            # around dict.get is measurable at that rate.
            mvalues = max_vector._values  # type: ignore[union-attr]
            mget = mvalues.get
            maxima = np.asarray([mget(dim, 0.0) for dim in vector.dims[:end]],
                                dtype=np.float64)
            b1 = (entry[2][:end] * maxima).cumsum()
        if use_l2:
            b2_full = entry[3]
            if b2_full is None:
                values = entry[2]
                b2_full = np.sqrt((values * values).cumsum())
                entry[3] = b2_full
            b2 = b2_full[:end]
        if use_ap and use_l2:
            bound = np.minimum(b1, b2)
        else:
            bound = b1 if use_ap else b2
        hits = bound >= threshold
        position = int(np.argmax(hits))
        if not hits[position]:
            return IndexingSplit(boundary=end, pscore=float(bound[-1]))
        if position == 0:
            return IndexingSplit(boundary=0, pscore=0.0)
        before = position - 1
        b1_bound = float(b1[before]) if use_ap else _INF
        b2_bound = float(b2[before]) if use_l2 else _INF
        return IndexingSplit(boundary=position,
                             pscore=min(b1_bound, b2_bound))

    # -- INV scans -----------------------------------------------------------

    def _accumulate(self, slots: np.ndarray, contributions: np.ndarray,
                    acc: NumpyAccumulator) -> None:
        """Unfiltered scatter-accumulate (each slot appears at most once)."""
        state = self._slot_state
        scores = self._slot_score
        started = state[slots] == self._epoch
        # Scores of untouched slots are zero (the finalize invariant), so a
        # buffered in-place add accumulates newcomers and started alike.
        scores[slots] += contributions
        state[slots] = self._epoch
        fresh = slots[~started]
        if len(fresh):
            acc._touched.append(fresh)

    def _accumulate_scalar(self, slots: list[int], values: list[float],
                           value: float, acc: NumpyAccumulator,
                           timestamps: list[float] | None = None) -> None:
        """Short-list scalar twin of :meth:`_accumulate` on the same state."""
        epoch = self._epoch
        state = self._slot_state
        scores = self._slot_score
        arrivals = self._slot_arrival
        touched: list[int] = []
        for position, slot in enumerate(slots):
            contribution = value * values[position]
            if state[slot] == epoch:
                scores[slot] += contribution
            else:
                scores[slot] = contribution
                state[slot] = epoch
                touched.append(slot)
            if timestamps is not None:
                arrivals[slot] = timestamps[position]
        if touched:
            acc._touched.append(np.asarray(touched, dtype=np.int64))

    def scan_inv_batch(self, plist: Any, value: float,
                       acc: ScoreAccumulator) -> int:
        slots, values, _, _ = plist.arrays()
        count = len(slots)
        if count == 0:
            return 0
        if count <= _SCALAR_SCAN_CUTOFF:
            self._accumulate_scalar(slots.tolist(), values.tolist(), value, acc)
        else:
            self._accumulate(slots.copy(), value * values, acc)
        return count

    def scan_inv_stream(self, plist: Any, value: float, cutoff: float,
                        acc: ScoreAccumulator) -> tuple[int, int]:
        slots, values, _, timestamps = plist.arrays()
        expired = int(np.searchsorted(timestamps, cutoff, side="left"))
        if expired:
            slots = slots[expired:]
            values = values[expired:]
            timestamps = timestamps[expired:]
        alive = len(slots)
        # Newest-first, matching the reference backward scan's candidate
        # insertion order.
        if 0 < alive <= _SCALAR_SCAN_CUTOFF:
            self._accumulate_scalar(slots[::-1].tolist(), values[::-1].tolist(),
                                    value, acc, timestamps[::-1].tolist())
        elif alive:
            slots = slots[::-1].copy()
            self._slot_arrival[slots] = timestamps[::-1]
            self._accumulate(slots, value * values[::-1], acc)
        removed = plist.drop_oldest(expired)
        return alive, removed

    # -- prefix-filter scans -------------------------------------------------

    def scan_prefix_batch(self, plist: Any, value: float,
                          query_prefix_norm: float, admit_new: bool,
                          threshold: float, use_ap: bool, use_l2: bool,
                          sz1: float, size_filter: SizeFilterMap,
                          acc: ScoreAccumulator) -> int:
        slots, values, prefix_norms, _ = plist.arrays()
        traversed = len(slots)
        if traversed == 0:
            return 0
        if traversed <= _SCALAR_SCAN_CUTOFF:
            self._scan_prefix_scalar(
                slots.tolist(), values.tolist(), prefix_norms.tolist(), None,
                value, query_prefix_norm, admit_new, 0.0, math.inf, math.inf,
                0.0, sz1, threshold, use_ap, use_l2, acc)
        else:
            self._scan_prefix(
                slots, values, prefix_norms, None, 0.0, 0.0, value,
                query_prefix_norm, _ADMIT_ALL if admit_new else _ADMIT_NONE,
                None, None, sz1, threshold, use_ap, use_l2, size_filter, acc)
        return traversed

    def scan_prefix_stream(self, plist: Any, value: float,
                           query_prefix_norm: float, now: float,
                           cutoff: float, decay: float, rs1: float,
                           rs2: float, sz1: float, threshold: float,
                           use_ap: bool, use_l2: bool, time_ordered: bool,
                           size_filter: SizeFilterMap,
                           acc: ScoreAccumulator) -> tuple[int, int]:
        if time_ordered:
            return self._scan_prefix_stream_ordered(
                plist, value, query_prefix_norm, now, cutoff, decay, rs1,
                rs2, sz1, threshold, use_ap, use_l2, acc, size_filter)
        return self._scan_prefix_stream_unordered(
            plist, value, query_prefix_norm, now, cutoff, decay, rs1, rs2,
            sz1, threshold, use_ap, use_l2, acc, size_filter)

    def _scan_prefix_stream_ordered(self, plist: Any, value: float,
                                    query_prefix_norm: float, now: float,
                                    cutoff: float, decay: float, rs1: float,
                                    rs2: float, sz1: float, threshold: float,
                                    use_ap: bool, use_l2: bool,
                                    acc: NumpyAccumulator,
                                    size_filter: SizeFilterMap) -> tuple[int, int]:
        slots, values, prefix_norms, timestamps = plist.arrays()
        expired = int(np.searchsorted(timestamps, cutoff, side="left"))
        if expired:
            slots = slots[expired:]
            values = values[expired:]
            prefix_norms = prefix_norms[expired:]
            timestamps = timestamps[expired:]
        traversed = len(slots)
        removed = plist.drop_oldest(expired)
        if traversed == 0:
            return 0, removed
        # Newest-first, for insertion-order parity with the reference
        # backward scan.
        if traversed <= _SCALAR_SCAN_CUTOFF:
            self._scan_prefix_scalar(
                slots[::-1].tolist(), values[::-1].tolist(),
                prefix_norms[::-1].tolist(), timestamps[::-1].tolist(),
                value, query_prefix_norm, True, now, decay, rs1, rs2,
                sz1, threshold, use_ap, use_l2, acc)
        else:
            admit = self._resolve_admission(rs1, rs2, threshold, decay, now,
                                            float(timestamps[0]),
                                            float(timestamps[-1]))
            self._scan_prefix(
                slots[::-1], values[::-1], prefix_norms[::-1],
                timestamps[::-1], now, decay, value, query_prefix_norm,
                admit, rs1, rs2, sz1, threshold, use_ap, use_l2,
                size_filter, acc)
        return traversed, removed

    def _scan_prefix_stream_unordered(self, plist: Any, value: float,
                                      query_prefix_norm: float, now: float,
                                      cutoff: float, decay: float, rs1: float,
                                      rs2: float, sz1: float, threshold: float,
                                      use_ap: bool, use_l2: bool,
                                      acc: NumpyAccumulator,
                                      size_filter: SizeFilterMap) -> tuple[int, int]:
        physical = plist.physical_size
        if physical == 0:
            return 0, 0
        slots, values, prefix_norms, timestamps = plist.arrays()
        if plist.dirty == 0 and plist.min_live_timestamp >= cutoff:
            # Nothing can be expired: scan the whole physical region and
            # skip the mask entirely.
            if physical <= _SCALAR_SCAN_CUTOFF:
                self._scan_prefix_scalar(
                    slots.tolist(), values.tolist(), prefix_norms.tolist(),
                    timestamps.tolist(), value, query_prefix_norm, True, now,
                    decay, rs1, rs2, sz1, threshold, use_ap, use_l2, acc)
            else:
                admit = self._resolve_admission(rs1, rs2, threshold, decay,
                                                now, plist._min_ts,
                                                plist._max_ts)
                self._scan_prefix(
                    slots, values, prefix_norms, timestamps, now, decay,
                    value, query_prefix_norm, admit, rs1, rs2, sz1,
                    threshold, use_ap, use_l2, size_filter, acc)
            return physical, 0
        # Amortised expiry: mask the expired postings out of this scan and
        # report them removed, but defer the physical rewrite.
        traversed = physical - plist._dirty
        cutoff_eff = max(cutoff, plist._expired_cutoff)
        alive_mask = timestamps >= cutoff_eff
        alive = int(np.count_nonzero(alive_mask))
        removed = traversed - alive
        if alive:
            slots = slots[alive_mask]
            values = values[alive_mask]
            prefix_norms = prefix_norms[alive_mask]
            timestamps = timestamps[alive_mask]
            min_live = float(timestamps.min())
            max_live = float(timestamps.max())
        else:
            min_live = _INF
            max_live = -_INF
        plist.note_lazy_expiry(cutoff_eff, physical - alive, min_live, max_live)
        self._maybe_compact(plist, alive_mask)
        if alive:
            if alive <= _SCALAR_SCAN_CUTOFF:
                self._scan_prefix_scalar(
                    slots.tolist(), values.tolist(), prefix_norms.tolist(),
                    timestamps.tolist(), value, query_prefix_norm, True, now,
                    decay, rs1, rs2, sz1, threshold, use_ap, use_l2, acc)
            else:
                admit = self._resolve_admission(rs1, rs2, threshold, decay,
                                                now, min_live, max_live)
                self._scan_prefix(
                    slots, values, prefix_norms, timestamps, now, decay,
                    value, query_prefix_norm, admit, rs1, rs2, sz1,
                    threshold, use_ap, use_l2, size_filter, acc)
        return traversed, removed

    @staticmethod
    def _resolve_admission(rs1: float, rs2: float, threshold: float,
                           decay: float, now: float, min_ts: float,
                           max_ts: float) -> int:
        """Resolve the remaining-score admission for a whole scanned region.

        ``exp(-λ·(now-t))`` is monotone in ``t``, so evaluating the decayed
        bound at the region's extreme timestamps decides every entry
        whenever it clears uniformly (oldest entry passes → all pass) or
        fails uniformly (newest entry fails → all fail, as does
        ``rs1 < θ``).  Falls back to the per-entry test only when the
        decayed bound straddles the threshold inside the region.  Exact:
        the same ``math.exp`` the reference backend would apply, at
        timestamps bracketing every scanned entry's.
        """
        if rs1 < threshold:
            return _ADMIT_NONE
        exponent = -decay * (now - min_ts)
        if exponent > 700.0:
            exponent = 700.0  # conservative clamp; avoids math.exp overflow
        if rs2 * math.exp(exponent) >= threshold:
            return _ADMIT_ALL
        exponent = -decay * (now - max_ts)
        if exponent <= 700.0 and rs2 * math.exp(exponent) < threshold:
            return _ADMIT_NONE
        return _ADMIT_PER_ENTRY

    def _maybe_compact(self, plist: Any, alive_mask: np.ndarray) -> None:
        """Amortised physical compaction of a lazily expired list.

        Mandatory once the list is at least half dead (classic amortised
        O(1) per expiry); the per-query maintenance budget additionally
        pays for early cleanup of lightly dirty lists.
        """
        dirty = plist._dirty
        if dirty == 0:
            return
        size = plist._size
        if dirty * 2 >= size:
            plist.compress(alive_mask)
        elif size <= self._maintenance_budget:
            self._maintenance_budget -= size
            plist.compress(alive_mask)

    def _scan_prefix_scalar(self, slots: list[int], values: list[float],
                            prefix_norms: list[float],
                            timestamps: list[float] | None, value: float,
                            query_prefix_norm: float, admit_new: bool,
                            now: float, decay: float, rs1: float, rs2: float,
                            sz1: float, threshold: float, use_ap: bool,
                            use_l2: bool, acc: NumpyAccumulator) -> None:
        """Short-list scalar twin of :meth:`_scan_prefix` on the same state.

        ``timestamps`` distinguishes the streaming case (decayed bounds,
        ``math.exp`` exactly like the reference backend) from the batch case
        (``None``: the caller folded the remaining-score admission into the
        scalar ``admit_new`` flag).
        """
        epoch = self._epoch
        state = self._slot_state
        scores = self._slot_score
        size_values = self._slot_sf
        touched: list[int] = []
        for position, slot in enumerate(slots):
            mark = state[slot]
            if mark == -epoch:
                continue
            if timestamps is None:
                decay_factor = 1.0
            else:
                decay_factor = math.exp(-decay * (now - timestamps[position]))
            started = mark == epoch
            if not started:
                if timestamps is None:
                    if not admit_new:
                        continue
                elif min(rs1, rs2 * decay_factor) < threshold:
                    continue
                if use_ap and size_values[slot] < sz1:
                    continue
            accumulated = (scores[slot] if started else 0.0) + value * values[position]
            if use_l2:
                l2bound = accumulated + query_prefix_norm * prefix_norms[position] * decay_factor
                if l2bound < threshold:
                    state[slot] = -epoch
                    continue
            scores[slot] = accumulated
            if not started:
                state[slot] = epoch
                touched.append(slot)
        if touched:
            acc._touched.append(np.asarray(touched, dtype=np.int64))

    def _scan_prefix(self, slots: np.ndarray, values: np.ndarray,
                     prefix_norms: np.ndarray,
                     timestamps: np.ndarray | None, now: float, decay: float,
                     value: float, query_prefix_norm: float, admit: int,
                     rs1: float | None, rs2: float | None,
                     sz1: float, threshold: float,
                     use_ap: bool, use_l2: bool,
                     size_filter: SizeFilterMap,
                     acc: ScoreAccumulator) -> None:
        """Shared filtered accumulation of the batch and streaming scans.

        ``admit`` is the tri-state remaining-score admission: the callers
        resolve it to ``_ADMIT_ALL``/``_ADMIT_NONE`` whenever the bound
        clears (or fails) uniformly over the scanned region, which skips
        the per-entry ``min(rs1, rs2·e^{-λΔt})`` evaluation;
        ``_ADMIT_PER_ENTRY`` keeps it.  ``timestamps`` is ``None`` in the
        batch case (no decay).  When no newcomer can be admitted the scan
        compresses to the already-started candidates before touching the
        long arrays — in that regime the whole list contributes at most a
        handful of score updates, and the ``exp`` over the full region is
        skipped entirely.
        """
        epoch = self._epoch
        state = self._slot_state
        scores = self._slot_score

        marks = state[slots]
        started = marks == epoch
        if admit == _ADMIT_NONE:
            # Started candidates are by construction not pruned; compress
            # the scan to them (typically a tiny fraction of a long list).
            index = np.nonzero(started)[0]
            if not len(index):
                return
            sub_slots = slots[index]
            accumulated = scores[sub_slots] + value * values[index]
            if use_l2:
                bound_tail = query_prefix_norm * prefix_norms[index]
                if timestamps is not None:
                    bound_tail = bound_tail * np.exp(
                        -decay * (now - timestamps[index]))
                keep = (accumulated + bound_tail) >= threshold
                pruned_slots = sub_slots[~keep]
                if len(pruned_slots):
                    state[pruned_slots] = -epoch
                kept_slots = sub_slots[keep]
                if len(kept_slots):
                    scores[kept_slots] = accumulated[keep]
            else:
                scores[sub_slots] = accumulated
            return

        decay_factors = (None if timestamps is None
                         else np.exp(-decay * (now - timestamps)))
        active = marks != -epoch
        if admit == _ADMIT_ALL:
            if use_ap:
                process = active & (started
                                    | (size_filter.values_at(slots) >= sz1))
            else:
                process = active
        else:
            newcomer_ok = np.minimum(rs1, rs2 * decay_factors) >= threshold
            if use_ap:
                newcomer_ok &= size_filter.values_at(slots) >= sz1
            process = active & (started | newcomer_ok)

        # In-place where possible: these temporaries dominate the scan's
        # allocation traffic.  The arithmetic is exactly the reference
        # backend's ``score + value·y_j`` and ``(… ) + (qpn·‖y'‖)·e^{-λΔt}``;
        # scores of untouched slots are zero (the finalize invariant), so
        # the gather needs no ``started`` select.
        accumulated = value * values
        accumulated += scores[slots]
        if use_l2:
            # Reference parity: the reference groups the bound product as
            # ((qpn * prefix_norm) * decay_factor).
            bound_tail = query_prefix_norm * prefix_norms
            if decay_factors is not None:
                bound_tail *= decay_factors
            bound_tail += accumulated
            prune = bound_tail < threshold
            prune &= process
            pruned_slots = slots[prune]
            if len(pruned_slots):
                state[pruned_slots] = -epoch
            np.logical_not(prune, out=prune)
            keep = prune
            keep &= process
        else:
            keep = process
        kept_slots = slots[keep]
        if len(kept_slots):
            scores[kept_slots] = accumulated[keep]
            state[kept_slots] = epoch
            fresh_slots = slots[keep & ~started]
            if len(fresh_slots):
                acc._touched.append(fresh_slots)

    # -- fused whole-query scans ---------------------------------------------

    def scan_query_batch(self, vector: SparseVector, index: Any, *,
                         threshold: float, rs1: float,
                         maxima: Sequence[float] | None, sz1: float,
                         use_ap: bool, use_l2: bool,
                         size_filter: SizeFilterMap,
                         acc: ScoreAccumulator) -> int:
        if not self._fused:
            return super().scan_query_batch(
                vector, index, threshold=threshold, rs1=rs1, maxima=maxima,
                sz1=sz1, use_ap=use_ap, use_l2=use_l2,
                size_filter=size_filter, acc=acc)
        self._install_query_sketch(vector)
        dims = vector.dims
        values = vector.values
        rst = vector.norm * vector.norm
        rs2 = math.sqrt(rst) if use_l2 else _INF
        seg_lists: list[Any] = []
        seg_values: list[float] = []
        seg_qpns: list[float] = []
        seg_admit: list[bool] = []
        for position in range(len(dims) - 1, -1, -1):
            value = values[position]
            plist = index.get(dims[position])
            if plist is not None and plist.physical_size:
                seg_lists.append(plist)
                seg_values.append(value)
                seg_qpns.append(vector.prefix_norm_before(position))
                seg_admit.append(min(rs1, rs2) >= threshold)
            if use_ap:
                rs1 -= value * maxima[position]  # type: ignore[index]
            rst -= value * value
            if use_l2:
                rs2 = math.sqrt(max(rst, 0.0))
        if not seg_lists:
            return 0
        arena = self._arena
        idx, lengths, offsets = self._gather_indices(seg_lists, reverse=False)
        total = len(idx)
        if self._sketch_query is not None and total:
            # Before the admission shortcut: the reference per-entry check
            # runs ahead of admission, so the reject counters must too.
            idx, lengths, offsets, _ = self._sketch_drop(idx, lengths,
                                                         offsets, acc)
            if bool((lengths == 0).any()) and len(idx):
                # Keep the hoisted leading run long: segments the sketch
                # emptied would otherwise split it via _ADMIT_NONE.
                keep = (lengths > 0).tolist()
                seg_values = [v for v, k in zip(seg_values, keep) if k]
                seg_qpns = [v for v, k in zip(seg_qpns, keep) if k]
                seg_admit = [v for v, k in zip(seg_admit, keep) if k]
                lengths = lengths[lengths > 0]
                offsets = np.empty(len(lengths) + 1, dtype=np.int64)
                offsets[0] = 0
                np.cumsum(lengths, out=offsets[1:])
        if not any(seg_admit) or not len(idx):
            # No segment admits newcomers and (within one fused pass)
            # nothing can have started earlier, so no candidate can form.
            return total
        tri = [_ADMIT_ALL if admitted else _ADMIT_NONE
               for admitted in seg_admit]
        leading = len(tri)
        for j, outcome in enumerate(tri):
            if outcome == _ADMIT_NONE:
                leading = j
                break
        hoisted = int(offsets[leading])
        slots = arena.slots[idx]
        head = idx[:hoisted]
        contrib = np.repeat(np.asarray(seg_values[:leading]),
                            lengths[:leading])
        contrib *= arena.values[head]
        if use_l2:
            tails = np.repeat(np.asarray(seg_qpns[:leading]),
                              lengths[:leading])
            tails *= arena.pnorms[head]
        else:
            tails = None
        self._fused_prefix_segments(arena, idx, slots, contrib, tails, None,
                                    tri, seg_values, seg_qpns, [], [],
                                    offsets, hoisted, 0.0, 0.0, sz1, use_ap,
                                    use_l2, threshold, acc)
        return total

    def scan_query_stream(self, vector: SparseVector, index: Any, *,
                          now: float, cutoff: float, decay: float,
                          rs1: float,
                          decayed_maxima: Sequence[float] | None,
                          sz1: float, threshold: float,
                          use_ap: bool, use_l2: bool, time_ordered: bool,
                          size_filter: SizeFilterMap,
                          acc: ScoreAccumulator) -> tuple[int, int]:
        if not self._fused:
            return super().scan_query_stream(
                vector, index, now=now, cutoff=cutoff, decay=decay, rs1=rs1,
                decayed_maxima=decayed_maxima, sz1=sz1, threshold=threshold,
                use_ap=use_ap, use_l2=use_l2, time_ordered=time_ordered,
                size_filter=size_filter, acc=acc)
        self._install_query_sketch(vector)
        dims = vector.dims
        values = vector.values
        prefix_norms = vector._prefix_norms
        rst = vector.norm * vector.norm
        rs2 = math.sqrt(rst) if use_l2 else _INF
        index_get = index.get
        seg_lists: list[Any] = []
        seg_values: list[float] = []
        seg_qpns: list[float] = []
        seg_rs1: list[float] = []
        seg_rs2: list[float] = []
        for position in range(len(dims) - 1, -1, -1):
            value = values[position]
            plist = index_get(dims[position])
            if plist is not None and len(plist):
                seg_lists.append(plist)
                seg_values.append(value)
                seg_qpns.append(prefix_norms[position])
                seg_rs1.append(rs1)
                seg_rs2.append(rs2)
            if use_ap:
                rs1 -= value * decayed_maxima[position]  # type: ignore[index]
            rst -= value * value
            if use_l2:
                rs2 = math.sqrt(max(rst, 0.0))
        if not seg_lists:
            return 0, 0
        arena = self._arena
        idx, lengths, offsets = self._gather_indices(seg_lists,
                                                     reverse=time_ordered)
        segments = len(seg_lists)
        seg_min: list[float] = [0.0] * segments
        seg_max: list[float] = [0.0] * segments
        # -- time filtering over the whole gather -------------------------
        # Expired postings are masked out of the gather; the physical
        # bookkeeping (head truncation, lazy-expiry state, amortised
        # compaction) is deferred until the very end of the call so every
        # arena read below sees a stable layout.  NOTE: gather_scan_partials
        # carries a lockstep copy of this filter phase (and the bound loop
        # above is mirrored by the sharded coordinator's _segment_bounds);
        # changes here must be mirrored there, or sharded runs silently
        # lose bitwise parity.
        needs_mask = any(plist._dirty or plist._min_ts < cutoff
                         for plist in seg_lists)
        ordered_drops: list[tuple[Any, int]] = []
        lazy_updates: list[tuple[Any, float, int, np.ndarray, int]] = []
        timestamps: np.ndarray | None = None
        if not needs_mask:
            alive_counts = lengths
            alive_offsets = offsets
            traversed = len(idx)
            removed = 0
            for j, plist in enumerate(seg_lists):
                seg_min[j] = plist._min_ts
                seg_max[j] = plist._max_ts
        else:
            timestamps = arena.ts[idx]
            cuts = [max(cutoff, plist._expired_cutoff) if plist._dirty
                    else cutoff for plist in seg_lists]
            alive = timestamps >= np.repeat(np.asarray(cuts), lengths)
            alive_counts = np.add.reduceat(alive, offsets[:-1])
            traversed = 0
            removed = 0
            for j, plist in enumerate(seg_lists):
                length = int(lengths[j])
                live = int(alive_counts[j])
                lo = int(offsets[j])
                if time_ordered:
                    # Ordered lists: within-list timestamps are sorted, so
                    # the live postings form a prefix of the (newest-first)
                    # segment; the reference counts only them as traversed
                    # and truncates the expired head.
                    traversed += live
                    removed += length - live
                    if live:
                        seg_min[j] = float(timestamps[lo + live - 1])
                        seg_max[j] = float(timestamps[lo])
                    if length > live:
                        ordered_drops.append((plist, length - live))
                else:
                    # Unordered lists: the reference traverses every
                    # physically present posting it has not yet removed;
                    # lazily expired (dirty) ones were reported before.
                    seg_traversed = length - plist._dirty
                    traversed += seg_traversed
                    removed += seg_traversed - live
                    if live == length:
                        seg_min[j] = plist._min_ts
                        seg_max[j] = plist._max_ts
                    elif live:
                        live_ts = timestamps[lo:lo + length][alive[lo:lo + length]]
                        seg_min[j] = float(live_ts.min())
                        seg_max[j] = float(live_ts.max())
                    else:
                        seg_min[j] = _INF
                        seg_max[j] = -_INF
                    if live < length:
                        lazy_updates.append((plist, cuts[j], live,
                                             alive[lo:lo + length], j))
            if bool((alive_counts != lengths).any()):
                idx = idx[alive]
                timestamps = timestamps[alive]
            alive_offsets = np.empty(segments + 1, dtype=np.int64)
            alive_offsets[0] = 0
            np.cumsum(alive_counts, out=alive_offsets[1:])
        try:
            if len(idx) == 0:
                return traversed, removed
            scan_min, scan_max = seg_min, seg_max
            if self._sketch_query is not None:
                # Drop postings of sketch-rejected candidates between the
                # time filter and admission.  seg_min/seg_max keep their
                # pre-sketch extremes: the admission bound is monotone in
                # the timestamp, so extremes over a superset of the live
                # postings resolve the tri-state conservatively.  The
                # deferred physical bookkeeping in ``finally`` never sees
                # these drops — sketch rejection is per-query, not expiry.
                idx, alive_counts, alive_offsets, timestamps = (
                    self._sketch_drop(idx, alive_counts, alive_offsets,
                                      acc, timestamps))
                if len(idx) == 0:
                    return traversed, removed
                # Compress away segments the sketch emptied: a zero-count
                # segment would resolve to _ADMIT_NONE and cut the hoisted
                # leading run short, pushing the surviving postings onto
                # the slow per-segment scalar path.  The originals
                # (seg_lists, seg_min/seg_max) stay untouched for the
                # deferred bookkeeping in ``finally``.
                if bool((alive_counts == 0).any()):
                    keep = (alive_counts > 0).tolist()
                    seg_values = [v for v, k in zip(seg_values, keep) if k]
                    seg_qpns = [v for v, k in zip(seg_qpns, keep) if k]
                    seg_rs1 = [v for v, k in zip(seg_rs1, keep) if k]
                    seg_rs2 = [v for v, k in zip(seg_rs2, keep) if k]
                    scan_min = [v for v, k in zip(seg_min, keep) if k]
                    scan_max = [v for v, k in zip(seg_max, keep) if k]
                    alive_counts = alive_counts[alive_counts > 0]
                    segments = len(seg_values)
                    alive_offsets = np.empty(segments + 1, dtype=np.int64)
                    alive_offsets[0] = 0
                    np.cumsum(alive_counts, out=alive_offsets[1:])
            # -- admission ------------------------------------------------
            # Per-segment tri-state via exact math.exp at the live extremes
            # (the bound is monotone in the timestamp); only segments the
            # bound straddles pay a per-entry evaluation.
            resolve = self._resolve_admission
            tri = [resolve(seg_rs1[j], seg_rs2[j], threshold, decay, now,
                           scan_min[j], scan_max[j])
                   if alive_counts[j] else _ADMIT_NONE
                   for j in range(segments)]
            if all(outcome == _ADMIT_NONE for outcome in tri):
                return traversed, removed
            # Hoist the contributions, decay factors and l2bound tails
            # over the leading run of segments that can admit newcomers;
            # the _ADMIT_NONE tail of the scan is gathered lazily, per
            # segment, for the few already-started candidates only.
            leading = segments
            for j, outcome in enumerate(tri):
                if outcome == _ADMIT_NONE:
                    leading = j
                    break
            hoisted = int(alive_offsets[leading])
            slots = arena.slots[idx]
            head = idx[:hoisted]
            contrib = np.repeat(np.asarray(seg_values[:leading]),
                                alive_counts[:leading])
            contrib *= arena.values[head]
            decay_factors = None
            if use_l2 or _ADMIT_PER_ENTRY in tri[:leading]:
                head_ts = (timestamps[:hoisted] if timestamps is not None
                           else arena.ts[head])
                decay_factors = np.exp(-decay * (now - head_ts))
            if use_l2:
                tails = np.repeat(np.asarray(seg_qpns[:leading]),
                                  alive_counts[:leading])
                tails *= arena.pnorms[head]
                tails *= decay_factors
            else:
                tails = None
            self._fused_prefix_segments(arena, idx, slots, contrib, tails,
                                        decay_factors, tri, seg_values,
                                        seg_qpns, seg_rs1, seg_rs2,
                                        alive_offsets, hoisted, decay, now,
                                        sz1, use_ap, use_l2, threshold, acc)
            return traversed, removed
        finally:
            # Deferred physical bookkeeping: truncations and compactions
            # may rewrite chunks in place or replace the arena arrays, so
            # they run only after every gather above is done.
            for plist, count in ordered_drops:
                plist.drop_oldest(count)
            for plist, cut_eff, live, alive_mask, j in lazy_updates:
                plist.note_lazy_expiry(cut_eff, plist.physical_size - live,
                                       seg_min[j], seg_max[j])
                if len(alive_mask) != plist.physical_size:
                    # An earlier list's compress triggered a whole-arena
                    # compaction, which already dropped this list's
                    # previously dirty postings and shrank its region;
                    # rebuild the mask over the surviving postings (the
                    # live count is unaffected — only already-reported
                    # dirty entries were removed).
                    lo, hi = plist.region
                    alive_mask = arena.ts[lo:hi] >= cut_eff
                self._maybe_compact(plist, alive_mask)

    def scan_query_inv_batch(self, vector: SparseVector, index: Any,
                             acc: ScoreAccumulator) -> int:
        if not self._fused:
            return super().scan_query_inv_batch(vector, index, acc)
        seg_lists = []
        seg_values = []
        for dim, value in vector:
            plist = index.get(dim)
            if plist is not None and plist.physical_size:
                seg_lists.append(plist)
                seg_values.append(value)
        if not seg_lists:
            return 0
        arena = self._arena
        idx, lengths, _ = self._gather_indices(seg_lists, reverse=False)
        slots = arena.slots[idx]
        contrib = np.repeat(np.asarray(seg_values), lengths)
        contrib *= arena.values[idx]
        self._fused_inv_pass(slots, contrib, None, acc)
        return len(idx)

    def scan_query_inv_stream(self, vector: SparseVector, index: Any,
                              cutoff: float,
                              acc: ScoreAccumulator) -> tuple[int, int]:
        if not self._fused:
            return super().scan_query_inv_stream(vector, index, cutoff, acc)
        seg_lists = []
        seg_values = []
        for dim, value in vector:
            plist = index.get(dim)
            if plist is not None and plist.physical_size:
                seg_lists.append(plist)
                seg_values.append(value)
        if not seg_lists:
            return 0, 0
        arena = self._arena
        idx, lengths, offsets = self._gather_indices(seg_lists, reverse=True)
        timestamps = arena.ts[idx]
        removed = 0
        expired: list[tuple[Any, int]] = []
        if any(plist._min_ts < cutoff for plist in seg_lists):
            alive = timestamps >= cutoff
            alive_counts = np.add.reduceat(alive, offsets[:-1])
            expired = [(seg_lists[j], int(lengths[j]) - int(alive_counts[j]))
                       for j in range(len(seg_lists))
                       if alive_counts[j] < lengths[j]]
            if expired:
                idx = idx[alive]
                timestamps = timestamps[alive]
        else:
            alive_counts = lengths
        slots = arena.slots[idx]
        contrib = np.repeat(np.asarray(seg_values), alive_counts)
        contrib *= arena.values[idx]
        # Truncations happen only after every arena gather above.
        for plist, count in expired:
            removed += plist.drop_oldest(count)
        traversed = len(idx)
        if traversed:
            self._fused_inv_pass(slots, contrib, timestamps, acc)
        return traversed, removed

    def _gather_indices(self, seg_lists: list,
                        reverse: bool) -> tuple[np.ndarray, np.ndarray,
                                                np.ndarray]:
        """Arena offsets of every segment's physical region, concatenated.

        Returns ``(idx, lengths, offsets)`` where ``idx`` enumerates each
        list's region in scan order (newest first when ``reverse``),
        ``lengths`` the per-segment physical sizes and ``offsets`` their
        running starts inside ``idx`` (length ``segments + 1``).
        """
        segments = len(seg_lists)
        starts = np.empty(segments, dtype=np.int64)
        lengths = np.empty(segments, dtype=np.int64)
        for j, plist in enumerate(seg_lists):
            starts[j] = plist._start + plist._head
            lengths[j] = plist._size
        offsets = np.empty(segments + 1, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        within = np.arange(total, dtype=np.int64)
        within -= np.repeat(offsets[:-1], lengths)
        if reverse:
            idx = np.repeat(starts + lengths - 1, lengths)
            idx -= within
        else:
            idx = np.repeat(starts, lengths)
            idx += within
        return idx, lengths, offsets

    # -- partial accumulation (sharded candidate generation) -----------------
    #
    # The worker half (gather_*_partials) is the fused scans' gather/time-
    # filter phase — everything up to but excluding global admission — with
    # the per-posting products precomputed so the coordinator never touches
    # this arena.  The coordinator half (apply_*_partials) replays the
    # per-segment admission/pruning/accumulation sequence over the merged
    # partials through the *same* _fused_prefix_segments/_fused_inv_pass
    # code the single-process kernel uses, with every segment pre-gathered
    # (hoisted == total).  Both halves are elementwise identical to the
    # single-process fused pass, so scores, prune marks, candidate order
    # and operation counts stay bitwise equal regardless of how dimensions
    # are split across workers (tests/test_shard.py pins this down).

    def gather_scan_partials(self, segments: Sequence[tuple[int, float, float, Any]],
                             *, now: float, cutoff: float, decay: float,
                             use_l2: bool, time_ordered: bool,
                             ) -> tuple[list[SegmentPartial], int, int]:
        if not segments:
            return [], 0, 0
        arena = self._arena
        seg_lists = [segment[3] for segment in segments]
        idx, lengths, offsets = self._gather_indices(seg_lists,
                                                     reverse=time_ordered)
        nseg = len(seg_lists)
        seg_min = [0.0] * nseg
        seg_max = [0.0] * nseg
        seg_traversed = [0] * nseg
        seg_removed = [0] * nseg
        ordered_drops: list[tuple[Any, int]] = []
        lazy_updates: list[tuple[Any, float, int, np.ndarray, int]] = []
        # -- time filtering: LOCKSTEP COPY of the fused scan_query_stream's
        # filter phase (see there for the case-by-case rationale).  The
        # sharded bitwise-parity contract depends on the two staying
        # identical: any change to either — mask computation, the
        # traversed/removed case analysis, the deferred drop/lazy-expiry
        # bookkeeping, the alive-mask rebuild after a whole-arena
        # compaction — must be mirrored in the other.
        needs_mask = any(plist._dirty or plist._min_ts < cutoff
                         for plist in seg_lists)
        timestamps = arena.ts[idx]
        if not needs_mask:
            alive_counts = lengths
            alive_offsets = offsets
            for j, plist in enumerate(seg_lists):
                seg_min[j] = plist._min_ts
                seg_max[j] = plist._max_ts
                seg_traversed[j] = int(lengths[j])
        else:
            cuts = [max(cutoff, plist._expired_cutoff) if plist._dirty
                    else cutoff for plist in seg_lists]
            alive = timestamps >= np.repeat(np.asarray(cuts), lengths)
            alive_counts = np.add.reduceat(alive, offsets[:-1])
            for j, plist in enumerate(seg_lists):
                length = int(lengths[j])
                live = int(alive_counts[j])
                lo = int(offsets[j])
                if time_ordered:
                    seg_traversed[j] = live
                    seg_removed[j] = length - live
                    if live:
                        seg_min[j] = float(timestamps[lo + live - 1])
                        seg_max[j] = float(timestamps[lo])
                    else:
                        seg_min[j] = _INF
                        seg_max[j] = -_INF
                    if length > live:
                        ordered_drops.append((plist, length - live))
                else:
                    seg_traversed[j] = length - plist._dirty
                    seg_removed[j] = seg_traversed[j] - live
                    if live == length:
                        seg_min[j] = plist._min_ts
                        seg_max[j] = plist._max_ts
                    elif live:
                        live_ts = timestamps[lo:lo + length][alive[lo:lo + length]]
                        seg_min[j] = float(live_ts.min())
                        seg_max[j] = float(live_ts.max())
                    else:
                        seg_min[j] = _INF
                        seg_max[j] = -_INF
                    if live < length:
                        lazy_updates.append((plist, cuts[j], live,
                                             alive[lo:lo + length], j))
            if bool((alive_counts != lengths).any()):
                idx = idx[alive]
                timestamps = timestamps[alive]
            alive_offsets = np.empty(nseg + 1, dtype=np.int64)
            alive_offsets[0] = 0
            np.cumsum(alive_counts, out=alive_offsets[1:])
        try:
            # -- per-posting products over the whole gather (fancy-index
            # reads copy, so the partials stay valid across the deferred
            # physical bookkeeping below and across future arena mutation).
            slots = arena.slots[idx]
            contrib = np.repeat(np.asarray([segment[1] for segment in segments]),
                                alive_counts)
            contrib *= arena.values[idx]
            decay_factors = np.exp(-decay * (now - timestamps))
            if use_l2:
                tails = np.repeat(np.asarray([segment[2] for segment in segments]),
                                  alive_counts)
                tails *= arena.pnorms[idx]
                tails *= decay_factors
            else:
                tails = None
            partials: list[SegmentPartial] = []
            for j, (position, value, query_prefix_norm, _plist) in enumerate(segments):
                lo, hi = int(alive_offsets[j]), int(alive_offsets[j + 1])
                partials.append(SegmentPartial(
                    position=position, value=value,
                    query_prefix_norm=query_prefix_norm,
                    slots=slots[lo:hi], contrib=contrib[lo:hi],
                    tails=tails[lo:hi] if use_l2 else None,
                    decay_factors=decay_factors[lo:hi],
                    min_ts=seg_min[j], max_ts=seg_max[j],
                    traversed=seg_traversed[j], removed=seg_removed[j],
                ))
            return partials, sum(seg_traversed), sum(seg_removed)
        finally:
            # Deferred physical bookkeeping, exactly as in the fused scan:
            # truncations and compactions may rewrite chunks in place or
            # replace the arena arrays, so they run after every gather.
            for plist, count in ordered_drops:
                plist.drop_oldest(count)
            for plist, cut_eff, live, alive_mask, j in lazy_updates:
                plist.note_lazy_expiry(cut_eff, plist.physical_size - live,
                                       seg_min[j], seg_max[j])
                if len(alive_mask) != plist.physical_size:
                    lo, hi = plist.region
                    alive_mask = arena.ts[lo:hi] >= cut_eff
                self._maybe_compact(plist, alive_mask)

    def gather_inv_partials(self, segments: Sequence[tuple[int, float, Any]],
                            *, cutoff: float,
                            ) -> tuple[list[SegmentPartial], int, int]:
        if not segments:
            return [], 0, 0
        arena = self._arena
        seg_lists = [segment[2] for segment in segments]
        nseg = len(seg_lists)
        idx, lengths, offsets = self._gather_indices(seg_lists, reverse=True)
        timestamps = arena.ts[idx]
        seg_removed = [0] * nseg
        expired: list[tuple[Any, int]] = []
        if any(plist._min_ts < cutoff for plist in seg_lists):
            alive = timestamps >= cutoff
            alive_counts = np.add.reduceat(alive, offsets[:-1])
            for j in range(nseg):
                if alive_counts[j] < lengths[j]:
                    seg_removed[j] = int(lengths[j]) - int(alive_counts[j])
                    expired.append((seg_lists[j], seg_removed[j]))
            if expired:
                idx = idx[alive]
                timestamps = timestamps[alive]
        else:
            alive_counts = lengths
        slots = arena.slots[idx]
        contrib = np.repeat(np.asarray([segment[1] for segment in segments]),
                            alive_counts)
        contrib *= arena.values[idx]
        # Truncations happen only after every arena gather above.
        removed = 0
        for plist, count in expired:
            removed += plist.drop_oldest(count)
        alive_offsets = np.empty(nseg + 1, dtype=np.int64)
        alive_offsets[0] = 0
        np.cumsum(alive_counts, out=alive_offsets[1:])
        partials: list[SegmentPartial] = []
        for j, (position, value, _plist) in enumerate(segments):
            lo, hi = int(alive_offsets[j]), int(alive_offsets[j + 1])
            seg_ts = timestamps[lo:hi]
            partials.append(SegmentPartial(
                position=position, value=value, query_prefix_norm=0.0,
                slots=slots[lo:hi], contrib=contrib[lo:hi],
                timestamps=seg_ts,
                min_ts=float(seg_ts[-1]) if hi > lo else _INF,
                max_ts=float(seg_ts[0]) if hi > lo else -_INF,
                traversed=hi - lo, removed=seg_removed[j],
            ))
        return partials, len(idx), removed

    @staticmethod
    def _concat_partials(arrays: list[np.ndarray]) -> np.ndarray:
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)

    def apply_scan_partials(self, partials: Sequence[SegmentPartial],
                            seg_bounds: Sequence[tuple[float, float]], *,
                            sz1: float, threshold: float, decay: float,
                            now: float, use_ap: bool, use_l2: bool,
                            acc: ScoreAccumulator) -> None:
        """Replay the global admission sequence over merged scan partials.

        ``partials`` must be in global scan order (descending query
        position) with ``seg_bounds[j] = (rs1, rs2)`` holding the
        remaining-score bounds at each segment's position.  Runs the exact
        per-segment pass of the fused single-process kernel — same
        tri-state admission (``math.exp`` at the live extremes), same
        masks, same accumulation order — over the pre-gathered arrays.
        """
        resolve = self._resolve_admission
        tri = [resolve(rs1, rs2, threshold, decay, now, partial.min_ts,
                       partial.max_ts) if len(partial.slots) else _ADMIT_NONE
               for partial, (rs1, rs2) in zip(partials, seg_bounds)]
        if all(outcome == _ADMIT_NONE for outcome in tri):
            # Within one pass nothing can have started earlier, so no
            # candidate can form (the fused kernel's early exit).
            return
        nseg = len(partials)
        counts = np.asarray([len(partial.slots) for partial in partials],
                            dtype=np.int64)
        offsets = np.empty(nseg + 1, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        if total == 0:
            return
        slots = self._concat_partials([partial.slots for partial in partials])
        contrib = self._concat_partials([partial.contrib for partial in partials])
        decay_factors = (self._concat_partials(
            [partial.decay_factors for partial in partials])
            if partials[0].decay_factors is not None else None)
        tails = (self._concat_partials([partial.tails for partial in partials])
                 if use_l2 else None)
        self._fused_prefix_segments(
            self._arena, None, slots, contrib, tails, decay_factors, tri,
            [partial.value for partial in partials],
            [partial.query_prefix_norm for partial in partials],
            [bound[0] for bound in seg_bounds],
            [bound[1] for bound in seg_bounds],
            offsets, total, decay, now, sz1, use_ap, use_l2, threshold, acc)

    def apply_inv_partials(self, partials: Sequence[SegmentPartial],
                           acc: ScoreAccumulator) -> None:
        """Replay the INV accumulation over merged scan partials.

        ``partials`` must be in query order; the concatenated gather feeds
        the same sequential ``np.add.at`` pass as the single-process
        kernel, so accumulation order and arrival timestamps are identical.
        """
        if not partials:
            return
        slots = self._concat_partials([partial.slots for partial in partials])
        if not len(slots):
            return
        contrib = self._concat_partials([partial.contrib for partial in partials])
        timestamps = self._concat_partials(
            [partial.timestamps for partial in partials])
        self._fused_inv_pass(slots, contrib, timestamps, acc)

    def _fused_prefix_segments(self, arena: PostingArena, idx: np.ndarray,
                               slots: np.ndarray, contrib: np.ndarray | None,
                               tails: np.ndarray | None,
                               decay_factors: np.ndarray | None,
                               tri: list[int], seg_values: list[float],
                               seg_qpns: list[float], seg_rs1: list[float],
                               seg_rs2: list[float], offsets: np.ndarray,
                               hoisted: int, decay: float, now: float,
                               sz1: float, use_ap: bool, use_l2: bool,
                               threshold: float,
                               acc: NumpyAccumulator) -> None:
        """Replay the per-segment scans over the hoisted whole-query gather.

        Entries of every segment sit back to back (in scan order) behind
        ``idx``/``slots``; contributions ``x_j·y_j``, decayed l2bound
        tails and decay factors are precomputed once over the first
        ``hoisted`` entries — the leading run of segments that can admit
        newcomers.  Segments past that run (``_ADMIT_NONE``, the common
        tail of the scan once the remaining score drops below θ) only
        touch already-started candidates, so their values/tails are
        gathered lazily for just those few entries.  Small segments take
        a scalar loop over the hoisted slices — the ufunc-dispatch
        overhead of a dozen array ops dwarfs a dozen Python iterations.

        Decision-for-decision this is the per-term kernel sequence: same
        masks, same accumulation order, same prune marks on the shared
        slot state.  What the fusion removes is the per-term Python
        driver, and the per-segment gathers, products and ``exp`` calls.
        """
        epoch = self._epoch
        state = self._slot_state
        scores = self._slot_score
        sf = self._slot_sf
        touched = acc._touched
        for j, admit in enumerate(tri):
            lo, hi = int(offsets[j]), int(offsets[j + 1])
            count = hi - lo
            if count == 0:
                continue
            seg_slots = slots[lo:hi]
            if lo >= hoisted:
                # Lazy segment (normally _ADMIT_NONE): compress to the
                # started candidates before gathering anything heavy.
                marks = state[seg_slots]
                started = marks == epoch
                if admit == _ADMIT_NONE:
                    index = np.nonzero(started)[0]
                    if not len(index):
                        continue
                    sub_idx = idx[lo:hi][index]
                    sub_slots = seg_slots[index]
                    accumulated = scores[sub_slots]
                    accumulated = accumulated + seg_values[j] * arena.values[sub_idx]
                    if use_l2:
                        sub_tails = seg_qpns[j] * arena.pnorms[sub_idx]
                        sub_tails *= np.exp(-decay * (now - arena.ts[sub_idx]))
                        keep = (accumulated + sub_tails) >= threshold
                        pruned_slots = sub_slots[~keep]
                        if len(pruned_slots):
                            state[pruned_slots] = -epoch
                        kept_slots = sub_slots[keep]
                        if len(kept_slots):
                            scores[kept_slots] = accumulated[keep]
                    else:
                        scores[sub_slots] = accumulated
                    continue
                # Rare: an admitting segment after the hoisted run (the
                # ℓ₂ remaining-score bound is not strictly monotone in
                # the per-segment timestamp extremes).  Gather it now and
                # fall through to the shared processing below.
                seg_idx = idx[lo:hi]
                seg_contrib = seg_values[j] * arena.values[seg_idx]
                if use_l2 or admit == _ADMIT_PER_ENTRY:
                    seg_df = np.exp(-decay * (now - arena.ts[seg_idx]))
                else:
                    seg_df = None
                if use_l2:
                    seg_tails = seg_qpns[j] * arena.pnorms[seg_idx]
                    seg_tails *= seg_df
                else:
                    seg_tails = None
            else:
                seg_contrib = contrib[lo:hi]
                seg_tails = tails[lo:hi] if use_l2 else None
                seg_df = decay_factors[lo:hi] if decay_factors is not None else None
                if count <= _SCALAR_SCAN_CUTOFF:
                    self._scan_segment_scalar(
                        seg_slots.tolist(), seg_contrib.tolist(),
                        seg_tails.tolist() if use_l2 else None,
                        seg_df.tolist() if admit == _ADMIT_PER_ENTRY else None,
                        admit, seg_rs1[j] if seg_rs1 else 0.0,
                        seg_rs2[j] if seg_rs2 else 0.0, sz1, use_ap, use_l2,
                        threshold, acc)
                    continue
                marks = state[seg_slots]
                started = marks == epoch
                if admit == _ADMIT_NONE:
                    index = np.nonzero(started)[0]
                    if not len(index):
                        continue
                    sub_slots = seg_slots[index]
                    accumulated = scores[sub_slots] + seg_contrib[index]
                    if use_l2:
                        keep = (accumulated + seg_tails[index]) >= threshold
                        pruned_slots = sub_slots[~keep]
                        if len(pruned_slots):
                            state[pruned_slots] = -epoch
                        kept_slots = sub_slots[keep]
                        if len(kept_slots):
                            scores[kept_slots] = accumulated[keep]
                    else:
                        scores[sub_slots] = accumulated
                    continue
            active = marks != -epoch
            if admit == _ADMIT_ALL:
                if use_ap:
                    process = active & (started | (sf[seg_slots] >= sz1))
                else:
                    process = active
            else:
                newcomer_ok = np.minimum(
                    seg_rs1[j], seg_rs2[j] * seg_df) >= threshold
                if use_ap:
                    newcomer_ok &= sf[seg_slots] >= sz1
                process = active & (started | newcomer_ok)
            accumulated = scores[seg_slots] + seg_contrib
            if use_l2:
                prune = (accumulated + seg_tails) < threshold
                prune &= process
                pruned_slots = seg_slots[prune]
                if len(pruned_slots):
                    state[pruned_slots] = -epoch
                keep = ~prune
                keep &= process
            else:
                keep = process
            kept_slots = seg_slots[keep]
            if len(kept_slots):
                scores[kept_slots] = accumulated[keep]
                state[kept_slots] = epoch
                fresh = seg_slots[keep & ~started]
                if len(fresh):
                    touched.append(fresh)

    def _scan_segment_scalar(self, seg_slots: list[int],
                             seg_contrib: list[float],
                             seg_tails: list[float] | None,
                             seg_df: list[float] | None, admit: int,
                             rs1: float, rs2: float, sz1: float,
                             use_ap: bool, use_l2: bool, threshold: float,
                             acc: NumpyAccumulator) -> None:
        """Scalar twin of the hoisted segment processing for short lists."""
        epoch = self._epoch
        state = self._slot_state
        scores = self._slot_score
        sf = self._slot_sf
        fresh: list[int] = []
        for position, slot in enumerate(seg_slots):
            mark = state[slot]
            if mark == -epoch:
                continue
            started = mark == epoch
            if not started:
                if admit == _ADMIT_NONE:
                    continue
                if admit == _ADMIT_PER_ENTRY and min(
                        rs1, rs2 * seg_df[position]) < threshold:
                    continue
                if use_ap and sf[slot] < sz1:
                    continue
            accumulated = (scores[slot] if started else 0.0) + seg_contrib[position]
            if use_l2 and accumulated + seg_tails[position] < threshold:
                state[slot] = -epoch
                continue
            scores[slot] = accumulated
            if not started:
                state[slot] = epoch
                fresh.append(slot)
        if fresh:
            acc._touched.append(np.asarray(fresh, dtype=np.int64))

    def _fused_inv_pass(self, slots: np.ndarray, contrib: np.ndarray,
                        timestamps: np.ndarray | None,
                        acc: NumpyAccumulator) -> None:
        """Unfiltered INV accumulation over a whole query's gather.

        ``np.add.at`` accumulates sequentially in gather order (bitwise
        the reference order); first appearances — the candidate insertion
        order, and the arrival timestamps for the streaming variant — are
        found with a reversed scatter (last write wins, so the reversed
        write leaves each slot's *first* gather position).
        """
        n = len(slots)
        scores = self._slot_score
        positions = np.arange(n, dtype=np.int64)
        mark = self._slot_mark
        mark[slots[::-1]] = positions[::-1]
        first_mask = mark[slots] == positions
        first_slots = slots[first_mask]  # in gather (insertion) order
        np.add.at(scores, slots, contrib)
        self._slot_state[first_slots] = self._epoch
        if timestamps is not None:
            self._slot_arrival[first_slots] = timestamps[first_mask]
        acc._touched.append(first_slots)

    # -- candidate verification ------------------------------------------------

    def _verification_bounds(self, query: SparseVector,
                             candidates: NumpyCandidateSet):
        """Fused gather of the slot metadata and the ps1/ds1/sz2 bounds.

        Returns ``(valid, ps1, ds1, sz2, timestamps)`` where the bounds are
        *undecayed* and bitwise identical to
        :func:`repro.indexes.bounds.verification_bounds`; ``valid`` masks
        candidates still present in the residual/Q store.
        """
        slots = candidates.slots
        accumulated = candidates.scores
        valid = self._slot_valid[slots]
        meta = self._slot_meta[slots]
        ps1 = accumulated + meta[:, 0]
        residual_max = meta[:, 1]
        query_max = query.max_value
        ds1 = accumulated + np.minimum(query_max * meta[:, 2],
                                       residual_max * query.value_sum)
        sz2 = accumulated + (np.minimum(float(len(query)), meta[:, 3])
                             * query_max * residual_max)
        return valid, ps1, ds1, sz2, meta[:, 4]

    def verify_batch(self, query: SparseVector, candidates: CandidateSet,
                     residual: ResidualIndex, threshold: float,
                     stats: JoinStatistics) -> list[tuple[SparseVector, float]]:
        if not len(candidates):
            return []
        valid, ps1, ds1, sz2, _ = self._verification_bounds(query, candidates)
        weakest = np.minimum(np.minimum(ps1, ds1), sz2)
        survivors = np.nonzero(valid & (weakest >= threshold))[0]
        stats.full_similarities += len(survivors)
        if not len(survivors):
            return []
        slot_list = candidates.slots[survivors].tolist()
        accumulated_list = candidates.scores[survivors].tolist()
        entries = self._slot_entries
        matches: list[tuple[SparseVector, float]] = []
        self.begin_query(query)
        try:
            for slot, accumulated in zip(slot_list, accumulated_list):
                entry = entries[slot]
                score = accumulated + self._residual_dot_fast(query, entry)
                if score >= threshold:
                    matches.append((entry.vector, score))
        finally:
            self.end_query(query)
        return matches

    def verify_stream(self, query: SparseVector, candidates: CandidateSet,
                      residual: ResidualIndex, threshold: float,
                      decay: float, now: float,
                      stats: JoinStatistics) -> list[SimilarPair]:
        if not len(candidates):
            return []
        valid, ps1, ds1, sz2, timestamps = self._verification_bounds(
            query, candidates)
        slots = candidates.slots
        decayed = np.exp(-decay * (now - timestamps))
        # All three bounds must clear the (decayed) threshold, so comparing
        # their minimum once is the same mask with fewer passes.  np.exp
        # guard band; the exact math.exp decision is re-taken below.
        guard = threshold - threshold * _GUARD_BAND
        weakest = np.minimum(np.minimum(ps1, ds1), sz2)
        near = np.nonzero(valid & (weakest * decayed >= guard))[0]
        if not len(near):
            return []
        slot_list = slots[near].tolist()
        ts_list = timestamps[near].tolist()
        # Multiplication by the (positive) decay factor is monotone even in
        # floating point, so checking the weakest bound is bit-for-bit the
        # same decision as the reference backend's three separate checks.
        weakest_list = weakest[near].tolist()
        accumulated_list = candidates.scores[near].tolist()
        full_similarities = 0
        # First pass: exact math.exp bound decisions (reference parity),
        # collecting the survivors whose residual dot still needs finishing.
        survivors: list[tuple[int, float, float, float]] = []
        for position, slot in enumerate(slot_list):
            delta = now - ts_list[position]
            decay_factor = math.exp(-decay * delta)
            if weakest_list[position] * decay_factor < threshold:
                continue
            full_similarities += 1
            survivors.append((slot, accumulated_list[position], delta,
                              decay_factor))
        stats.full_similarities += full_similarities
        if not survivors:
            return []
        ids = self._slot_ids
        pairs: list[SimilarPair] = []
        self.begin_query(query)
        try:
            dots = self._batched_residual_dots(
                query, [slot for slot, _, _, _ in survivors])
            for (slot, accumulated, delta, decay_factor), rdot in zip(survivors,
                                                                      dots):
                dot = accumulated + rdot
                similarity = dot * decay_factor
                if similarity >= threshold:
                    pairs.append(SimilarPair.make(
                        query.vector_id, int(ids[slot]), similarity,
                        time_delta=delta, dot=dot, reported_at=now,
                    ))
        finally:
            self.end_query(query)
        return pairs

    def verify_inv_stream(self, query: SparseVector, candidates: CandidateSet,
                          threshold: float, decay: float, now: float,
                          stats: JoinStatistics) -> list[SimilarPair]:
        count = len(candidates)
        stats.full_similarities += count
        if not count:
            return []
        slots = candidates.slots
        scores = candidates.scores
        arrivals = self._slot_arrival[slots]
        similarities = scores * np.exp(-decay * (now - arrivals))
        guard = threshold - threshold * _GUARD_BAND
        near = np.nonzero(similarities >= guard)[0]
        if not len(near):
            return []
        slot_list = slots[near].tolist()
        arrival_list = arrivals[near].tolist()
        dot_list = scores[near].tolist()
        ids = self._slot_ids
        pairs: list[SimilarPair] = []
        for position, slot in enumerate(slot_list):
            delta = now - arrival_list[position]
            dot = dot_list[position]
            similarity = dot * math.exp(-decay * delta)
            if similarity >= threshold:
                pairs.append(SimilarPair.make(
                    query.vector_id, int(ids[slot]), similarity,
                    time_delta=delta, dot=dot, reported_at=now,
                ))
        return pairs

    # -- verification dot products -------------------------------------------

    def begin_query(self, vector: SparseVector) -> None:
        dims, values = self._arrays_of(vector)
        max_dim = int(dims[-1])
        if max_dim >= _DENSE_DIM_LIMIT:
            # Pathologically sparse dimension space: fall back to the
            # dict-based dot products rather than growing the scratch array.
            self._dense_active = False
            self._query_vector = vector
            return
        if max_dim >= len(self._dense):
            capacity = len(self._dense)
            while capacity <= max_dim:
                capacity *= 2
            self._dense = np.zeros(capacity, dtype=np.float64)
        self._dense[dims] = values
        self._query_dims = dims
        self._query_vector = vector
        self._dense_active = True

    def end_query(self, vector: SparseVector) -> None:
        if self._dense_active and self._query_dims is not None:
            self._dense[self._query_dims] = 0.0
        self._query_dims = None
        self._query_vector = None
        self._dense_active = False

    def _batched_residual_dots(self, query: SparseVector,
                               slot_list: list[int]) -> list[float]:
        """Finish the residual dot of several candidates in one array pass.

        The products of every candidate's residual prefix against the dense
        query scratch are computed by a single concatenated multiply; each
        candidate's reduction stays sequential (per segment, in ascending
        dimension order, summed left to right from 0 like builtin ``sum``),
        so every returned dot is bit-for-bit the value
        :meth:`residual_dot` would produce.
        """
        entries = self._slot_entries
        if not self._dense_active:
            return [entries[slot].residual_dot(query) for slot in slot_list]
        dense = self._dense
        dense_len = len(dense)
        slot_residual = self._slot_residual
        counts: list[int] = []
        dims_parts: list[np.ndarray] = []
        vals_parts: list[np.ndarray] = []
        for slot in slot_list:
            residual_dims, residual_values, last_dim = slot_residual[slot]
            if last_dim < 0:
                counts.append(0)
            elif last_dim >= dense_len:
                counts.append(-1)
            else:
                counts.append(len(residual_dims))
                dims_parts.append(residual_dims)
                vals_parts.append(residual_values)
        if not dims_parts:
            dots = _EMPTY_FLOAT
        else:
            if len(dims_parts) == 1:
                cat_dims = dims_parts[0]
                cat_vals = vals_parts[0]
            else:
                cat_dims = np.concatenate(dims_parts)
                cat_vals = np.concatenate(vals_parts)
            part_counts = np.asarray([count for count in counts if count > 0],
                                     dtype=np.int64)
            dots = self._segment_dots(cat_dims, cat_vals, part_counts)
        dot_list = dots.tolist()
        results: list[float] = []
        offset = 0
        for index, count in enumerate(counts):
            if count > 0:
                results.append(dot_list[offset])
                offset += 1
            elif count == 0:
                results.append(0.0)
            else:
                results.append(entries[slot_list[index]].residual_dot(query))
        return results

    def _segment_dots(self, cat_dims: np.ndarray, cat_vals: np.ndarray,
                      part_counts: np.ndarray) -> np.ndarray:
        """Per-candidate sequential reductions over the concatenated prefixes.

        The seam the compiled backend overrides: given the candidates'
        residual ``(dims, values)`` arrays concatenated back to back and
        the per-candidate ``part_counts``, return each candidate's dot
        against the dense query scratch.  The unbuffered sequential
        scatter-add accumulates every candidate's products left to right
        from ``0.0``, bit-for-bit the reference reduction.
        """
        products = cat_vals * self._dense[cat_dims]
        segment_ids = np.repeat(
            np.arange(len(part_counts), dtype=np.int64), part_counts)
        dots = np.zeros(len(part_counts), dtype=np.float64)
        np.add.at(dots, segment_ids, products)
        return dots

    def _residual_dot_fast(self, query: SparseVector,
                           entry: ResidualEntry) -> float:
        """Hot-loop twin of :meth:`residual_dot` with the checks flattened.

        Identical result (the sequential reduction starts at 0.0 and is
        added to the accumulated score by the caller, exactly like the
        reference backend's ``accumulated + residual_dot``).
        """
        if not entry.residual:
            return 0.0
        if not self._dense_active:
            return entry.residual_dot(query)
        cached = entry.array_cache
        if cached is None:
            cached = self._build_residual_arrays(entry)
        residual_dims, residual_values = cached
        dense = self._dense
        if int(residual_dims[-1]) >= len(dense):
            return entry.residual_dot(query)
        return sum((residual_values * dense[residual_dims]).tolist())

    def residual_dot(self, query: SparseVector, entry: ResidualEntry) -> float:
        if not self._dense_active:
            return entry.residual_dot(query)
        if not entry.residual:
            return 0.0
        cached = entry.array_cache
        if cached is None:
            cached = self._build_residual_arrays(entry)
        residual_dims, residual_values = cached
        if int(residual_dims[-1]) >= len(self._dense):
            return entry.residual_dot(query)
        products = residual_values * self._dense[residual_dims]
        return _sequential_sum(products)

    def dots_for(self, query: SparseVector,
                 others: Sequence[SparseVector]) -> list[float]:
        self.begin_query(query)
        try:
            if not self._dense_active:
                return [query.dot(other) for other in others]
            dense = self._dense
            results = []
            for other in others:
                dims, values = self._arrays_of(other)
                if int(dims[-1]) >= len(dense):
                    results.append(query.dot(other))
                else:
                    results.append(_sequential_sum(values * dense[dims]))
            return results
        finally:
            self.end_query(query)

    def _arrays_of(self, vector: SparseVector) -> tuple[np.ndarray, np.ndarray]:
        cached = self._vector_entry(vector)
        return cached[1], cached[2]

    def _vector_entry(self, vector: SparseVector) -> list:
        key = id(vector)
        cached = self._vector_arrays.get(key)
        if cached is None:
            if len(self._vector_arrays) >= 65536:
                self._vector_arrays.clear()
            cached = [vector,
                      np.asarray(vector.dims, dtype=np.int64),
                      np.asarray(vector.values, dtype=np.float64),
                      None, None]
            self._vector_arrays[key] = cached
        return cached


def _sequential_sum(products: np.ndarray) -> float:
    """Left-to-right reduction, bit-for-bit identical to the Python loops.

    ``np.sum`` uses pairwise summation, which rounds differently from the
    reference backend's sequential adds; the arrays reduced here (residual
    prefixes, single sparse vectors) are short, so the scalar loop costs
    little and buys exact output parity.
    """
    return sum(products.tolist())
