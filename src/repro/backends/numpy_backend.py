"""NumPy-vectorised compute backend.

Posting lists are stored as growable contiguous arrays — vector-id slots,
weights ``x_j``, prefix magnitudes ``‖x'_j‖`` and timestamps ``t(x)`` in
four parallel ``float64``/``int64`` buffers with a head offset, mirroring
the doubling/halving resizing policy of the paper's circular byte buffer
(Section 6.2) in flat form.  The three hot loops then become array kernels:

* **candidate accumulation** — one gather / fused-multiply / scatter per
  posting list instead of a Python loop per posting,
* **decay and time filtering** — ``searchsorted`` head truncation for
  time-ordered lists, boolean-mask compaction otherwise, and element-wise
  ``exp`` for the decayed bounds,
* **verification dot products** — the query is scattered once into a dense
  scratch vector; each residual prefix is finished with a vectorised
  gather-multiply whose final reduction stays sequential so the result is
  bit-for-bit identical to the reference backend.

Cross-query candidate state lives in dense per-vector arrays indexed by an
interned *slot* (assigned on first appearance of a vector id), stamped with
a per-query epoch so no per-query allocation or clearing is needed.  Memory
therefore scales with the number of distinct vectors indexed, not with the
magnitude of their ids.

Floating-point parity with the reference backend: every accumulation adds
the same IEEE-754 products in the same order (a vector contributes at most
one posting per list), so accumulated scores and reported similarities are
bitwise identical.  The only divergence is ``np.exp`` vs ``math.exp`` in
the *conservative filter bounds*, which can differ in the last ulp; a pair
would have to sit within one ulp of a bound for the outputs to differ,
which the equivalence suite checks never happens on the paper's profiles.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.backends.base import ScoreAccumulator, SimilarityKernel, SizeFilterMap
from repro.core.results import JoinStatistics, SimilarPair
from repro.core.vector import SparseVector
from repro.indexes.posting import PostingEntry
from repro.indexes.residual import ResidualEntry, ResidualIndex

__all__ = ["NumpyKernel", "ArrayPostingList"]

_MIN_CAPACITY = 8
_INITIAL_SLOTS = 64
_INITIAL_DENSE = 1024
#: Dimensions above this threshold fall back to dict-based dot products
#: instead of growing the dense scratch vector (2**24 floats = 128 MiB).
_DENSE_DIM_LIMIT = 1 << 24
#: Posting lists at or below this length are scanned by a scalar loop over
#: the same slot state: per-call ufunc dispatch overhead beats the loop on
#: short lists (the regime of short horizons / small indexes), while long
#: lists — the actual hot path — go through the vectorised kernels.
_SCALAR_SCAN_CUTOFF = 32


class ArrayPostingList:
    """A posting list ``I_j`` as four growable contiguous arrays.

    Implements the same interface as
    :class:`~repro.indexes.posting.PostingList` (so checkpointing and the
    generic index-maintenance code work unchanged) while exposing the live
    regions as array views for the scan kernels.  Vector ids are stored as
    kernel-interned slots; iteration translates them back.

    The capacity doubles when full and halves when occupancy drops below a
    quarter, the resizing policy of Section 6.2.
    """

    __slots__ = ("_kernel", "_slots", "_values", "_pnorms", "_ts",
                 "_head", "_size")

    def __init__(self, kernel: "NumpyKernel") -> None:
        self._kernel = kernel
        self._slots = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._values = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._pnorms = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._ts = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._head = 0
        self._size = 0

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def capacity(self) -> int:
        """Current allocated capacity of the backing arrays."""
        return len(self._slots)

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Views of the live region: ``(slots, values, prefix_norms, timestamps)``."""
        lo, hi = self._head, self._head + self._size
        return (self._slots[lo:hi], self._values[lo:hi],
                self._pnorms[lo:hi], self._ts[lo:hi])

    def __iter__(self):
        """Iterate oldest → newest, materialising :class:`PostingEntry` objects."""
        ids = self._kernel._slot_ids
        for offset in range(self._head, self._head + self._size):
            yield PostingEntry(
                vector_id=int(ids[self._slots[offset]]),
                value=float(self._values[offset]),
                prefix_norm=float(self._pnorms[offset]),
                timestamp=float(self._ts[offset]),
            )

    def iter_newest_first(self):
        """Iterate newest → oldest (backward CG scan)."""
        ids = self._kernel._slot_ids
        for offset in range(self._head + self._size - 1, self._head - 1, -1):
            yield PostingEntry(
                vector_id=int(ids[self._slots[offset]]),
                value=float(self._values[offset]),
                prefix_norm=float(self._pnorms[offset]),
                timestamp=float(self._ts[offset]),
            )

    def to_list(self) -> list[PostingEntry]:
        """Copy of the postings from oldest to newest."""
        return list(self)

    # -- mutation ------------------------------------------------------------

    def append(self, entry: PostingEntry) -> None:
        """Append a posting at the tail."""
        tail = self._head + self._size
        if tail == len(self._slots):
            self._repack(grow=self._size * 2 > len(self._slots))
            tail = self._head + self._size
        self._slots[tail] = self._kernel._intern(entry.vector_id)
        self._values[tail] = entry.value
        self._pnorms[tail] = entry.prefix_norm
        self._ts[tail] = entry.timestamp
        self._size += 1

    def drop_oldest(self, count: int) -> int:
        """Remove up to ``count`` postings from the head; return the number dropped."""
        if count <= 0:
            return 0
        dropped = min(count, self._size)
        self._head += dropped
        self._size -= dropped
        self._maybe_shrink()
        return dropped

    def keep_newest(self, count: int) -> int:
        """Keep only the ``count`` newest postings (backward-scan truncation)."""
        return self.drop_oldest(self._size - max(count, 0))

    def truncate_older_than(self, cutoff: float) -> int:
        """Drop the head postings with ``timestamp < cutoff`` (time-ordered lists)."""
        live_ts = self._ts[self._head:self._head + self._size]
        return self.drop_oldest(int(np.searchsorted(live_ts, cutoff, side="left")))

    def compress(self, keep_mask: np.ndarray) -> int:
        """Keep only the live postings selected by ``keep_mask``; return removals."""
        kept = int(np.count_nonzero(keep_mask))
        removed = self._size - kept
        if removed == 0:
            return 0
        lo, hi = self._head, self._head + self._size
        for buf in (self._slots, self._values, self._pnorms, self._ts):
            buf[:kept] = buf[lo:hi][keep_mask]
        self._head = 0
        self._size = kept
        self._maybe_shrink()
        return removed

    def compact(self, cutoff: float) -> int:
        """Remove every posting with ``timestamp < cutoff`` regardless of order."""
        live_ts = self._ts[self._head:self._head + self._size]
        return self.compress(live_ts >= cutoff)

    def replace_all_entries(self, entries: list[PostingEntry]) -> None:
        """Replace the whole content with ``entries`` (oldest first)."""
        self._head = 0
        self._size = 0
        needed = max(_MIN_CAPACITY, len(entries))
        if needed > len(self._slots) or needed * 4 < len(self._slots):
            capacity = _MIN_CAPACITY
            while capacity < needed:
                capacity *= 2
            self._reallocate(capacity)
        for entry in entries:
            self.append(entry)

    # -- internal ------------------------------------------------------------

    def _maybe_shrink(self) -> None:
        capacity = len(self._slots)
        if capacity > _MIN_CAPACITY and self._size * 4 < capacity:
            self._repack(grow=False, capacity=max(_MIN_CAPACITY, capacity // 2))
        elif self._head > self._size:
            # Reclaim the dead head region without resizing.
            self._repack(grow=False, capacity=capacity)

    def _repack(self, *, grow: bool, capacity: int | None = None) -> None:
        if capacity is None:
            capacity = len(self._slots) * 2 if grow else len(self._slots)
        self._reallocate(max(capacity, self._size, _MIN_CAPACITY))

    def _reallocate(self, capacity: int) -> None:
        lo, hi = self._head, self._head + self._size
        for name in ("_slots", "_values", "_pnorms", "_ts"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[:self._size] = old[lo:hi]
            setattr(self, name, fresh)
        self._head = 0


class NumpyAccumulator(ScoreAccumulator):
    """Epoch-stamped dense score table; candidates gathered at finalisation."""

    __slots__ = ("_kernel", "_epoch", "_touched", "_final_slots")

    def __init__(self, kernel: "NumpyKernel", epoch: int) -> None:
        self._kernel = kernel
        self._epoch = epoch
        #: Slot arrays appended by the scan kernels, in accumulation order.
        self._touched: list[np.ndarray] = []
        self._final_slots: np.ndarray | None = None

    def _finalize_slots(self) -> np.ndarray:
        if self._final_slots is None:
            if not self._touched:
                self._final_slots = np.empty(0, dtype=np.int64)
            else:
                stacked = (self._touched[0] if len(self._touched) == 1
                           else np.concatenate(self._touched))
                unique, first_position = np.unique(stacked, return_index=True)
                # Reference parity: dict insertion order is the order of the
                # first successful accumulation.
                unique = unique[np.argsort(first_position)]
                alive = self._kernel._slot_score_epoch[unique] == self._epoch
                self._final_slots = unique[alive]
        return self._final_slots

    def candidates(self) -> dict[int, float]:
        slots = self._finalize_slots()
        ids = self._kernel._slot_ids[slots]
        scores = self._kernel._slot_score[slots]
        return {int(vector_id): float(score)
                for vector_id, score in zip(ids.tolist(), scores.tolist())}

    def arrivals(self) -> dict[int, float]:
        slots = self._finalize_slots()
        ids = self._kernel._slot_ids[slots]
        arrivals = self._kernel._slot_arrival[slots]
        return {int(vector_id): float(arrival)
                for vector_id, arrival in zip(ids.tolist(), arrivals.tolist())}


class NumpySizeFilter(SizeFilterMap):
    """Dense slot-indexed array of ``|x| · vm_x`` values (+inf when absent)."""

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "NumpyKernel") -> None:
        self._kernel = kernel

    def set(self, vector_id: int, value: float) -> None:
        # Intern first: it may reallocate the kernel's slot arrays.
        slot = self._kernel._intern(vector_id)
        self._kernel._slot_sf[slot] = value

    def discard(self, vector_id: int) -> None:
        slot = self._kernel._slot_of.get(vector_id)
        if slot is not None:
            self._kernel._slot_sf[slot] = np.inf

    def get(self, vector_id: int) -> float | None:
        slot = self._kernel._slot_of.get(vector_id)
        if slot is None:
            return None
        value = float(self._kernel._slot_sf[slot])
        return None if value == math.inf else value

    def values_at(self, slots: np.ndarray) -> np.ndarray:
        return self._kernel._slot_sf[slots]


class NumpyKernel(SimilarityKernel):
    """Vectorised array kernels over slot-interned candidate state."""

    name = "numpy"

    def __init__(self) -> None:
        self._slot_of: dict[int, int] = {}
        self._slot_ids = np.empty(_INITIAL_SLOTS, dtype=np.int64)
        self._slot_score = np.zeros(_INITIAL_SLOTS, dtype=np.float64)
        self._slot_score_epoch = np.full(_INITIAL_SLOTS, -1, dtype=np.int64)
        self._slot_pruned_epoch = np.full(_INITIAL_SLOTS, -1, dtype=np.int64)
        self._slot_sf = np.full(_INITIAL_SLOTS, np.inf, dtype=np.float64)
        self._slot_arrival = np.zeros(_INITIAL_SLOTS, dtype=np.float64)
        self._epoch = 0
        self._dense = np.zeros(_INITIAL_DENSE, dtype=np.float64)
        self._query_dims: np.ndarray | None = None
        self._query_vector: SparseVector | None = None
        self._dense_active = False
        # id(vector) -> (vector, dims, values).  The strong reference to the
        # vector pins its id, so a recycled id can never alias a stale entry.
        self._vector_arrays: dict[
            int, tuple[SparseVector, np.ndarray, np.ndarray]] = {}

    # -- slot interning ------------------------------------------------------

    def _intern(self, vector_id: int) -> int:
        slot = self._slot_of.get(vector_id)
        if slot is None:
            slot = len(self._slot_of)
            if slot == len(self._slot_ids):
                self._grow_slots(slot + 1)
            self._slot_of[vector_id] = slot
            self._slot_ids[slot] = vector_id
        return slot

    def _grow_slots(self, needed: int) -> None:
        capacity = len(self._slot_ids)
        while capacity < needed:
            capacity *= 2
        for name, fill in (("_slot_ids", None), ("_slot_score", 0.0),
                           ("_slot_score_epoch", -1), ("_slot_pruned_epoch", -1),
                           ("_slot_sf", np.inf), ("_slot_arrival", 0.0)):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[:len(old)] = old
            if fill is not None:
                fresh[len(old):] = fill
            setattr(self, name, fresh)

    # -- storage factories ---------------------------------------------------

    def new_posting_list(self) -> ArrayPostingList:
        return ArrayPostingList(self)

    def new_accumulator(self) -> NumpyAccumulator:
        self._epoch += 1
        return NumpyAccumulator(self, self._epoch)

    def new_size_filter(self) -> NumpySizeFilter:
        return NumpySizeFilter(self)

    # -- INV scans -----------------------------------------------------------

    def _accumulate(self, slots: np.ndarray, contributions: np.ndarray,
                    acc: NumpyAccumulator) -> None:
        """Unfiltered scatter-accumulate (each slot appears at most once)."""
        epoch_marks = self._slot_score_epoch
        scores = self._slot_score
        started = epoch_marks[slots] == self._epoch
        scores[slots] = np.where(started, scores[slots], 0.0) + contributions
        epoch_marks[slots] = self._epoch
        acc._touched.append(slots)

    def _accumulate_scalar(self, slots: list[int], values: list[float],
                           value: float, acc: NumpyAccumulator,
                           timestamps: list[float] | None = None) -> None:
        """Short-list scalar twin of :meth:`_accumulate` on the same state."""
        epoch = self._epoch
        epoch_marks = self._slot_score_epoch
        scores = self._slot_score
        arrivals = self._slot_arrival
        touched: list[int] = []
        for position, slot in enumerate(slots):
            contribution = value * values[position]
            if epoch_marks[slot] == epoch:
                scores[slot] += contribution
            else:
                scores[slot] = contribution
                epoch_marks[slot] = epoch
                touched.append(slot)
            if timestamps is not None:
                arrivals[slot] = timestamps[position]
        if touched:
            acc._touched.append(np.asarray(touched, dtype=np.int64))

    def scan_inv_batch(self, plist: Any, value: float,
                       acc: ScoreAccumulator) -> int:
        slots, values, _, _ = plist.arrays()
        count = len(slots)
        if count == 0:
            return 0
        if count <= _SCALAR_SCAN_CUTOFF:
            self._accumulate_scalar(slots.tolist(), values.tolist(), value, acc)
        else:
            self._accumulate(slots.copy(), value * values, acc)
        return count

    def scan_inv_stream(self, plist: Any, value: float, cutoff: float,
                        acc: ScoreAccumulator) -> tuple[int, int]:
        slots, values, _, timestamps = plist.arrays()
        expired = int(np.searchsorted(timestamps, cutoff, side="left"))
        if expired:
            slots = slots[expired:]
            values = values[expired:]
            timestamps = timestamps[expired:]
        alive = len(slots)
        # Newest-first, matching the reference backward scan's candidate
        # insertion order.
        if 0 < alive <= _SCALAR_SCAN_CUTOFF:
            self._accumulate_scalar(slots[::-1].tolist(), values[::-1].tolist(),
                                    value, acc, timestamps[::-1].tolist())
        elif alive:
            slots = slots[::-1].copy()
            self._slot_arrival[slots] = timestamps[::-1]
            self._accumulate(slots, value * values[::-1], acc)
        removed = plist.drop_oldest(expired)
        return alive, removed

    # -- prefix-filter scans -------------------------------------------------

    def scan_prefix_batch(self, plist: Any, value: float,
                          query_prefix_norm: float, admit_new: bool,
                          threshold: float, use_ap: bool, use_l2: bool,
                          sz1: float, size_filter: SizeFilterMap,
                          acc: ScoreAccumulator) -> int:
        slots, values, prefix_norms, _ = plist.arrays()
        traversed = len(slots)
        if traversed == 0:
            return 0
        if traversed <= _SCALAR_SCAN_CUTOFF:
            self._scan_prefix_scalar(
                slots.tolist(), values.tolist(), prefix_norms.tolist(), None,
                value, query_prefix_norm, admit_new, 0.0, math.inf, math.inf,
                0.0, sz1, threshold, use_ap, use_l2, acc)
        else:
            self._scan_prefix(
                slots, values, prefix_norms, None, value, query_prefix_norm,
                admit_new, None, None, sz1, threshold, use_ap, use_l2,
                size_filter, acc)
        return traversed

    def scan_prefix_stream(self, plist: Any, value: float,
                           query_prefix_norm: float, now: float,
                           cutoff: float, decay: float, rs1: float,
                           rs2: float, sz1: float, threshold: float,
                           use_ap: bool, use_l2: bool, time_ordered: bool,
                           size_filter: SizeFilterMap,
                           acc: ScoreAccumulator) -> tuple[int, int]:
        slots, values, prefix_norms, timestamps = plist.arrays()
        if time_ordered:
            expired = int(np.searchsorted(timestamps, cutoff, side="left"))
            if expired:
                slots = slots[expired:]
                values = values[expired:]
                prefix_norms = prefix_norms[expired:]
                timestamps = timestamps[expired:]
            traversed = len(slots)
            removed = plist.drop_oldest(expired)
            if traversed == 0:
                return 0, removed
            # Newest-first, for insertion-order parity with the reference
            # backward scan.
            if traversed <= _SCALAR_SCAN_CUTOFF:
                self._scan_prefix_scalar(
                    slots[::-1].tolist(), values[::-1].tolist(),
                    prefix_norms[::-1].tolist(), timestamps[::-1].tolist(),
                    value, query_prefix_norm, True, now, decay, rs1, rs2,
                    sz1, threshold, use_ap, use_l2, acc)
            else:
                decay_factors = np.exp(-decay * (now - timestamps[::-1]))
                self._scan_prefix(
                    slots[::-1], values[::-1], prefix_norms[::-1],
                    decay_factors, value, query_prefix_norm, True, rs1, rs2,
                    sz1, threshold, use_ap, use_l2, size_filter, acc)
            return traversed, removed
        traversed = len(slots)
        if traversed == 0:
            return 0, 0
        if traversed <= _SCALAR_SCAN_CUTOFF:
            removed = self._scan_prefix_stream_scalar_unordered(
                plist, slots.tolist(), values.tolist(), prefix_norms.tolist(),
                timestamps.tolist(), value, query_prefix_norm, now, cutoff,
                decay, rs1, rs2, sz1, threshold, use_ap, use_l2, acc)
            return traversed, removed
        alive = timestamps >= cutoff
        kept = int(np.count_nonzero(alive))
        removed = traversed - kept
        if removed:
            slots = slots[alive]
            values = values[alive]
            prefix_norms = prefix_norms[alive]
            timestamps = timestamps[alive]
            plist.compress(alive)
        if len(slots):
            decay_factors = np.exp(-decay * (now - timestamps))
            self._scan_prefix(
                slots, values, prefix_norms, decay_factors, value,
                query_prefix_norm, True, rs1, rs2, sz1, threshold,
                use_ap, use_l2, size_filter, acc)
        return traversed, removed

    def _scan_prefix_scalar(self, slots: list[int], values: list[float],
                            prefix_norms: list[float],
                            timestamps: list[float] | None, value: float,
                            query_prefix_norm: float, admit_new: bool,
                            now: float, decay: float, rs1: float, rs2: float,
                            sz1: float, threshold: float, use_ap: bool,
                            use_l2: bool, acc: NumpyAccumulator) -> None:
        """Short-list scalar twin of :meth:`_scan_prefix` on the same state.

        ``timestamps`` distinguishes the streaming case (decayed bounds,
        ``math.exp`` exactly like the reference backend) from the batch case
        (``None``: the caller folded the remaining-score admission into the
        scalar ``admit_new`` flag).
        """
        epoch = self._epoch
        epoch_marks = self._slot_score_epoch
        pruned_marks = self._slot_pruned_epoch
        scores = self._slot_score
        size_values = self._slot_sf
        touched: list[int] = []
        for position, slot in enumerate(slots):
            if pruned_marks[slot] == epoch:
                continue
            if timestamps is None:
                decay_factor = 1.0
            else:
                decay_factor = math.exp(-decay * (now - timestamps[position]))
            started = epoch_marks[slot] == epoch
            if not started:
                if timestamps is None:
                    if not admit_new:
                        continue
                elif min(rs1, rs2 * decay_factor) < threshold:
                    continue
                if use_ap and size_values[slot] < sz1:
                    continue
            accumulated = (scores[slot] if started else 0.0) + value * values[position]
            if use_l2:
                l2bound = accumulated + query_prefix_norm * prefix_norms[position] * decay_factor
                if l2bound < threshold:
                    pruned_marks[slot] = epoch
                    epoch_marks[slot] = -1
                    continue
            scores[slot] = accumulated
            if not started:
                epoch_marks[slot] = epoch
                touched.append(slot)
        if touched:
            acc._touched.append(np.asarray(touched, dtype=np.int64))

    def _scan_prefix_stream_scalar_unordered(
            self, plist: Any, slots: list[int], values: list[float],
            prefix_norms: list[float], timestamps: list[float], value: float,
            query_prefix_norm: float, now: float, cutoff: float, decay: float,
            rs1: float, rs2: float, sz1: float, threshold: float,
            use_ap: bool, use_l2: bool, acc: NumpyAccumulator) -> int:
        """Scalar compact-and-scan of a short unordered (re-indexed) list."""
        kept: list[int] = []
        for position, timestamp in enumerate(timestamps):
            if timestamp >= cutoff:
                kept.append(position)
        removed = len(timestamps) - len(kept)
        if removed:
            keep_mask = np.zeros(len(timestamps), dtype=bool)
            keep_mask[kept] = True
            plist.compress(keep_mask)
            slots = [slots[position] for position in kept]
            values = [values[position] for position in kept]
            prefix_norms = [prefix_norms[position] for position in kept]
            timestamps = [timestamps[position] for position in kept]
        self._scan_prefix_scalar(
            slots, values, prefix_norms, timestamps, value,
            query_prefix_norm, True, now, decay, rs1, rs2, sz1, threshold,
            use_ap, use_l2, acc)
        return removed

    def _scan_prefix(self, slots: np.ndarray, values: np.ndarray,
                     prefix_norms: np.ndarray,
                     decay_factors: np.ndarray | None, value: float,
                     query_prefix_norm: float, admit_new: bool,
                     rs1: float | None, rs2: float | None,
                     sz1: float, threshold: float,
                     use_ap: bool, use_l2: bool,
                     size_filter: SizeFilterMap,
                     acc: ScoreAccumulator) -> None:
        """Shared filtered accumulation of the batch and streaming scans.

        ``decay_factors`` is ``None`` in the batch case, where the
        remaining-score admission collapses to the scalar ``admit_new`` flag
        computed by the caller.
        """
        epoch = self._epoch
        epoch_marks = self._slot_score_epoch
        pruned_marks = self._slot_pruned_epoch
        scores = self._slot_score

        started = epoch_marks[slots] == epoch
        active = pruned_marks[slots] != epoch
        if decay_factors is None:
            newcomer_ok = np.full(len(slots), admit_new)
        else:
            newcomer_ok = np.minimum(rs1, rs2 * decay_factors) >= threshold
        if use_ap:
            newcomer_ok &= size_filter.values_at(slots) >= sz1
        process = active & (started | newcomer_ok)

        accumulated = np.where(started, scores[slots], 0.0) + value * values
        if use_l2:
            # Reference parity: the reference groups the bound product as
            # ((qpn * prefix_norm) * decay_factor).
            bound_tail = query_prefix_norm * prefix_norms
            if decay_factors is not None:
                bound_tail = bound_tail * decay_factors
            l2bound = accumulated + bound_tail
            prune = process & (l2bound < threshold)
            keep = process & ~prune
            pruned_slots = slots[prune]
            if len(pruned_slots):
                pruned_marks[pruned_slots] = epoch
                epoch_marks[pruned_slots] = -1
        else:
            keep = process
        kept_slots = slots[keep]
        if len(kept_slots):
            scores[kept_slots] = accumulated[keep]
            epoch_marks[kept_slots] = epoch
            acc._touched.append(kept_slots)

    # -- candidate verification ------------------------------------------------

    def _verification_mask(self, query: SparseVector,
                           candidates: dict[int, float],
                           residual: ResidualIndex):
        """Gather candidate metadata and evaluate the ps1/ds1/sz2 bounds.

        Returns ``(ids, entries, accumulated, timestamps, bound_mask)``
        where the bounds are *undecayed*, matching
        :func:`repro.indexes.bounds.verification_bounds`.
        """
        count = len(candidates)
        ids = list(candidates.keys())
        accumulated = np.fromiter(candidates.values(), np.float64, count)
        entries = [residual.get(candidate_id) for candidate_id in ids]
        pscores = np.empty(count, dtype=np.float64)
        residual_max = np.zeros(count, dtype=np.float64)
        residual_sum = np.zeros(count, dtype=np.float64)
        residual_size = np.zeros(count, dtype=np.float64)
        timestamps = np.empty(count, dtype=np.float64)
        for position, entry in enumerate(entries):
            if entry is None:  # pragma: no cover - defensive; mask it out
                pscores[position] = -np.inf
                timestamps[position] = 0.0
                continue
            max_value, sum_value = entry._stats()
            pscores[position] = entry.pscore
            residual_max[position] = max_value
            residual_sum[position] = sum_value
            residual_size[position] = len(entry.residual)
            timestamps[position] = entry.timestamp
        query_max = query.max_value
        ps1 = accumulated + pscores
        ds1 = accumulated + np.minimum(query_max * residual_sum,
                                       residual_max * query.value_sum)
        sz2 = accumulated + (np.minimum(float(len(query)), residual_size)
                             * query_max * residual_max)
        return ids, entries, accumulated, timestamps, (ps1, ds1, sz2)

    def verify_batch(self, query: SparseVector, candidates: dict[int, float],
                     residual: ResidualIndex, threshold: float,
                     stats: JoinStatistics) -> list[tuple[SparseVector, float]]:
        if not candidates:
            return []
        ids, entries, accumulated, _, (ps1, ds1, sz2) = self._verification_mask(
            query, candidates, residual)
        mask = (ps1 >= threshold) & (ds1 >= threshold) & (sz2 >= threshold)
        survivors = np.nonzero(mask)[0]
        stats.full_similarities += len(survivors)
        if not len(survivors):
            return []
        matches: list[tuple[SparseVector, float]] = []
        self.begin_query(query)
        try:
            for position in survivors.tolist():
                entry = entries[position]
                score = float(accumulated[position]) + self.residual_dot(query, entry)
                if score >= threshold:
                    matches.append((entry.vector, score))
        finally:
            self.end_query(query)
        return matches

    def verify_stream(self, query: SparseVector, candidates: dict[int, float],
                      residual: ResidualIndex, threshold: float,
                      decay: float, now: float,
                      stats: JoinStatistics) -> list[SimilarPair]:
        if not candidates:
            return []
        ids, entries, accumulated, timestamps, (ps1, ds1, sz2) = (
            self._verification_mask(query, candidates, residual))
        decay_factors = np.exp(-decay * (now - timestamps))
        mask = ((ps1 * decay_factors >= threshold)
                & (ds1 * decay_factors >= threshold)
                & (sz2 * decay_factors >= threshold))
        survivors = np.nonzero(mask)[0]
        stats.full_similarities += len(survivors)
        if not len(survivors):
            return []
        pairs: list[SimilarPair] = []
        self.begin_query(query)
        try:
            for position in survivors.tolist():
                entry = entries[position]
                delta = now - entry.timestamp
                # math.exp for the reported value: bitwise parity with the
                # reference backend (np.exp guards only the filter above).
                decay_factor = math.exp(-decay * delta)
                dot = float(accumulated[position]) + self.residual_dot(query, entry)
                similarity = dot * decay_factor
                if similarity >= threshold:
                    pairs.append(SimilarPair.make(
                        query.vector_id, ids[position], similarity,
                        time_delta=delta, dot=dot, reported_at=now,
                    ))
        finally:
            self.end_query(query)
        return pairs

    # -- verification dot products -------------------------------------------

    def begin_query(self, vector: SparseVector) -> None:
        dims = np.asarray(vector.dims, dtype=np.int64)
        max_dim = int(dims[-1])
        if max_dim >= _DENSE_DIM_LIMIT:
            # Pathologically sparse dimension space: fall back to the
            # dict-based dot products rather than growing the scratch array.
            self._dense_active = False
            self._query_vector = vector
            return
        if max_dim >= len(self._dense):
            capacity = len(self._dense)
            while capacity <= max_dim:
                capacity *= 2
            self._dense = np.zeros(capacity, dtype=np.float64)
        self._dense[dims] = np.asarray(vector.values, dtype=np.float64)
        self._query_dims = dims
        self._query_vector = vector
        self._dense_active = True

    def end_query(self, vector: SparseVector) -> None:
        if self._dense_active and self._query_dims is not None:
            self._dense[self._query_dims] = 0.0
        self._query_dims = None
        self._query_vector = None
        self._dense_active = False

    def residual_dot(self, query: SparseVector, entry: ResidualEntry) -> float:
        if not self._dense_active:
            return entry.residual_dot(query)
        cached = entry.array_cache
        if cached is None:
            dims = sorted(entry.residual)
            cached = (np.asarray(dims, dtype=np.int64),
                      np.asarray([entry.residual[dim] for dim in dims],
                                 dtype=np.float64))
            entry.array_cache = cached
        residual_dims, residual_values = cached
        if len(residual_dims) == 0:
            return 0.0
        if int(residual_dims[-1]) >= len(self._dense):
            return entry.residual_dot(query)
        products = residual_values * self._dense[residual_dims]
        return _sequential_sum(products)

    def dots_for(self, query: SparseVector,
                 others: Sequence[SparseVector]) -> list[float]:
        self.begin_query(query)
        try:
            if not self._dense_active:
                return [query.dot(other) for other in others]
            dense = self._dense
            results = []
            for other in others:
                dims, values = self._arrays_of(other)
                if int(dims[-1]) >= len(dense):
                    results.append(query.dot(other))
                else:
                    results.append(_sequential_sum(values * dense[dims]))
            return results
        finally:
            self.end_query(query)

    def _arrays_of(self, vector: SparseVector) -> tuple[np.ndarray, np.ndarray]:
        key = id(vector)
        cached = self._vector_arrays.get(key)
        if cached is None:
            if len(self._vector_arrays) >= 65536:
                self._vector_arrays.clear()
            cached = (vector,
                      np.asarray(vector.dims, dtype=np.int64),
                      np.asarray(vector.values, dtype=np.float64))
            self._vector_arrays[key] = cached
        return cached[1], cached[2]


def _sequential_sum(products: np.ndarray) -> float:
    """Left-to-right reduction, bit-for-bit identical to the Python loops.

    ``np.sum`` uses pairwise summation, which rounds differently from the
    reference backend's sequential adds; the arrays reduced here (residual
    prefixes, single sparse vectors) are short, so the scalar loop costs
    little and buys exact output parity.
    """
    total = 0.0
    for product in products.tolist():
        total += product
    return total
