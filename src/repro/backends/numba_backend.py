"""Compiled kernel tier: the NumPy backend with JIT-fused hot loops.

:class:`NumbaKernel` subclasses :class:`~repro.backends.numpy_backend.NumpyKernel`
and swaps exactly four routines for ``@njit(cache=True)``-compiled free
functions from :mod:`repro.backends.kernels.scan`, all reading the very
same contiguous buffers (the posting-arena gathers and the slot-indexed
score/state/size-filter mirrors):

* the hoisted leading run of ``_fused_prefix_segments`` — the per-segment
  accumulate → bound-filter → prune → admit tri-state chain, inherently
  sequential and therefore the part vectorisation cannot touch;
* ``_fused_inv_pass`` — the sequential INV accumulation with first-touch
  detection;
* the banded-sketch posting drop (``_sketch_drop``) — the per-posting
  verdict application (the dict-based verdict *construction* stays in
  NumPy; it runs once per query and its bucket semantics are the parity
  spec);
* the batched residual-dot reduction (``_segment_dots``).

Everything else — gathers, time filtering, admission resolution
(``math.exp``-exact, per segment), bound maintenance, verification
bounds, maintenance, checkpointing — is inherited from the NumPy kernel
unchanged, so pair/counter parity is bitwise by construction: the
compiled loops receive the same IEEE-754 inputs and perform the same
additions, multiplications and comparisons in the same order.

Fallback: when numba is not installed this module still imports cleanly
and the class constructs, but every override delegates straight to the
NumPy implementation (``available()`` reports the state; backend
*selection* never hands out this class without numba — see
:func:`repro.backends.get_backend`).  Passing ``use_kernels=True``
forces the kernel-function code path even without numba, running the
loops as plain Python — far too slow for production, but it lets the
equivalence suites pin the compiled tier's loop logic on machines
without numba.

Warm-up: the first call into each compiled function pays its JIT
compilation.  Call :meth:`NumbaKernel.warmup` before timing anything —
the profiling wrapper, the benchmark gates and the shard-worker factory
all do — so the one-time cost is reported separately and never pollutes
stage timings.  The compiled functions are module-level, so one warm-up
covers every kernel instance in the process.
"""

from __future__ import annotations

import numpy as np

from repro.backends import kernels
from repro.backends.kernels import scan as _scan
from repro.backends.numpy_backend import NumpyAccumulator, NumpyKernel

__all__ = ["NumbaKernel"]

_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT = np.empty(0, dtype=np.float64)


class NumbaKernel(NumpyKernel):
    """NumPy-backend layout with JIT-compiled scan/admission loops."""

    name = "numba"
    description = "JIT-compiled fused scan kernels (requires numba)"

    @classmethod
    def available(cls) -> bool:
        return kernels.NUMBA_AVAILABLE

    @classmethod
    def availability_reason(cls) -> str | None:
        return kernels.NUMBA_UNAVAILABLE_REASON

    def __init__(self, *, fused: bool = True, arena_allocator=None,
                 use_kernels: bool | None = None) -> None:
        super().__init__(fused=fused, arena_allocator=arena_allocator)
        # True → route through the kernel functions (compiled under
        # numba, plain Python otherwise); False → pure NumPy behaviour.
        self._use_kernels = (kernels.NUMBA_AVAILABLE if use_kernels is None
                             else use_kernels)
        self._warmup_seconds: float | None = None
        # Reusable first-touch output buffer shared by the prefix and INV
        # kernels (never both live within one query); contents are copied
        # out before reuse.
        self._touched_scratch = np.empty(len(self._slot_ids), dtype=np.int64)
        # First-occurrence scratch for the compiled INV pass: a fresh
        # stamp per call makes first-touch detection call-local, exactly
        # like the NumPy reversed-scatter (stale marks are never equal to
        # a new stamp, so no epoch management is needed).
        self._inv_mark = np.zeros(len(self._slot_ids), dtype=np.int64)
        self._inv_stamp = 0

    # -- warm-up --------------------------------------------------------------

    def warmup(self) -> float:
        """Trigger every JIT compilation now; return the one-time cost.

        Idempotent (the underlying compile is memoised per process and
        per machine via the on-disk cache); returns ``0.0`` when numba is
        absent.  Call before timing scans so compile time lands in this
        number instead of the first query's stage timings.
        """
        if self._warmup_seconds is None:
            self._warmup_seconds = kernels.warmup_jit()
        return self._warmup_seconds

    @property
    def warmup_seconds(self) -> float | None:
        """Recorded JIT warm-up cost, ``None`` until :meth:`warmup` ran."""
        return self._warmup_seconds

    # -- scratch management ---------------------------------------------------

    def _grow_slots(self, needed: int) -> None:
        super()._grow_slots(needed)
        capacity = len(self._slot_ids)
        if len(self._inv_mark) < capacity:
            fresh = np.zeros(capacity, dtype=np.int64)
            fresh[:len(self._inv_mark)] = self._inv_mark
            self._inv_mark = fresh

    def _touched_buffer(self, needed: int) -> np.ndarray:
        if len(self._touched_scratch) < needed:
            capacity = len(self._touched_scratch)
            while capacity < needed:
                capacity *= 2
            self._touched_scratch = np.empty(capacity, dtype=np.int64)
        return self._touched_scratch

    # -- compiled hot loops ---------------------------------------------------

    def _fused_prefix_segments(self, arena, idx, slots, contrib, tails,
                               decay_factors, tri, seg_values, seg_qpns,
                               seg_rs1, seg_rs2, offsets, hoisted, decay,
                               now, sz1, use_ap, use_l2, threshold,
                               acc: NumpyAccumulator) -> None:
        if not self._use_kernels:
            super()._fused_prefix_segments(
                arena, idx, slots, contrib, tails, decay_factors, tri,
                seg_values, seg_qpns, seg_rs1, seg_rs2, offsets, hoisted,
                decay, now, sz1, use_ap, use_l2, threshold, acc)
            return
        # The leading run — every segment whose entries live inside the
        # hoisted gather (its contrib/tails/decay factors are
        # precomputed) — goes through the compiled loop in one call; the
        # lazy tail segments keep the NumPy path, whose per-segment
        # ``np.exp`` re-gather is already minimal (they touch only
        # already-started candidates).
        nseg = len(tri)
        leading = 0
        while leading < nseg and int(offsets[leading]) < hoisted:
            leading += 1
        if leading:
            tri_arr = np.asarray(tri[:leading], dtype=np.int64)
            if seg_rs1:
                rs1_arr = np.asarray(seg_rs1[:leading], dtype=np.float64)
                rs2_arr = np.asarray(seg_rs2[:leading], dtype=np.float64)
            else:  # batch path: tri is ALL/NONE only, bounds never read
                rs1_arr = rs2_arr = np.zeros(leading, dtype=np.float64)
            fresh_out = self._touched_buffer(hoisted)
            fresh_count = _scan.prefix_segments(
                slots, contrib,
                tails if use_l2 else _EMPTY_FLOAT,
                decay_factors if decay_factors is not None else _EMPTY_FLOAT,
                tri_arr, rs1_arr, rs2_arr, offsets, leading,
                self._slot_state, self._slot_score, self._slot_sf,
                self._epoch, sz1, use_ap, use_l2, threshold, fresh_out)
            if fresh_count:
                acc._touched.append(fresh_out[:fresh_count].copy())
        if leading < nseg:
            super()._fused_prefix_segments(
                arena, idx, slots, contrib, tails, decay_factors,
                tri[leading:], seg_values[leading:], seg_qpns[leading:],
                seg_rs1[leading:], seg_rs2[leading:], offsets[leading:],
                hoisted, decay, now, sz1, use_ap, use_l2, threshold, acc)

    def _fused_inv_pass(self, slots: np.ndarray, contrib: np.ndarray,
                        timestamps: np.ndarray | None,
                        acc: NumpyAccumulator) -> None:
        if not self._use_kernels:
            super()._fused_inv_pass(slots, contrib, timestamps, acc)
            return
        first_out = self._touched_buffer(len(slots))
        self._inv_stamp += 1
        has_ts = timestamps is not None
        first_count = _scan.inv_pass(
            slots, contrib, timestamps if has_ts else _EMPTY_FLOAT, has_ts,
            self._slot_score, self._slot_state, self._slot_arrival,
            self._inv_mark, self._inv_stamp, self._epoch, first_out)
        acc._touched.append(first_out[:first_count].copy())

    def _sketch_drop(self, idx: np.ndarray, counts: np.ndarray,
                     offsets: np.ndarray, acc,
                     timestamps: np.ndarray | None = None,
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray | None]:
        if not self._use_kernels:
            return super()._sketch_drop(idx, counts, offsets, acc, timestamps)
        verdict = self._sketch_verdict_now()
        total = len(idx)
        has_ts = timestamps is not None
        kept_idx = np.empty(total, dtype=np.int64)
        kept_ts = np.empty(total if has_ts else 0, dtype=np.float64)
        seg_counts = np.empty(len(counts), dtype=np.int64)
        kept = _scan.sketch_filter(
            self._arena.slots, idx, timestamps if has_ts else _EMPTY_FLOAT,
            has_ts, verdict, offsets, kept_idx, kept_ts, seg_counts)
        rejected = total - kept
        if not rejected:
            return idx, counts, offsets, timestamps
        acc.sketch_pruned += rejected  # type: ignore[attr-defined]
        new_offsets = np.empty(len(seg_counts) + 1, dtype=np.int64)
        new_offsets[0] = 0
        np.cumsum(seg_counts, out=new_offsets[1:])
        return (kept_idx[:kept], seg_counts, new_offsets,
                kept_ts[:kept] if has_ts else None)

    def _segment_dots(self, cat_dims: np.ndarray, cat_vals: np.ndarray,
                      part_counts: np.ndarray) -> np.ndarray:
        if not self._use_kernels:
            return super()._segment_dots(cat_dims, cat_vals, part_counts)
        dots = np.empty(len(part_counts), dtype=np.float64)
        _scan.segment_dots(cat_dims, cat_vals, part_counts, self._dense, dots)
        return dots
