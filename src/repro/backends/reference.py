"""Pure-Python reference backend.

This backend is the semantic ground truth: its scan kernels are the
per-entry loops that used to live inline in the index classes, moved here
verbatim when the compute-backend subsystem was introduced.  Posting lists
are the ring-buffer-backed :class:`~repro.indexes.posting.PostingList` of
Section 6.2 and the score table is a plain insertion-ordered dictionary.

It has no dependencies beyond the standard library, works for arbitrarily
sparse vector ids and dimensions, and is the backend the vectorised
implementations are equivalence-tested against.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

from repro.backends.base import (
    CandidateSet,
    ScoreAccumulator,
    SimilarityKernel,
    SizeFilterMap,
)
from repro.core.results import JoinStatistics, SimilarPair
from repro.core.vector import SparseVector
from repro.indexes.bounds import verification_bounds
from repro.indexes.posting import PostingList
from repro.indexes.residual import ResidualEntry, ResidualIndex

__all__ = ["ReferenceKernel"]


class ReferenceCandidateSet(CandidateSet):
    """Insertion-ordered score and arrival dictionaries, handed over as-is."""

    __slots__ = ("scores", "arrival")

    def __init__(self, scores: dict[int, float],
                 arrival: dict[int, float]) -> None:
        self.scores = scores
        self.arrival = arrival

    def __len__(self) -> int:
        return len(self.scores)

    def to_dict(self) -> dict[int, float]:
        return self.scores

    def arrivals(self) -> dict[int, float]:
        return self.arrival

    def above(self, threshold: float) -> list[tuple[int, float]]:
        return [(candidate_id, score) for candidate_id, score in self.scores.items()
                if score >= threshold]


class ReferenceAccumulator(ScoreAccumulator):
    """Dict-based score table: ``scores``, the ``pruned`` set and arrivals."""

    __slots__ = ("scores", "pruned", "arrival", "sketch_pruned")

    def __init__(self) -> None:
        self.scores: dict[int, float] = {}
        self.pruned: set[int] = set()
        self.arrival: dict[int, float] = {}
        self.sketch_pruned: int = 0

    def finalize(self) -> ReferenceCandidateSet:
        return ReferenceCandidateSet(self.scores, self.arrival)


class ReferenceSizeFilter(SizeFilterMap):
    """Plain dictionary ``vector_id → |x| · vm_x``."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: dict[int, float] = {}

    def set(self, vector_id: int, value: float) -> None:
        self._values[vector_id] = value

    def discard(self, vector_id: int) -> None:
        self._values.pop(vector_id, None)

    def get(self, vector_id: int) -> float | None:
        return self._values.get(vector_id)


class ReferenceKernel(SimilarityKernel):
    """The per-entry Python loops of Algorithms 3, 4, 7 and 8."""

    name = "python"
    description = "pure-Python reference loops (the semantic ground truth)"

    # -- storage factories ---------------------------------------------------

    def new_posting_list(self) -> PostingList:
        return PostingList()

    def new_accumulator(self) -> ReferenceAccumulator:
        return ReferenceAccumulator()

    def new_size_filter(self) -> ReferenceSizeFilter:
        return ReferenceSizeFilter()

    # -- INV scans -----------------------------------------------------------

    def scan_inv_batch(self, plist: Any, value: float,
                       acc: ScoreAccumulator) -> int:
        scores = acc.scores
        traversed = 0
        for entry in plist:
            traversed += 1
            candidate_id = entry.vector_id
            scores[candidate_id] = scores.get(candidate_id, 0.0) + value * entry.value
        return traversed

    def scan_inv_stream(self, plist: Any, value: float, cutoff: float,
                        acc: ScoreAccumulator) -> tuple[int, int]:
        scores = acc.scores
        arrival = acc.arrival
        alive = 0
        for entry in plist.iter_newest_first():
            if entry.timestamp < cutoff:
                # Everything older than this entry is also expired:
                # truncate the head of the list (lazy time filtering).
                break
            alive += 1
            candidate_id = entry.vector_id
            scores[candidate_id] = scores.get(candidate_id, 0.0) + value * entry.value
            arrival.setdefault(candidate_id, entry.timestamp)
        removed = plist.keep_newest(alive)
        return alive, removed

    # -- prefix-filter scans -------------------------------------------------

    def scan_prefix_batch(self, plist: Any, value: float,
                          query_prefix_norm: float, admit_new: bool,
                          threshold: float, use_ap: bool, use_l2: bool,
                          sz1: float, size_filter: SizeFilterMap,
                          acc: ScoreAccumulator) -> int:
        scores = acc.scores
        pruned = acc.pruned
        sketch = self._sketch_query is not None
        traversed = 0
        for entry in plist:
            traversed += 1
            candidate_id = entry.vector_id
            if sketch and not self._sketch_admits(acc, candidate_id):
                continue
            if candidate_id in pruned:
                continue
            started = candidate_id in scores
            if not started and not admit_new:
                continue
            if use_ap and not started:
                candidate_size = size_filter.get(candidate_id)
                if candidate_size is not None and candidate_size < sz1:
                    continue
            accumulated = scores.get(candidate_id, 0.0) + value * entry.value
            if use_l2:
                l2bound = accumulated + query_prefix_norm * entry.prefix_norm
                if l2bound < threshold:
                    scores.pop(candidate_id, None)
                    pruned.add(candidate_id)
                    continue
            scores[candidate_id] = accumulated
        return traversed

    def scan_prefix_stream(self, plist: Any, value: float,
                           query_prefix_norm: float, now: float,
                           cutoff: float, decay: float, rs1: float,
                           rs2: float, sz1: float, threshold: float,
                           use_ap: bool, use_l2: bool, time_ordered: bool,
                           size_filter: SizeFilterMap,
                           acc: ScoreAccumulator) -> tuple[int, int]:
        if time_ordered:
            # Backward scan: stop at the first expired posting and truncate
            # the head.  Only live postings count as traversed — the expired
            # sentinel is charged to pruning.
            alive = 0
            for entry in plist.iter_newest_first():
                if entry.timestamp < cutoff:
                    break
                alive += 1
                self._accumulate_stream(
                    entry, value, query_prefix_norm, now, decay, rs1, rs2,
                    sz1, threshold, use_ap, use_l2, size_filter, acc)
            removed = plist.keep_newest(alive)
            return alive, removed
        traversed = 0
        kept = []
        for entry in plist:
            traversed += 1
            if entry.timestamp < cutoff:
                continue
            kept.append(entry)
            self._accumulate_stream(
                entry, value, query_prefix_norm, now, decay, rs1, rs2,
                sz1, threshold, use_ap, use_l2, size_filter, acc)
        removed = traversed - len(kept)
        if removed:
            plist.replace_all_entries(kept)
        return traversed, removed

    def _accumulate_stream(self, entry: Any, value: float,
                           query_prefix_norm: float,
                           now: float, decay: float, rs1: float, rs2: float,
                           sz1: float, threshold: float, use_ap: bool,
                           use_l2: bool, size_filter: SizeFilterMap,
                           acc: ScoreAccumulator) -> None:
        """Per-posting accumulation with the decayed bounds of Algorithm 7."""
        scores = acc.scores
        pruned = acc.pruned
        candidate_id = entry.vector_id
        if (self._sketch_query is not None
                and not self._sketch_admits(acc, candidate_id)):
            return
        if candidate_id in pruned:
            return
        delta = now - entry.timestamp
        decay_factor = math.exp(-decay * delta)
        started = candidate_id in scores
        if not started:
            remscore = min(rs1, rs2 * decay_factor)
            if remscore < threshold:
                return
            if use_ap:
                candidate_size = size_filter.get(candidate_id)
                if candidate_size is not None and candidate_size < sz1:
                    return
        accumulated = scores.get(candidate_id, 0.0) + value * entry.value
        if use_l2:
            l2bound = accumulated + query_prefix_norm * entry.prefix_norm * decay_factor
            if l2bound < threshold:
                scores.pop(candidate_id, None)
                pruned.add(candidate_id)
                return
        scores[candidate_id] = accumulated

    # -- candidate verification ------------------------------------------------

    def verify_batch(self, query: SparseVector, candidates: CandidateSet,
                     residual: ResidualIndex, threshold: float,
                     stats: JoinStatistics) -> list[tuple[SparseVector, float]]:
        matches: list[tuple[SparseVector, float]] = []
        for candidate_id, accumulated in candidates.to_dict().items():
            entry = residual.get(candidate_id)
            if entry is None:  # pragma: no cover - defensive; indexed vectors have entries
                continue
            ps1, ds1, sz2 = verification_bounds(accumulated, query, entry)
            if ps1 >= threshold and ds1 >= threshold and sz2 >= threshold:
                stats.full_similarities += 1
                score = accumulated + entry.residual_dot(query)
                if score >= threshold:
                    matches.append((entry.vector, score))
        return matches

    def verify_stream(self, query: SparseVector, candidates: CandidateSet,
                      residual: ResidualIndex, threshold: float,
                      decay: float, now: float,
                      stats: JoinStatistics) -> list[SimilarPair]:
        pairs: list[SimilarPair] = []
        for candidate_id, accumulated in candidates.to_dict().items():
            entry = residual.get(candidate_id)
            if entry is None:  # pragma: no cover - defensive
                continue
            delta = now - entry.timestamp
            decay_factor = math.exp(-decay * delta)
            ps1, ds1, sz2 = verification_bounds(accumulated, query, entry)
            if (ps1 * decay_factor >= threshold and ds1 * decay_factor >= threshold
                    and sz2 * decay_factor >= threshold):
                stats.full_similarities += 1
                dot = accumulated + entry.residual_dot(query)
                similarity = dot * decay_factor
                if similarity >= threshold:
                    pairs.append(SimilarPair.make(
                        query.vector_id, candidate_id, similarity,
                        time_delta=delta, dot=dot, reported_at=now,
                    ))
        return pairs

    def verify_inv_stream(self, query: SparseVector, candidates: CandidateSet,
                          threshold: float, decay: float, now: float,
                          stats: JoinStatistics) -> list[SimilarPair]:
        arrival = candidates.arrivals()
        pairs: list[SimilarPair] = []
        for candidate_id, dot in candidates.to_dict().items():
            stats.full_similarities += 1
            delta = now - arrival[candidate_id]
            similarity = dot * math.exp(-decay * delta)
            if similarity >= threshold:
                pairs.append(SimilarPair.make(
                    query.vector_id, candidate_id, similarity,
                    time_delta=delta, dot=dot, reported_at=now,
                ))
        return pairs

    # -- verification dot products -------------------------------------------

    def residual_dot(self, query: SparseVector, entry: ResidualEntry) -> float:
        return entry.residual_dot(query)

    def dots_for(self, query: SparseVector,
                 others: Sequence[SparseVector]) -> list[float]:
        return [query.dot(other) for other in others]
