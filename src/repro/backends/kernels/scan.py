"""Nopython scan/admission/verification loops over the posting arena buffers.

Each function here is the sequential twin of one fused NumPy-backend
routine; the docstrings name the exact counterpart whose decisions it
replays.  All of them mutate the caller's slot-indexed mirrors in place
and communicate variable-length results through preallocated ``*_out``
buffers (numba cannot return freshly grown Python lists cheaply, and the
NumPy backend reuses scratch the same way).

Bitwise-parity rules observed throughout (see the NumPy backend's module
docstring for the full contract):

* additions accumulate left to right from ``0.0``, exactly like the
  reference backend's per-entry loops and the NumPy backend's
  ``np.add.at`` scatters;
* the tri-state admission bound is applied per entry as
  ``min(rs1, rs2 * decay_factor) >= threshold`` — the decayed
  remaining-score test of Algorithm 7, with the ``exp`` factors
  precomputed by the (NumPy) driver so the compiled loop adds and
  multiplies only;
* prune marks (``state[slot] = -epoch``) and first-touch transitions
  (``state[slot] = epoch``) happen at the same program points as in the
  vectorised masks, so candidate insertion order is identical.
"""

from __future__ import annotations

import numpy as np

from repro.backends.arena import SLOT_DTYPE, VALUE_DTYPE
from repro.backends.kernels import jit

__all__ = [
    "exercise_kernels",
    "inv_pass",
    "prefix_segments",
    "segment_dots",
    "sketch_filter",
]

# Tri-state admission outcomes — numeric twins of the NumPy backend's
# _ADMIT_ALL / _ADMIT_NONE / _ADMIT_PER_ENTRY constants.  Kept literal in
# the loops below (numba folds them) but named here for the reader.
_ADMIT_ALL = 1
_ADMIT_NONE = 0
_ADMIT_PER_ENTRY = -1


@jit
def prefix_segments(slots, contrib, tails, decay_factors, tri, seg_rs1,
                    seg_rs2, offsets, nseg, state, scores, sf, epoch, sz1,
                    use_ap, use_l2, threshold, fresh_out):
    """Replay the hoisted leading run of ``_fused_prefix_segments``.

    Processes segments ``0..nseg-1`` of the whole-query gather: for each
    posting, the prune-mark check, the tri-state admission (``tri[j]``
    with the per-entry decayed bound from ``seg_rs1``/``seg_rs2`` and
    ``decay_factors``), the sz1 size filter (``use_ap``), the score
    accumulation and the l2bound early prune (``use_l2``) — the exact
    decision sequence of the NumPy backend's scalar twin
    ``_scan_segment_scalar``, which is itself decision-identical to the
    vectorised masks.  ``tails`` is read only when ``use_l2``,
    ``decay_factors`` only for ``_ADMIT_PER_ENTRY`` segments; callers
    pass empty placeholders otherwise.

    First-touched slots are appended to ``fresh_out`` in accumulation
    order (the candidate insertion order); returns their count.
    """
    fresh_count = 0
    for j in range(nseg):
        admit = tri[j]
        rs1 = seg_rs1[j]
        rs2 = seg_rs2[j]
        for p in range(offsets[j], offsets[j + 1]):
            slot = slots[p]
            mark = state[slot]
            if mark == -epoch:
                continue
            started = mark == epoch
            if not started:
                if admit == 0:  # _ADMIT_NONE: only running candidates
                    continue
                if admit == -1:  # _ADMIT_PER_ENTRY: decayed bound check
                    bound = rs2 * decay_factors[p]
                    if rs1 < bound:
                        bound = rs1
                    if bound < threshold:
                        continue
                if use_ap and sf[slot] < sz1:
                    continue
            if started:
                accumulated = scores[slot] + contrib[p]
            else:
                accumulated = 0.0 + contrib[p]
            if use_l2 and accumulated + tails[p] < threshold:
                state[slot] = -epoch
                continue
            scores[slot] = accumulated
            if not started:
                state[slot] = epoch
                fresh_out[fresh_count] = slot
                fresh_count += 1
    return fresh_count


@jit
def inv_pass(slots, contrib, timestamps, has_ts, scores, state, arrival,
             mark, stamp, epoch, first_out):
    """Sequential twin of ``_fused_inv_pass`` (unfiltered INV accumulation).

    Accumulates ``contrib`` into ``scores`` in gather order (bitwise the
    ``np.add.at`` order) and detects each slot's *first occurrence within
    this gather* via the ``mark``/``stamp`` scratch — the same semantics
    as the NumPy backend's reversed-scatter trick, including repeated
    calls: first-touch is per call, not per epoch.  First occurrences get
    ``state[slot] = epoch`` and (``has_ts``) their arrival timestamp, and
    land in ``first_out`` in gather order; returns their count.
    """
    first_count = 0
    for p in range(slots.shape[0]):
        slot = slots[p]
        if mark[slot] != stamp:
            mark[slot] = stamp
            state[slot] = epoch
            if has_ts:
                arrival[slot] = timestamps[p]
            first_out[first_count] = slot
            first_count += 1
        scores[slot] = scores[slot] + contrib[p]
    return first_count


@jit
def sketch_filter(arena_slots, idx, timestamps, has_ts, verdict, offsets,
                  kept_idx, kept_ts, counts_out):
    """Drop sketch-rejected postings from a whole-query gather.

    One fused pass over the gathered arena indices replacing
    ``_sketch_drop``'s mask / cumsum / re-slice pipeline: a posting
    survives iff ``verdict[arena_slots[idx[p]]]`` (the per-query banding
    verdict built once by the NumPy-side bucket lookup — the dict-based
    verdict *construction* is not compiled, only its application).
    Surviving indices (and, ``has_ts``, their timestamps) compact into
    ``kept_idx``/``kept_ts`` preserving gather order; ``counts_out[j]``
    receives each segment's surviving count.  Returns the total kept.
    """
    kept = 0
    for j in range(offsets.shape[0] - 1):
        seg_kept = 0
        for p in range(offsets[j], offsets[j + 1]):
            i = idx[p]
            if verdict[arena_slots[i]]:
                kept_idx[kept] = i
                if has_ts:
                    kept_ts[kept] = timestamps[p]
                kept += 1
                seg_kept += 1
        counts_out[j] = seg_kept
    return kept


@jit
def segment_dots(cat_dims, cat_vals, part_counts, dense, dots_out):
    """Per-candidate residual dots over the concatenated prefix arrays.

    The compiled half of ``_batched_residual_dots``: for each candidate
    segment, multiply its residual prefix against the dense query scratch
    and reduce left to right from ``0.0`` — bit-for-bit the NumPy
    backend's elementwise product followed by the sequential
    ``np.add.at`` scatter, which is itself the reference reduction.
    """
    pos = 0
    for s in range(part_counts.shape[0]):
        total = 0.0
        for _ in range(part_counts[s]):
            total = total + cat_vals[pos] * dense[cat_dims[pos]]
            pos += 1
        dots_out[s] = total


def exercise_kernels() -> None:
    """Call every kernel once on tiny typed inputs (JIT warm-up).

    The argument dtypes match the production call sites exactly — the
    arena dtype contract (:data:`repro.backends.arena.SLOT_DTYPE` for
    indices/marks, :data:`~repro.backends.arena.VALUE_DTYPE` for
    scores/values, ``bool`` flags) — so each call compiles, or loads from
    the on-disk cache, the one specialisation the backend will use.
    """
    slots = np.array([0, 1, 0], dtype=SLOT_DTYPE)
    contrib = np.array([0.5, 0.25, 0.125], dtype=VALUE_DTYPE)
    tails = np.array([1.0, 1.0, 1.0], dtype=VALUE_DTYPE)
    factors = np.array([1.0, 1.0, 1.0], dtype=VALUE_DTYPE)
    tri = np.array([1, -1], dtype=SLOT_DTYPE)
    rs = np.array([1.0, 1.0], dtype=VALUE_DTYPE)
    offsets = np.array([0, 2, 3], dtype=SLOT_DTYPE)
    state = np.zeros(4, dtype=SLOT_DTYPE)
    scores = np.zeros(4, dtype=VALUE_DTYPE)
    sf = np.full(4, np.inf, dtype=VALUE_DTYPE)
    out = np.empty(4, dtype=SLOT_DTYPE)
    prefix_segments(slots, contrib, tails, factors, tri, rs, rs, offsets, 2,
                    state, scores, sf, 1, 0.0, True, True, 0.1, out)
    mark = np.zeros(4, dtype=SLOT_DTYPE)
    arrival = np.zeros(4, dtype=VALUE_DTYPE)
    inv_pass(slots, contrib, tails, True, scores, state, arrival, mark, 1,
             2, out)
    idx = np.array([0, 1, 2], dtype=SLOT_DTYPE)
    verdict = np.array([True, False, True, True], dtype=bool)
    kept_ts = np.empty(3, dtype=VALUE_DTYPE)
    counts_out = np.empty(2, dtype=SLOT_DTYPE)
    sketch_filter(slots, idx, tails, True, verdict, offsets, idx.copy(),
                  kept_ts, counts_out)
    dots_out = np.empty(2, dtype=VALUE_DTYPE)
    segment_dots(slots, contrib, np.array([2, 1], dtype=SLOT_DTYPE),
                 np.array([0.5, 0.25], dtype=VALUE_DTYPE), dots_out)
