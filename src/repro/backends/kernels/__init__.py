"""Compiled (numba) twins of the NumPy backend's fused hot loops.

The functions in :mod:`repro.backends.kernels.scan` are the sequential,
loop-form replicas of the NumPy backend's per-segment scan machinery —
the accumulate → bound-filter → prune → admit tri-state chain of
``_fused_prefix_segments``, the INV accumulation pass, the banded-sketch
posting drop and the batched residual-dot reduction.  They are written as
*free functions over plain arrays* for two reasons:

* **numba compiles free functions, not methods** — every argument is a
  contiguous ``int64``/``float64``/``bool`` array (the very buffers the
  NumPy backend reads: the posting arena gathers and the slot-indexed
  score/state/size-filter mirrors), so one ``@njit(cache=True)``
  decoration turns each loop into machine code with no data-layout work;
* **the same source runs without numba** — when numba is not installed
  the decorator below is the identity, leaving the functions as plain
  (slow) Python loops.  The compiled backend never routes production
  traffic through that interpreted form (it falls back to the NumPy
  kernels instead), but the equivalence tests exercise it so the loop
  *logic* is pinned against the reference backend on every machine, with
  or without numba.

Determinism contract: the loops perform the same IEEE-754 additions,
multiplications and comparisons in the same order as the NumPy backend's
vectorised/scalar twins (no fastmath, no reassociation), so candidate
sets, prune marks, operation counts and accumulated scores stay bitwise
identical.  See ``docs/ARCHITECTURE.md`` ("Compiled tier").

JIT warm-up: the first call of each compiled function pays its
compilation (``cache=True`` amortises it across processes via the
on-disk cache, honouring ``NUMBA_CACHE_DIR``).  :func:`warmup_jit`
triggers every compilation on tiny synthetic inputs and reports the
one-time cost, so drivers can keep compile time out of stage timings.
"""

from __future__ import annotations

import time

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_UNAVAILABLE_REASON",
    "jit",
    "warmup_jit",
]

try:  # numba is an optional dependency: gate, don't require.
    from numba import njit as _njit
except ImportError:  # pragma: no cover - exercised only without numba
    _njit = None
    #: True when the numba JIT is importable and the kernels are compiled.
    NUMBA_AVAILABLE = False
    #: Human-readable reason the compiled tier is off (``None`` when on).
    NUMBA_UNAVAILABLE_REASON = "numba is not installed"

    def jit(func):
        """Identity decorator: without numba the kernels stay plain Python."""
        return func
else:
    NUMBA_AVAILABLE = True
    NUMBA_UNAVAILABLE_REASON = None

    def jit(func):
        """``numba.njit(cache=True)``: nopython, on-disk compilation cache."""
        return _njit(cache=True)(func)


#: One-time JIT compilation cost, memoised per process (see warmup_jit).
_warmup_cost: float | None = None


def warmup_jit() -> float:
    """Compile every kernel on tiny synthetic inputs; return the cost.

    Idempotent per process: the first call triggers (or loads from the
    on-disk cache) every compilation and records the wall-clock cost;
    later calls return the recorded cost without recompiling.  The
    compiled functions are module-level, so one warm-up covers every
    kernel instance in the process.  Returns ``0.0`` when numba is
    absent (there is nothing to compile).
    """
    global _warmup_cost
    if _warmup_cost is not None:
        return _warmup_cost
    if not NUMBA_AVAILABLE:
        _warmup_cost = 0.0
        return _warmup_cost
    start = time.perf_counter()
    from repro.backends.kernels.scan import exercise_kernels

    exercise_kernels()
    _warmup_cost = time.perf_counter() - start
    return _warmup_cost
