"""Pluggable compute backends for the similarity-join hot loops.

Every index (and both baselines) routes its posting-list scans, decay/time
filtering and verification dot products through a
:class:`~repro.backends.base.SimilarityKernel`.  Two backends ship with the
library:

``python``
    The pure-Python reference implementation — dependency-free, the
    semantic ground truth every other backend is equivalence-tested
    against (:mod:`repro.backends.reference`).
``numpy``
    Contiguous-array posting lists and vectorised scan kernels
    (:mod:`repro.backends.numpy_backend`).  Registered only when NumPy is
    importable.

Selection
---------
The backend is chosen per join via ``backend=`` on the public entry points
(:func:`repro.create_join`, :func:`repro.streaming_self_join`,
:func:`repro.all_pairs`, the index constructors, the ``sssj`` CLI) or the
``backend`` field of :class:`repro.JoinParameters`.  ``None`` or ``"auto"``
resolves to the fastest available backend — ``numpy`` when present,
``python`` otherwise — overridable with the ``SSSJ_BACKEND`` environment
variable.

>>> from repro.backends import available_backends, resolve_kernel
>>> "python" in available_backends()
True
>>> resolve_kernel("python").name
'python'
"""

from __future__ import annotations

import os

from repro.backends.base import (
    CandidateSet,
    ScoreAccumulator,
    SimilarityKernel,
    SizeFilterMap,
)
from repro.backends.reference import ReferenceKernel
from repro.exceptions import UnknownBackendError

__all__ = [
    "CandidateSet",
    "ScoreAccumulator",
    "SimilarityKernel",
    "SizeFilterMap",
    "ReferenceKernel",
    "available_backends",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_kernel",
]

#: Environment variable overriding the ``"auto"`` backend resolution.
BACKEND_ENV_VAR = "SSSJ_BACKEND"

_BACKENDS: dict[str, type[SimilarityKernel]] = {}


def register_backend(cls: type[SimilarityKernel]) -> type[SimilarityKernel]:
    """Add a kernel class to the backend registry (keyed by ``cls.name``)."""
    _BACKENDS[cls.name.lower()] = cls
    return cls


register_backend(ReferenceKernel)

try:  # NumPy is an optional dependency: gate, don't require.
    from repro.backends.numpy_backend import NumpyKernel
except ImportError:  # pragma: no cover - exercised only without numpy
    NumpyKernel = None  # type: ignore[assignment]
else:
    register_backend(NumpyKernel)


def available_backends() -> list[str]:
    """Names of the registered backends, reference backend first."""
    return sorted(_BACKENDS, key=lambda name: (name != "python", name))


def default_backend() -> str:
    """The backend ``"auto"`` resolves to.

    The ``SSSJ_BACKEND`` environment variable wins when set to a registered
    backend name; otherwise the fastest available backend is picked
    (``numpy`` when importable, else ``python``).
    """
    override = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if override and override != "auto":
        if override not in _BACKENDS:
            raise UnknownBackendError(
                f"{BACKEND_ENV_VAR}={override!r} is not a registered backend; "
                f"available: {available_backends()}"
            )
        return override
    return "numpy" if "numpy" in _BACKENDS else "python"


def get_backend(name: str | None = None) -> type[SimilarityKernel]:
    """Kernel class registered under ``name`` (``None``/``"auto"`` → default)."""
    if name is None or name.lower() == "auto":
        name = default_backend()
    try:
        return _BACKENDS[name.lower()]
    except KeyError:
        raise UnknownBackendError(
            f"unknown compute backend {name!r}; available: {available_backends()}"
        ) from None


def resolve_kernel(backend: str | SimilarityKernel | None) -> SimilarityKernel:
    """Materialise a kernel instance from a backend spec.

    ``backend`` may be a registered name, ``"auto"``/``None`` for the
    default, or an existing :class:`SimilarityKernel` instance (used by
    tests; a kernel holds per-index state, so never share one instance
    between indexes).
    """
    if isinstance(backend, SimilarityKernel):
        return backend
    return get_backend(backend)()
