"""Pluggable compute backends for the similarity-join hot loops.

Every index (and both baselines) routes its posting-list scans, decay/time
filtering and verification dot products through a
:class:`~repro.backends.base.SimilarityKernel`.  Three backends ship with
the library:

``python``
    The pure-Python reference implementation — dependency-free, the
    semantic ground truth every other backend is equivalence-tested
    against (:mod:`repro.backends.reference`).
``numpy``
    Contiguous-array posting lists and vectorised scan kernels
    (:mod:`repro.backends.numpy_backend`).  Registered only when NumPy is
    importable.
``numba``
    The NumPy layout with the sequential scan/admission loops compiled to
    machine code via ``numba.njit`` (:mod:`repro.backends.numba_backend`).
    Registered only when numba is importable; selecting it without numba
    falls back to ``numpy`` with a warning (see :func:`get_backend`), so
    library code and checkpoints written on a numba-equipped machine keep
    working everywhere.

Selection
---------
The backend is chosen per join via ``backend=`` on the public entry points
(:func:`repro.create_join`, :func:`repro.streaming_self_join`,
:func:`repro.all_pairs`, the index constructors, the ``sssj`` CLI) or the
``backend`` field of :class:`repro.JoinParameters`.  ``None`` or ``"auto"``
resolves to the fastest available backend — ``numpy`` when present,
``python`` otherwise — overridable with the ``SSSJ_BACKEND`` environment
variable.  ``numba`` is opt-in even when installed: its one-time JIT
warm-up only amortises on long streams, so ``auto`` never picks it.

>>> from repro.backends import available_backends, resolve_kernel
>>> "python" in available_backends()
True
>>> resolve_kernel("python").name
'python'
"""

from __future__ import annotations

import os
import warnings

from repro.backends.base import (
    CandidateSet,
    ScoreAccumulator,
    SimilarityKernel,
    SizeFilterMap,
)
from repro.backends.reference import ReferenceKernel
from repro.exceptions import UnknownBackendError

__all__ = [
    "CandidateSet",
    "ScoreAccumulator",
    "SimilarityKernel",
    "SizeFilterMap",
    "ReferenceKernel",
    "available_backends",
    "backend_availability",
    "default_backend",
    "get_backend",
    "known_backends",
    "probe_backends",
    "register_backend",
    "resolve_kernel",
    "warmup_backend",
]

#: Environment variable overriding the ``"auto"`` backend resolution.
BACKEND_ENV_VAR = "SSSJ_BACKEND"

_BACKENDS: dict[str, type[SimilarityKernel]] = {}

#: Backends that ship with the library but cannot run on this machine:
#: ``name -> (reason, description)``.  ``get_backend`` falls back to the
#: default for these instead of raising, and the CLI probe reports them.
_UNAVAILABLE: dict[str, tuple[str, str]] = {}

#: Names already warned about (one fallback warning per process & name).
_FALLBACK_WARNED: set[str] = set()


def register_backend(cls: type[SimilarityKernel]) -> type[SimilarityKernel]:
    """Add a kernel class to the backend registry (keyed by ``cls.name``)."""
    _BACKENDS[cls.name.lower()] = cls
    return cls


register_backend(ReferenceKernel)

try:  # NumPy is an optional dependency: gate, don't require.
    from repro.backends.numpy_backend import NumpyKernel
except ImportError:  # pragma: no cover - exercised only without numpy
    NumpyKernel = None  # type: ignore[assignment]
    _UNAVAILABLE["numpy"] = (
        "numpy is not installed",
        "vectorised contiguous-array kernels (requires numpy)")
else:
    register_backend(NumpyKernel)

try:  # The compiled tier needs numpy (its base class) to import at all.
    from repro.backends.numba_backend import NumbaKernel
except ImportError:  # pragma: no cover - exercised only without numpy
    NumbaKernel = None  # type: ignore[assignment]
    _UNAVAILABLE["numba"] = (
        "numpy is not installed (the compiled tier builds on the numpy "
        "backend)",
        "JIT-compiled fused scan kernels (requires numba)")
else:
    if NumbaKernel.available():
        register_backend(NumbaKernel)
    else:
        _UNAVAILABLE["numba"] = (
            NumbaKernel.availability_reason() or "unavailable",
            NumbaKernel.description)


def available_backends() -> list[str]:
    """Names of the registered (usable) backends, reference backend first."""
    return sorted(_BACKENDS, key=lambda name: (name != "python", name))


def known_backends() -> list[str]:
    """Every backend name the library knows, usable here or not."""
    return sorted(set(_BACKENDS) | set(_UNAVAILABLE),
                  key=lambda name: (name != "python", name))


def backend_availability(name: str) -> tuple[bool, str | None]:
    """``(available, reason)`` for a backend name (reason when not)."""
    key = name.lower()
    if key in ("auto", ""):
        return True, None
    if key in _BACKENDS:
        return True, None
    if key in _UNAVAILABLE:
        return False, _UNAVAILABLE[key][0]
    return False, f"unknown backend {name!r}"


def probe_backends() -> list[dict]:
    """Availability report for every known backend (CLI ``sssj backends``).

    One dict per backend: ``name``, ``available``, ``reason`` (``None``
    when available) and ``description``.
    """
    report = []
    for name in known_backends():
        cls = _BACKENDS.get(name)
        if cls is not None:
            report.append({"name": name, "available": True, "reason": None,
                           "description": cls.description})
        else:
            reason, description = _UNAVAILABLE[name]
            report.append({"name": name, "available": False,
                           "reason": reason, "description": description})
    return report


def _fallback_for(name: str) -> type[SimilarityKernel]:
    """Degrade an unavailable-but-known backend to the best usable one."""
    target = "numpy" if "numpy" in _BACKENDS else "python"
    if name not in _FALLBACK_WARNED:
        _FALLBACK_WARNED.add(name)
        warnings.warn(
            f"backend {name!r} is unavailable ({_UNAVAILABLE[name][0]}); "
            f"falling back to {target!r}",
            RuntimeWarning, stacklevel=3)
    return _BACKENDS[target]


def default_backend() -> str:
    """The backend ``"auto"`` resolves to.

    The ``SSSJ_BACKEND`` environment variable wins when set to a registered
    backend name; otherwise the fastest available backend is picked
    (``numpy`` when importable, else ``python``).  Setting it to a known
    but unavailable backend (``numba`` without numba installed) degrades
    to the normal default with a warning instead of failing, so one
    environment file can serve heterogeneous machines.
    """
    override = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if override and override != "auto":
        if override in _BACKENDS:
            return override
        if override in _UNAVAILABLE:
            return _fallback_for(override).name
        raise UnknownBackendError(
            f"{BACKEND_ENV_VAR}={override!r} is not a registered backend; "
            f"available: {available_backends()}"
        )
    return "numpy" if "numpy" in _BACKENDS else "python"


def get_backend(name: str | None = None) -> type[SimilarityKernel]:
    """Kernel class registered under ``name`` (``None``/``"auto"`` → default).

    A *known* backend that cannot run on this machine (``numba`` without
    numba installed) resolves to the best available backend with a
    one-time warning — the graceful import-guard fallback that keeps
    sessions, shard workers and restored checkpoints working on machines
    missing the accelerator.  Unknown names still raise
    :class:`~repro.exceptions.UnknownBackendError`; the CLI additionally
    fails fast (exit 2) when an unavailable backend is requested
    explicitly.
    """
    if name is None or name.lower() == "auto":
        name = default_backend()
    key = name.lower()
    try:
        return _BACKENDS[key]
    except KeyError:
        if key in _UNAVAILABLE and _BACKENDS:
            return _fallback_for(key)
        raise UnknownBackendError(
            f"unknown compute backend {name!r}; available: {available_backends()}"
        ) from None


def resolve_kernel(backend: str | SimilarityKernel | None) -> SimilarityKernel:
    """Materialise a kernel instance from a backend spec.

    ``backend`` may be a registered name, ``"auto"``/``None`` for the
    default, or an existing :class:`SimilarityKernel` instance (used by
    tests; a kernel holds per-index state, so never share one instance
    between indexes).
    """
    if isinstance(backend, SimilarityKernel):
        return backend
    return get_backend(backend)()


def warmup_backend(backend: str | None = None) -> float:
    """Prime a backend's one-time machinery; return the seconds spent.

    For the compiled tier this triggers every JIT compilation (the
    compiled functions are module-level, so the warm-up covers all
    kernel instances in the process); for the other backends it is a
    no-op returning ``0.0``.  Benchmark and profiling drivers call this
    before timing so compile cost never pollutes stage timings.
    """
    return get_backend(backend)().warmup()
